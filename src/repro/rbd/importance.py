"""Component importance measures for reliability block diagrams.

These rank which components most influence system availability, the
quantitative backing for design decisions like those in Section 5 of the
paper ("the availabilities of the LAN, the net and the web service are
the most influential ones").

* **Birnbaum importance** ``I_B(x) = A(sys | x up) - A(sys | x down)`` —
  the partial derivative of system availability with respect to the
  component's availability (system availability is multilinear in
  component availabilities).
* **Criticality importance** — Birnbaum scaled by the component's own
  unavailability relative to system unavailability: the probability that
  the component is *the* cause of system failure.
* **Improvement potential** ``A(sys | x up) - A(sys)`` — the availability
  gained by making the component perfect.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import ValidationError
from .blocks import Block
from .evaluate import collect_availabilities, system_availability

__all__ = [
    "birnbaum_importance",
    "criticality_importance",
    "improvement_potential",
    "rank_components",
]


def _conditional(block: Block, probs: Dict[str, float], name: str, value: float) -> float:
    forced = dict(probs)
    forced[name] = value
    return system_availability(block, forced)


def birnbaum_importance(
    block: Block,
    component: str,
    availabilities: Optional[Mapping[str, float]] = None,
) -> float:
    """Birnbaum importance of *component* in *block*."""
    probs = collect_availabilities(block, availabilities)
    if component not in probs:
        raise ValidationError(f"component {component!r} is not in the diagram")
    return _conditional(block, probs, component, 1.0) - _conditional(
        block, probs, component, 0.0
    )


def criticality_importance(
    block: Block,
    component: str,
    availabilities: Optional[Mapping[str, float]] = None,
) -> float:
    """Criticality importance of *component* in *block*.

    Returns 0 when the system is perfectly available (no failure to
    attribute).
    """
    probs = collect_availabilities(block, availabilities)
    if component not in probs:
        raise ValidationError(f"component {component!r} is not in the diagram")
    system = system_availability(block, probs)
    system_unavail = 1.0 - system
    if system_unavail <= 0.0:
        return 0.0
    birnbaum = _conditional(block, probs, component, 1.0) - _conditional(
        block, probs, component, 0.0
    )
    return birnbaum * (1.0 - probs[component]) / system_unavail


def improvement_potential(
    block: Block,
    component: str,
    availabilities: Optional[Mapping[str, float]] = None,
) -> float:
    """Availability gained by making *component* perfectly available."""
    probs = collect_availabilities(block, availabilities)
    if component not in probs:
        raise ValidationError(f"component {component!r} is not in the diagram")
    return _conditional(block, probs, component, 1.0) - system_availability(
        block, probs
    )


def rank_components(
    block: Block,
    availabilities: Optional[Mapping[str, float]] = None,
    measure: str = "birnbaum",
) -> List[Tuple[str, float]]:
    """Rank all components by an importance measure, highest first.

    Parameters
    ----------
    measure:
        ``"birnbaum"``, ``"criticality"`` or ``"improvement"``.
    """
    functions = {
        "birnbaum": birnbaum_importance,
        "criticality": criticality_importance,
        "improvement": improvement_potential,
    }
    if measure not in functions:
        raise ValidationError(
            f"unknown measure {measure!r}; expected one of {sorted(functions)}"
        )
    fn = functions[measure]
    probs = collect_availabilities(block, availabilities)
    scored = [(name, fn(block, name, probs)) for name in sorted(set(block.component_names()))]
    return sorted(scored, key=lambda pair: (-pair[1], pair[0]))
