"""Block types for reliability block diagrams.

An RBD is a tree whose leaves are named components and whose internal
nodes are series, parallel or k-of-n compositions.  Blocks are immutable
and hashable; ``&`` composes in series and ``|`` in parallel, mirroring
the intuition that a series system needs *both* sides and a parallel
system needs *either*.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from .._validation import check_positive_int, check_probability
from ..errors import ValidationError

__all__ = ["Block", "Component", "Series", "Parallel", "KofN", "series", "parallel", "k_of_n"]


class Block:
    """Abstract base of all RBD nodes."""

    def component_names(self) -> Tuple[str, ...]:
        """All leaf component names in the subtree, in left-to-right order
        (with repetitions when a component appears several times)."""
        return tuple(self._iter_names())

    def _iter_names(self) -> Iterator[str]:
        raise NotImplementedError

    def _structural(self, probs: dict) -> float:
        """Availability assuming all leaf references are independent."""
        raise NotImplementedError

    def _evaluate_bool(self, states: dict) -> bool:
        """Structure function on a deterministic component-state mapping."""
        raise NotImplementedError

    def __and__(self, other: "Block") -> "Series":
        if not isinstance(other, Block):
            return NotImplemented
        return Series(self, other)

    def __or__(self, other: "Block") -> "Parallel":
        if not isinstance(other, Block):
            return NotImplemented
        return Parallel(self, other)


class Component(Block):
    """A leaf component identified by name.

    Parameters
    ----------
    name:
        Identifier used to look up the component's availability at
        evaluation time.
    availability:
        Optional default availability used when the evaluation call does
        not provide one.

    Examples
    --------
    >>> ws = Component("web", availability=0.999)
    >>> lan = Component("lan", availability=0.9966)
    >>> (ws & lan).component_names()
    ('web', 'lan')
    """

    __slots__ = ("name", "availability")

    def __init__(self, name: str, availability: Optional[float] = None):
        if not isinstance(name, str) or not name:
            raise ValidationError(f"component name must be a non-empty string, got {name!r}")
        self.name = name
        self.availability = (
            None if availability is None else check_probability(availability, f"availability({name})")
        )

    def _iter_names(self) -> Iterator[str]:
        yield self.name

    def _structural(self, probs: dict) -> float:
        try:
            return probs[self.name]
        except KeyError:
            raise ValidationError(
                f"no availability provided for component {self.name!r}"
            ) from None

    def _evaluate_bool(self, states: dict) -> bool:
        try:
            return bool(states[self.name])
        except KeyError:
            raise ValidationError(
                f"no state provided for component {self.name!r}"
            ) from None

    def __repr__(self) -> str:
        if self.availability is None:
            return f"Component({self.name!r})"
        return f"Component({self.name!r}, availability={self.availability})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Component)
            and other.name == self.name
            and other.availability == self.availability
        )

    def __hash__(self) -> int:
        return hash(("Component", self.name, self.availability))


class _Composite(Block):
    """Shared machinery for series/parallel nodes."""

    _label = "?"
    __slots__ = ("children",)

    def __init__(self, *children: Block):
        flat = []
        for child in children:
            if not isinstance(child, Block):
                raise ValidationError(
                    f"{self._label} children must be Blocks, got {type(child).__name__}"
                )
            # Flatten nested nodes of the same kind: Series(Series(a,b),c)
            # and Series(a,b,c) are the same diagram.
            if type(child) is type(self):
                flat.extend(child.children)  # type: ignore[attr-defined]
            else:
                flat.append(child)
        if len(flat) < 1:
            raise ValidationError(f"{self._label} needs at least one child")
        self.children: Tuple[Block, ...] = tuple(flat)

    def _iter_names(self) -> Iterator[str]:
        for child in self.children:
            yield from child._iter_names()

    def __repr__(self) -> str:
        inner = ", ".join(repr(c) for c in self.children)
        return f"{self._label}({inner})"

    def __eq__(self, other) -> bool:
        return type(other) is type(self) and other.children == self.children

    def __hash__(self) -> int:
        return hash((self._label, self.children))


class Series(_Composite):
    """All children must be available (product of availabilities).

    Examples
    --------
    >>> block = Series(Component("a"), Component("b"))
    >>> block._structural({"a": 0.9, "b": 0.9})
    0.81
    """

    _label = "Series"
    __slots__ = ()

    def _structural(self, probs: dict) -> float:
        result = 1.0
        for child in self.children:
            result *= child._structural(probs)
        return result

    def _evaluate_bool(self, states: dict) -> bool:
        return all(child._evaluate_bool(states) for child in self.children)


class Parallel(_Composite):
    """At least one child must be available (1 - product of unavailabilities).

    Examples
    --------
    >>> block = Parallel(Component("a"), Component("b"))
    >>> round(block._structural({"a": 0.9, "b": 0.9}), 4)
    0.99
    """

    _label = "Parallel"
    __slots__ = ()

    def _structural(self, probs: dict) -> float:
        complement = 1.0
        for child in self.children:
            complement *= 1.0 - child._structural(probs)
        return 1.0 - complement

    def _evaluate_bool(self, states: dict) -> bool:
        return any(child._evaluate_bool(states) for child in self.children)


class KofN(Block):
    """At least *k* of the children must be available.

    Children may be arbitrary sub-blocks; availability is computed by the
    standard dynamic program over "number of available children so far",
    which is exact when the children are independent.

    Examples
    --------
    >>> block = KofN(2, [Component("a"), Component("b"), Component("c")])
    >>> round(block._structural({"a": 0.9, "b": 0.9, "c": 0.9}), 4)
    0.972
    """

    __slots__ = ("k", "children")

    def __init__(self, k: int, children):
        children = tuple(children)
        if not children:
            raise ValidationError("KofN needs at least one child")
        for child in children:
            if not isinstance(child, Block):
                raise ValidationError(
                    f"KofN children must be Blocks, got {type(child).__name__}"
                )
        k = check_positive_int(k, "k")
        if k > len(children):
            raise ValidationError(
                f"k ({k}) cannot exceed the number of children ({len(children)})"
            )
        self.k = k
        self.children = children

    def _iter_names(self) -> Iterator[str]:
        for child in self.children:
            yield from child._iter_names()

    def _structural(self, probs: dict) -> float:
        # dp[j] = P(exactly j of the children examined so far are up)
        dp = [1.0] + [0.0] * len(self.children)
        for child in self.children:
            p = child._structural(probs)
            for j in range(len(dp) - 1, 0, -1):
                dp[j] = dp[j] * (1.0 - p) + dp[j - 1] * p
            dp[0] *= 1.0 - p
        return sum(dp[self.k:])

    def _evaluate_bool(self, states: dict) -> bool:
        up = sum(1 for child in self.children if child._evaluate_bool(states))
        return up >= self.k

    def __repr__(self) -> str:
        inner = ", ".join(repr(c) for c in self.children)
        return f"KofN({self.k}, [{inner}])"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, KofN)
            and other.k == self.k
            and other.children == self.children
        )

    def __hash__(self) -> int:
        return hash(("KofN", self.k, self.children))


def series(*blocks) -> Block:
    """Series composition; accepts Blocks or bare component-name strings."""
    return Series(*[_coerce(b) for b in blocks])


def parallel(*blocks) -> Block:
    """Parallel composition; accepts Blocks or bare component-name strings."""
    return Parallel(*[_coerce(b) for b in blocks])


def k_of_n(k: int, blocks) -> KofN:
    """k-of-n composition; accepts Blocks or bare component-name strings."""
    return KofN(k, [_coerce(b) for b in blocks])


def _coerce(block) -> Block:
    if isinstance(block, Block):
        return block
    if isinstance(block, str):
        return Component(block)
    raise ValidationError(
        f"expected a Block or component name, got {type(block).__name__}"
    )
