"""Reliability block diagrams (RBDs).

The paper's service-level equations are small RBDs: external reservation
services are 1-of-N parallel structures over black-box systems (Table 3),
the redundant application/database services are two-unit parallel
structures (Table 4), and whole function availabilities are series
compositions of services (Table 6).  This subpackage provides the block
algebra, exact evaluation (including shared components appearing in
several places, handled by Shannon decomposition), and classical
importance measures.
"""

from .blocks import Block, Component, Series, Parallel, KofN, series, parallel, k_of_n
from .evaluate import system_availability, structure_function
from .importance import (
    birnbaum_importance,
    criticality_importance,
    improvement_potential,
    rank_components,
)

__all__ = [
    "Block",
    "Component",
    "Series",
    "Parallel",
    "KofN",
    "series",
    "parallel",
    "k_of_n",
    "system_availability",
    "structure_function",
    "birnbaum_importance",
    "criticality_importance",
    "improvement_potential",
    "rank_components",
]
