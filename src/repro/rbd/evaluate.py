"""Exact evaluation of reliability block diagrams.

The structural product rules implemented on the block types are exact
only when every leaf refers to a *distinct* physical component.  Real
diagrams share components — in the paper, the LAN and the Internet
connection appear in every function's diagram — so
:func:`system_availability` detects repeated names and pivots on them
with Shannon decomposition::

    A = p_x * A | (x up)  +  (1 - p_x) * A | (x down)

which restores exactness at a cost of ``2^d`` structural evaluations for
``d`` duplicated components (small in practice).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Mapping, Optional

from .._validation import check_probability
from ..errors import ValidationError
from .blocks import Block, Component

__all__ = ["system_availability", "structure_function", "collect_availabilities"]

_MAX_PIVOTS = 25


def collect_availabilities(
    block: Block, availabilities: Optional[Mapping[str, float]] = None
) -> Dict[str, float]:
    """Resolve the availability of every component in *block*.

    Explicit values in *availabilities* win over per-component defaults;
    a component with neither raises :class:`ValidationError`.
    """
    availabilities = dict(availabilities or {})
    resolved: Dict[str, float] = {}
    for name in block.component_names():
        if name in resolved:
            continue
        if name in availabilities:
            resolved[name] = check_probability(availabilities[name], f"availability({name})")
        else:
            default = _default_availability(block, name)
            if default is None:
                raise ValidationError(
                    f"no availability provided for component {name!r}"
                )
            resolved[name] = default
    return resolved


def _default_availability(block: Block, name: str) -> Optional[float]:
    if isinstance(block, Component):
        if block.name == name and block.availability is not None:
            return block.availability
        return None
    for child in getattr(block, "children", ()):
        found = _default_availability(child, name)
        if found is not None:
            return found
    return None


def system_availability(
    block: Block, availabilities: Optional[Mapping[str, float]] = None
) -> float:
    """Exact availability of an RBD with independent components.

    Parameters
    ----------
    block:
        Root of the diagram.
    availabilities:
        Component-name -> availability.  Components constructed with a
        default availability may be omitted.

    Examples
    --------
    A 1-of-3 parallel group of reservation systems, each 0.9 available —
    the paper's Table 3 structure:

    >>> from repro.rbd import parallel
    >>> round(system_availability(parallel("f1", "f2", "f3"),
    ...       {"f1": 0.9, "f2": 0.9, "f3": 0.9}), 4)
    0.999
    """
    probs = collect_availabilities(block, availabilities)
    counts = Counter(block.component_names())
    duplicated = sorted(name for name, count in counts.items() if count > 1)
    if len(duplicated) > _MAX_PIVOTS:
        raise ValidationError(
            f"diagram shares {len(duplicated)} components; exact evaluation "
            f"supports at most {_MAX_PIVOTS} shared components"
        )
    return _pivoted(block, probs, duplicated)


def _pivoted(block: Block, probs: Dict[str, float], pivots) -> float:
    if not pivots:
        return block._structural(probs)
    name, rest = pivots[0], pivots[1:]
    p = probs[name]
    up = dict(probs, **{name: 1.0})
    down = dict(probs, **{name: 0.0})
    return p * _pivoted(block, up, rest) + (1.0 - p) * _pivoted(block, down, rest)


def structure_function(block: Block, states: Mapping[str, bool]) -> bool:
    """Deterministic structure function: is the system up for these states?

    Parameters
    ----------
    states:
        Component-name -> up/down.  Every component must be present.
    """
    return block._evaluate_bool(dict(states))
