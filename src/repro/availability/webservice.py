"""Composite performance-availability model of the web service.

This is the heart of the paper's "user-perceived" measure: the web
service is considered *available* to a request only when (a) the farm is
in an operational state, and (b) the request is not rejected because the
shared input buffer is full.  Following the composite approach of Meyer
(paper refs. [18, 19]), a pure availability model (the coverage CTMCs of
Figs. 9/10) supplies state probabilities, and a pure performance model
(the M/M/i/K queue of eq. 3) supplies the per-state request-loss
probability; combining them yields eqs. (2), (5) and (9)::

    A(Web service) = 1 - [ sum_i Pi_i pK(i)  +  sum_i Pi_{y_i}  +  Pi_0 ]

The quasi-steady-state decomposition is valid because failure/repair
rates (per hour) are many orders of magnitude below request rates (per
second) — the regime checked by :meth:`WebServiceModel.timescale_ratio`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .._validation import (
    check_positive_int,
    check_probability,
    check_rate,
)
from ..errors import ValidationError
from ..queueing.mmck import mmck_blocking_probability
from .coverage import ImperfectCoverageFarm, PerfectCoverageFarm

__all__ = ["WebServiceModel", "WebServiceLossBreakdown"]


@dataclass(frozen=True)
class WebServiceLossBreakdown:
    """Decomposition of web-service unavailability by cause.

    Attributes
    ----------
    buffer_full:
        Probability a request is lost to a full buffer while the farm is
        (partially) operational — the *performance failure* share.
    all_servers_down:
        Probability mass of the all-down state ``Pi_0``.
    manual_reconfiguration:
        Probability mass of the uncovered-failure states ``y_i`` (zero
        under perfect coverage).
    """

    buffer_full: float
    all_servers_down: float
    manual_reconfiguration: float

    @property
    def total_unavailability(self) -> float:
        """Total probability a request is not served."""
        return self.buffer_full + self.all_servers_down + self.manual_reconfiguration

    @property
    def availability(self) -> float:
        """Complement of the total unavailability."""
        return 1.0 - self.total_unavailability


class WebServiceModel:
    """Web-service availability combining failures and buffer overflows.

    Parameters
    ----------
    servers:
        Number of web servers ``NW`` (1 = the paper's basic architecture).
    arrival_rate:
        Request arrival rate ``alpha`` (e.g. requests per second).
    service_rate:
        Per-server request service rate ``nu`` (same unit as *alpha*).
    buffer_capacity:
        Shared input-buffer capacity ``K`` (total requests in system).
    failure_rate:
        Per-server failure rate ``lambda`` (e.g. per hour).
    repair_rate:
        Shared repair rate ``mu`` (same unit as *failure_rate*).
    coverage:
        Failure-coverage probability ``c``; ``None`` or ``1.0`` selects
        the perfect-coverage model of Fig. 9.
    reconfiguration_rate:
        Manual reconfiguration rate ``beta``; required when coverage is
        imperfect.

    Notes
    -----
    The availability-model rates (*failure_rate*, *repair_rate*,
    *reconfiguration_rate*) must share one time unit and the
    performance-model rates (*arrival_rate*, *service_rate*) another;
    the two groups never mix because the composite combination only uses
    dimensionless probabilities from each side.

    Examples
    --------
    The configuration quoted in the paper's Table 7 footnote:

    >>> model = WebServiceModel(servers=4, arrival_rate=100.0,
    ...                         service_rate=100.0, buffer_capacity=10,
    ...                         failure_rate=1e-4, repair_rate=1.0,
    ...                         coverage=0.98, reconfiguration_rate=12.0)
    >>> round(model.availability(), 9)
    0.999995587
    """

    def __init__(
        self,
        servers: int,
        arrival_rate: float,
        service_rate: float,
        buffer_capacity: int,
        failure_rate: float,
        repair_rate: float,
        coverage: Optional[float] = None,
        reconfiguration_rate: Optional[float] = None,
    ):
        self.servers = check_positive_int(servers, "servers")
        self.arrival_rate = check_rate(arrival_rate, "arrival_rate")
        self.service_rate = check_rate(service_rate, "service_rate")
        self.buffer_capacity = check_positive_int(buffer_capacity, "buffer_capacity")
        if self.buffer_capacity < self.servers:
            raise ValidationError(
                f"buffer_capacity ({buffer_capacity}) must be >= servers "
                f"({servers}): the M/M/i/K model counts requests in service"
            )
        self.failure_rate = check_rate(failure_rate, "failure_rate")
        self.repair_rate = check_rate(repair_rate, "repair_rate")
        if coverage is None:
            coverage = 1.0
        self.coverage = check_probability(coverage, "coverage")
        if self.coverage < 1.0:
            if reconfiguration_rate is None:
                raise ValidationError(
                    "reconfiguration_rate is required when coverage < 1"
                )
            self.reconfiguration_rate: Optional[float] = check_rate(
                reconfiguration_rate, "reconfiguration_rate"
            )
        else:
            self.reconfiguration_rate = (
                None
                if reconfiguration_rate is None
                else check_rate(reconfiguration_rate, "reconfiguration_rate")
            )

    # ------------------------------------------------------------------
    @property
    def offered_load(self) -> float:
        """System load ``alpha / nu`` in units of one server's capacity."""
        return self.arrival_rate / self.service_rate

    @property
    def has_perfect_coverage(self) -> bool:
        """True when the Fig. 9 (perfect coverage) model applies."""
        return self.coverage >= 1.0

    def timescale_ratio(self) -> float:
        """Ratio of failure/repair to arrival/service timescales.

        The composite decomposition assumes this is << 1 (the farm
        reaches queueing equilibrium between failure events).  The value
        is computed as ``max(lambda, mu, beta) / min(alpha, nu)`` and is
        meaningful only when all rates are expressed in the *same* unit;
        callers using mixed units (per-hour failures, per-second
        requests) should convert before interpreting it.
        """
        slow = max(
            self.failure_rate,
            self.repair_rate,
            self.reconfiguration_rate or 0.0,
        )
        fast = min(self.arrival_rate, self.service_rate)
        return slow / fast

    # ------------------------------------------------------------------
    def farm(self):
        """The availability model: a perfect- or imperfect-coverage farm."""
        if self.has_perfect_coverage:
            return PerfectCoverageFarm(
                servers=self.servers,
                failure_rate=self.failure_rate,
                repair_rate=self.repair_rate,
            )
        return ImperfectCoverageFarm(
            servers=self.servers,
            failure_rate=self.failure_rate,
            repair_rate=self.repair_rate,
            coverage=self.coverage,
            reconfiguration_rate=self.reconfiguration_rate,
        )

    def blocking_probability(self, operational_servers: int) -> float:
        """``pK(i)``: request-loss probability with *i* servers up (eq. 3)."""
        operational_servers = check_positive_int(
            operational_servers, "operational_servers"
        )
        return mmck_blocking_probability(
            self.offered_load, operational_servers, self.buffer_capacity
        )

    def loss_breakdown(self) -> WebServiceLossBreakdown:
        """Unavailability decomposed by cause (buffer, all-down, reconfig)."""
        farm = self.farm()
        if self.has_perfect_coverage:
            operational = farm.state_probabilities()
            down: Dict[int, float] = {}
        else:
            operational, down = farm.state_probabilities()
        buffer_loss = sum(
            operational[i] * self.blocking_probability(i)
            for i in range(1, self.servers + 1)
        )
        return WebServiceLossBreakdown(
            buffer_full=buffer_loss,
            all_servers_down=operational[0],
            manual_reconfiguration=sum(down.values()),
        )

    def availability(self) -> float:
        """Web-service availability (paper eqs. 2, 5 or 9, as applicable)."""
        return self.loss_breakdown().availability

    def unavailability(self) -> float:
        """Complement of :meth:`availability`."""
        return self.loss_breakdown().total_unavailability

    def transient_availability(self, time: float, initial_servers: Optional[int] = None) -> float:
        """Point-in-time web-service availability (eq. 5/9 at time *t*).

        The quasi-steady-state decomposition still applies instant by
        instant: the farm's *transient* state distribution at *time*
        weights the per-state served fraction ``1 - pK(i)``.  Useful for
        availability ramps — e.g. how quickly the measure recovers after
        bringing a farm up with only one server operational.

        Parameters
        ----------
        time:
            Elapsed time in the availability-model unit (hours in the
            paper's parameterization).
        initial_servers:
            Number of operational servers at time zero; defaults to the
            full farm.
        """
        from .._validation import check_non_negative

        time = check_non_negative(time, "time")
        if initial_servers is None:
            initial_servers = self.servers
        from .._validation import check_non_negative_int

        initial_servers = check_non_negative_int(
            initial_servers, "initial_servers"
        )
        if initial_servers > self.servers:
            raise ValidationError(
                f"initial_servers ({initial_servers}) cannot exceed the farm "
                f"size ({self.servers})"
            )
        reward = self.reward_model()
        return reward.expected_reward_at({initial_servers: 1.0}, time)

    # ------------------------------------------------------------------
    # Response-time extension (the paper's stated future work)
    # ------------------------------------------------------------------
    def late_probability(self, operational_servers: int, deadline: float) -> float:
        """``P(accepted request finishes after *deadline* | i servers up)``.

        The deadline is expressed in the performance-model time unit
        (seconds in the paper's parameterization).
        """
        from ..queueing.mmck import MMCKQueue
        from ..queueing.responsetime import response_time_survival

        operational_servers = check_positive_int(
            operational_servers, "operational_servers"
        )
        queue = MMCKQueue(
            arrival_rate=self.arrival_rate,
            service_rate=self.service_rate,
            servers=operational_servers,
            capacity=self.buffer_capacity,
        )
        return response_time_survival(queue, deadline)

    def deadline_availability(self, deadline: float) -> float:
        """Availability counting late responses as failures.

        The paper's conclusion proposes extending the measure so a
        request also fails when *"the response time exceeds an
        acceptable threshold"*.  Formally, the per-state reward becomes
        ``(1 - pK(i)) * P(T <= deadline | accepted, i servers)`` and the
        measure is its steady-state expectation::

            A_d = sum_i Pi_i (1 - pK(i)) (1 - P(T > d | i))

        ``deadline_availability(inf)`` equals :meth:`availability`.
        """
        from .._validation import check_positive

        deadline = check_positive(deadline, "deadline") if deadline != float(
            "inf"
        ) else deadline
        farm = self.farm()
        if self.has_perfect_coverage:
            operational = farm.state_probabilities()
        else:
            operational, _down = farm.state_probabilities()
        total = 0.0
        for i in range(1, self.servers + 1):
            served = 1.0 - self.blocking_probability(i)
            if served <= 0.0:
                continue
            if deadline == float("inf"):
                timely = 1.0
            else:
                timely = 1.0 - self.late_probability(i, deadline)
            total += operational[i] * served * timely
        return total

    def reward_model(self):
        """The equivalent Markov reward model.

        States of the farm CTMC earn reward ``1 - pK(i)`` when ``i``
        servers are operational and 0 in down states; the steady-state
        expected reward equals :meth:`availability`.  Exposed so that the
        generic reward machinery (interval availability, transient
        analysis) can be applied to the web service.
        """
        from ..markov import MarkovRewardModel

        chain = self.farm().to_ctmc()

        def reward(state) -> float:
            if isinstance(state, int) and state >= 1:
                return 1.0 - self.blocking_probability(state)
            return 0.0

        return MarkovRewardModel(chain, reward)

    def __repr__(self) -> str:
        coverage = "perfect" if self.has_perfect_coverage else f"c={self.coverage}"
        return (
            f"WebServiceModel(servers={self.servers}, load={self.offered_load:.3g}, "
            f"K={self.buffer_capacity}, {coverage})"
        )
