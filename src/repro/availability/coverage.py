"""Markov availability models of a redundant server farm (paper Figs. 9, 10).

Both models track the number ``i`` of operational web servers out of
``NW``.  Failures occur at rate ``i * lambda`` (each operational server
fails independently at rate ``lambda``); a single shared repair facility
restores one server at rate ``mu``.

*Perfect coverage* (Fig. 9): every failure is detected and the farm is
reconfigured automatically, so the chain is a pure birth-death process on
``i`` with steady state (eq. 4)::

    Pi_i = (1 / i!) (mu / lambda)^i  Pi_0

*Imperfect coverage* (Fig. 10): a failure is *covered* with probability
``c`` (automatic reconfiguration, ``i -> i-1`` at rate ``i c lambda``)
and *uncovered* with probability ``1 - c``: the farm enters a down state
``y_i`` (rate ``i (1-c) lambda``) and requires a manual reconfiguration,
exponential with rate ``beta``, before resuming with ``i - 1`` servers.
The steady state is given by eqs. (6)-(8); the down states satisfy::

    Pi_{y_i} = (mu (1-c) / beta) * (1 / (i-1)!) (mu / lambda)^(i-1)  Pi_0

Note on the published equations: the summation ranges printed in the
paper stop at ``NW - 2`` for the ``y`` states, but the model description
and the paper's own numeric results (A(WS) = 0.999995587 for NW = 4)
require down states ``y_i`` for every ``i = 1 .. NW``; this module uses
the consistent version and its tests verify both the closed forms against
a numerically solved CTMC and the paper's quoted value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Tuple

from .._validation import check_positive_int, check_probability, check_rate
from ..markov import CTMC, CTMCBuilder

__all__ = ["PerfectCoverageFarm", "ImperfectCoverageFarm"]


@dataclass(frozen=True)
class PerfectCoverageFarm:
    """Fig. 9: redundant farm with perfect failure coverage.

    Parameters
    ----------
    servers:
        Number of web servers ``NW``.
    failure_rate:
        Per-server failure rate ``lambda``.
    repair_rate:
        Shared repair rate ``mu`` (one repair at a time).

    Examples
    --------
    >>> farm = PerfectCoverageFarm(servers=2, failure_rate=1e-3,
    ...                            repair_rate=1.0)
    >>> probs = farm.state_probabilities()
    >>> abs(sum(probs.values()) - 1.0) < 1e-12
    True
    """

    servers: int
    failure_rate: float
    repair_rate: float

    def __post_init__(self):
        check_positive_int(self.servers, "servers")
        check_rate(self.failure_rate, "failure_rate")
        check_rate(self.repair_rate, "repair_rate")

    def state_probabilities(self) -> Dict[int, float]:
        """Steady-state probability of each operational-count state (eq. 4).

        Returns ``{i: Pi_i}`` for ``i = 0 .. NW``.
        """
        ratio = self.repair_rate / self.failure_rate
        weights = {
            i: ratio**i / math.factorial(i) for i in range(self.servers + 1)
        }
        total = sum(weights.values())
        return {i: w / total for i, w in weights.items()}

    def all_up_probability(self) -> float:
        """Probability that every server is operational."""
        return self.state_probabilities()[self.servers]

    def all_down_probability(self) -> float:
        """Probability ``Pi_0`` that no server is operational."""
        return self.state_probabilities()[0]

    def to_ctmc(self) -> CTMC:
        """The underlying birth-death CTMC (states = operational count)."""
        builder = CTMCBuilder()
        for i in range(self.servers + 1):
            builder.add_state(i)
        for i in range(1, self.servers + 1):
            builder.add_transition(i, i - 1, i * self.failure_rate)
        for i in range(self.servers):
            builder.add_transition(i, i + 1, self.repair_rate)
        return builder.build()

    def mean_time_to_exhaustion(self) -> float:
        """Expected time from all-up until *every* server is down.

        The farm-level MTTF: a mission metric complementing the
        steady-state availability (first passage NW -> 0 with repairs
        racing failures).
        """
        from ..markov import mean_first_passage_time

        return mean_first_passage_time(self.to_ctmc(), self.servers, [0])

    def exhaustion_probability_by(self, time: float) -> float:
        """``P(total farm outage occurs within *time* | all up at 0)``."""
        from ..markov import first_passage_probability_by

        return first_passage_probability_by(
            self.to_ctmc(), self.servers, [0], time
        )


@dataclass(frozen=True)
class ImperfectCoverageFarm:
    """Fig. 10: redundant farm with imperfect failure coverage.

    Parameters
    ----------
    servers:
        Number of web servers ``NW``.
    failure_rate:
        Per-server failure rate ``lambda``.
    repair_rate:
        Shared repair rate ``mu``.
    coverage:
        Probability ``c`` that a failure is covered (automatic failover).
    reconfiguration_rate:
        Rate ``beta`` of the manual reconfiguration that follows an
        uncovered failure (mean duration ``1 / beta``).

    Examples
    --------
    The paper's configuration (Section 5.2):

    >>> farm = ImperfectCoverageFarm(servers=4, failure_rate=1e-4,
    ...                              repair_rate=1.0, coverage=0.98,
    ...                              reconfiguration_rate=12.0)
    >>> probs, downs = farm.state_probabilities()
    >>> abs(sum(probs.values()) + sum(downs.values()) - 1.0) < 1e-12
    True
    """

    servers: int
    failure_rate: float
    repair_rate: float
    coverage: float
    reconfiguration_rate: float

    def __post_init__(self):
        check_positive_int(self.servers, "servers")
        check_rate(self.failure_rate, "failure_rate")
        check_rate(self.repair_rate, "repair_rate")
        check_probability(self.coverage, "coverage")
        check_rate(self.reconfiguration_rate, "reconfiguration_rate")

    def state_probabilities(self) -> Tuple[Dict[int, float], Dict[int, float]]:
        """Steady-state probabilities (eqs. 6-8).

        Returns
        -------
        (operational, down):
            ``operational[i] = Pi_i`` for ``i = 0 .. NW`` and
            ``down[i] = Pi_{y_i}`` for ``i = 1 .. NW`` (empty when
            coverage is perfect).
        """
        ratio = self.repair_rate / self.failure_rate
        op_weights = {
            i: ratio**i / math.factorial(i) for i in range(self.servers + 1)
        }
        # Pi_{y_i} = i (1-c) lambda / beta * Pi_i  (flow balance on y_i)
        down_weights = {
            i: i
            * (1.0 - self.coverage)
            * self.failure_rate
            / self.reconfiguration_rate
            * op_weights[i]
            for i in range(1, self.servers + 1)
        }
        total = sum(op_weights.values()) + sum(down_weights.values())
        operational = {i: w / total for i, w in op_weights.items()}
        down = {i: w / total for i, w in down_weights.items()}
        return operational, down

    def down_state_probability(self) -> float:
        """Total probability of the farm being unusable.

        The sum of ``Pi_0`` (all servers failed) and every manual
        reconfiguration state ``Pi_{y_i}``.
        """
        operational, down = self.state_probabilities()
        return operational[0] + sum(down.values())

    def to_ctmc(self) -> CTMC:
        """The underlying CTMC with states ``0..NW`` and ``("y", i)``."""
        builder = CTMCBuilder()
        for i in range(self.servers + 1):
            builder.add_state(i)
        for i in range(1, self.servers + 1):
            covered_rate = i * self.coverage * self.failure_rate
            uncovered_rate = i * (1.0 - self.coverage) * self.failure_rate
            if covered_rate > 0:
                builder.add_transition(i, i - 1, covered_rate)
            if uncovered_rate > 0:
                builder.add_transition(i, ("y", i), uncovered_rate)
                builder.add_transition(("y", i), i - 1, self.reconfiguration_rate)
        for i in range(self.servers):
            builder.add_transition(i, i + 1, self.repair_rate)
        return builder.build()

    def mean_time_to_service_loss(self) -> float:
        """Expected time from all-up until the web service first goes down.

        Service is lost on reaching state 0 *or* any manual
        reconfiguration state ``y_i`` — with imperfect coverage a single
        uncovered failure suffices, which is why this is typically orders
        of magnitude shorter than the perfect-coverage farm's
        time-to-exhaustion.
        """
        from ..markov import mean_first_passage_time

        chain = self.to_ctmc()
        down_states = [0] + [
            ("y", i)
            for i in range(1, self.servers + 1)
            if self.coverage < 1.0
        ]
        return mean_first_passage_time(chain, self.servers, down_states)
