"""The two-state (up/down) availability model.

The simplest repairable-component model: exponential times to failure
(rate ``lambda``) and to repair (rate ``mu``), giving steady-state
availability ``mu / (lambda + mu)``.  The paper uses it for every
resource that is not the web-server farm: hosts, disks, the LAN, the
Internet connection, and each black-box external reservation or payment
system.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import check_probability, check_rate
from ..errors import ValidationError
from ..markov import CTMC

__all__ = ["TwoStateAvailability"]


@dataclass(frozen=True)
class TwoStateAvailability:
    """A repairable component alternating between up and down.

    Parameters
    ----------
    failure_rate:
        Rate ``lambda`` of up -> down transitions (1 / MTTF).
    repair_rate:
        Rate ``mu`` of down -> up transitions (1 / MTTR).

    Examples
    --------
    >>> model = TwoStateAvailability(failure_rate=1e-3, repair_rate=1.0)
    >>> round(model.availability, 6)
    0.999001
    """

    failure_rate: float
    repair_rate: float

    def __post_init__(self):
        check_rate(self.failure_rate, "failure_rate")
        check_rate(self.repair_rate, "repair_rate")

    @classmethod
    def from_availability(
        cls, availability: float, repair_rate: float = 1.0
    ) -> "TwoStateAvailability":
        """Build a model with a given steady-state availability.

        Useful for black-box components where only a measured availability
        is known (the paper's external suppliers): the failure rate is
        derived as ``mu * (1 - A) / A``.
        """
        availability = check_probability(availability, "availability")
        if not 0.0 < availability < 1.0:
            raise ValidationError(
                f"availability must be strictly between 0 and 1, got {availability}"
            )
        repair_rate = check_rate(repair_rate, "repair_rate")
        failure_rate = repair_rate * (1.0 - availability) / availability
        return cls(failure_rate=failure_rate, repair_rate=repair_rate)

    @property
    def availability(self) -> float:
        """Steady-state availability ``mu / (lambda + mu)``."""
        return self.repair_rate / (self.failure_rate + self.repair_rate)

    @property
    def unavailability(self) -> float:
        """Steady-state unavailability ``lambda / (lambda + mu)``."""
        return self.failure_rate / (self.failure_rate + self.repair_rate)

    @property
    def mttf(self) -> float:
        """Mean time to failure, ``1 / lambda``."""
        return 1.0 / self.failure_rate

    @property
    def mttr(self) -> float:
        """Mean time to repair, ``1 / mu``."""
        return 1.0 / self.repair_rate

    def to_ctmc(self) -> CTMC:
        """The underlying two-state CTMC with states ``"up"`` and ``"down"``."""
        return CTMC.from_rates(
            {("up", "down"): self.failure_rate, ("down", "up"): self.repair_rate}
        )

    def transient_availability(self, time: float, initially_up: bool = True) -> float:
        """Point availability at *time*, in closed form.

        ``A(t) = A + (A0 - A) exp(-(lambda + mu) t)`` where ``A`` is the
        steady-state availability and ``A0`` is 1 or 0 depending on the
        initial state.
        """
        import math

        steady = self.availability
        initial = 1.0 if initially_up else 0.0
        total_rate = self.failure_rate + self.repair_rate
        return steady + (initial - steady) * math.exp(-total_rate * time)
