"""Resource-level availability models.

This subpackage implements the failure/repair models of the paper's
resource level:

* :class:`TwoStateAvailability` — the up/down model used for hosts,
  disks, the LAN and black-box external systems.
* :class:`PerfectCoverageFarm` / :class:`ImperfectCoverageFarm` — the
  Markov models of Figs. 9 and 10: a farm of NW web servers with a shared
  repair facility, with or without automatic failover coverage.
* :class:`RepairableGroup` — the general N-unit birth-death availability
  model (shared or dedicated repair, k-of-n service requirement), used
  for ablations beyond the paper.
* :class:`WebServiceModel` — the composite performance-availability
  combination of eqs. (2), (5) and (9): web-service availability
  accounting for both server failures and requests lost to full buffers.
"""

from .twostate import TwoStateAvailability
from .coverage import PerfectCoverageFarm, ImperfectCoverageFarm
from .repairable import RepairableGroup
from .webservice import WebServiceModel, WebServiceLossBreakdown

__all__ = [
    "TwoStateAvailability",
    "PerfectCoverageFarm",
    "ImperfectCoverageFarm",
    "RepairableGroup",
    "WebServiceModel",
    "WebServiceLossBreakdown",
]
