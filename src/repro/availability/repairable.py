"""General N-unit repairable-group availability model.

A birth-death generalization of the paper's farm models used for the
ablation studies: it supports dedicated repair facilities (one repairman
per unit) or a limited pool, and a k-of-n service requirement instead of
the paper's 1-of-n.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .._validation import check_positive_int, check_rate
from ..errors import ValidationError
from ..markov import CTMC
from ..queueing.birthdeath import birth_death_distribution

__all__ = ["RepairableGroup"]


@dataclass(frozen=True)
class RepairableGroup:
    """N identical repairable units with a pool of repair facilities.

    The state is the number of *operational* units.  From state ``i``,
    failures occur at rate ``i * failure_rate``; repairs proceed at rate
    ``min(n - i, repairmen) * repair_rate`` (each failed unit needs one
    repairman; excess failed units wait).

    Parameters
    ----------
    units:
        Number of units ``n``.
    failure_rate:
        Per-unit failure rate ``lambda``.
    repair_rate:
        Per-repairman repair rate ``mu``.
    repairmen:
        Size of the repair pool; ``1`` reproduces the paper's shared
        repair facility, ``units`` models fully dedicated repair.
    repair_threshold:
        Deferred maintenance (an option the paper names in Section 3.3
        but never evaluates): repairs proceed only while at least this
        many units are failed.  ``1`` is immediate maintenance.  The
        model is memoryless — repair activity follows the *current*
        failed count, without the hysteresis of a crewed call-out — so
        the process stays a birth-death chain.

    Examples
    --------
    >>> shared = RepairableGroup(units=2, failure_rate=0.1, repair_rate=1.0)
    >>> dedicated = RepairableGroup(units=2, failure_rate=0.1,
    ...                             repair_rate=1.0, repairmen=2)
    >>> dedicated.availability() > shared.availability()
    True
    """

    units: int
    failure_rate: float
    repair_rate: float
    repairmen: int = 1
    repair_threshold: int = 1

    def __post_init__(self):
        check_positive_int(self.units, "units")
        check_rate(self.failure_rate, "failure_rate")
        check_rate(self.repair_rate, "repair_rate")
        check_positive_int(self.repairmen, "repairmen")
        check_positive_int(self.repair_threshold, "repair_threshold")
        if self.repairmen > self.units:
            raise ValidationError(
                f"repairmen ({self.repairmen}) cannot exceed units ({self.units})"
            )
        if self.repair_threshold > self.units:
            raise ValidationError(
                f"repair_threshold ({self.repair_threshold}) cannot exceed "
                f"units ({self.units})"
            )

    def _repair_intensity(self, operational: int) -> float:
        """Total repair rate in the state with *operational* units up."""
        failed = self.units - operational
        if failed < self.repair_threshold:
            return 0.0
        return min(failed, self.repairmen) * self.repair_rate

    def state_probabilities(self) -> Dict[int, float]:
        """Steady-state probability of ``i`` operational units, i = 0..n."""
        n = self.units
        # Births move i -> i+1 (a repair completes); deaths i+1 -> i
        # (a unit fails).  Indexed from state i = number operational.
        # With deferred maintenance the repair rate out of states with
        # few failures is zero, truncating the reachable upper states:
        # once fewer than `repair_threshold` units are failed no repair
        # completes, so the chain cannot climb above
        # n - repair_threshold + 1 from below (the product form handles
        # the zero birth rates exactly).
        births = [self._repair_intensity(i) for i in range(n)]
        deaths = [(i + 1) * self.failure_rate for i in range(n)]
        if self.repair_threshold == 1:
            dist = birth_death_distribution(births, deaths)
            return {i: float(dist[i]) for i in range(n + 1)}
        # Deferred maintenance: states above n - threshold + 1 are
        # transient (reachable only from the initial all-up state), so
        # the steady state lives on 0 .. n - threshold + 1.
        top = n - self.repair_threshold + 1
        dist = birth_death_distribution(births[:top], deaths[:top])
        result = {i: float(dist[i]) for i in range(top + 1)}
        for i in range(top + 1, n + 1):
            result[i] = 0.0
        return result

    def availability(self, required: int = 1) -> float:
        """Probability that at least *required* units are operational."""
        required = check_positive_int(required, "required")
        if required > self.units:
            raise ValidationError(
                f"required ({required}) cannot exceed units ({self.units})"
            )
        probs = self.state_probabilities()
        return sum(probs[i] for i in range(required, self.units + 1))

    def expected_operational_units(self) -> float:
        """Expected number of operational units in steady state."""
        probs = self.state_probabilities()
        return sum(i * p for i, p in probs.items())

    def to_ctmc(self) -> CTMC:
        """The underlying CTMC (states = operational count).

        With ``repair_threshold > 1`` the states above
        ``units - repair_threshold + 1`` are transient (reachable only
        from the initial all-up state), so the chain is reducible; use
        :meth:`state_probabilities` for the steady state in that case.
        """
        from ..markov import CTMCBuilder

        n = self.units
        builder = CTMCBuilder()
        for i in range(n + 1):
            builder.add_state(i)
        for i in range(1, n + 1):
            builder.add_transition(i, i - 1, i * self.failure_rate)
        for i in range(n):
            intensity = self._repair_intensity(i)
            if intensity > 0.0:
                builder.add_transition(i, i + 1, intensity)
        return builder.build()
