"""Robustness studies on top of the availability models.

Three pillars, all probing what the paper's analytic eq.-(10) measure
leaves out:

* **fault injection** (:mod:`~repro.resilience.faults`,
  :mod:`~repro.resilience.campaign`) — scripted and stochastic fault
  scenarios driven through the end-to-end simulator, with campaign
  statistics comparing simulated user-perceived availability against
  the analytic value;
* **user retries** (:mod:`~repro.resilience.retry`) — the closed-form
  retry/abandonment extension of eq. (10), cross-validated by the
  discrete-event retry simulation in :mod:`repro.sim.sessions`;
* **graceful degradation** (:mod:`~repro.resilience.degradation`) —
  admission-control policies that shed low-value classes in degraded
  farm states, evaluated through the M/M/c/K loss model;
* **client policies** (:mod:`~repro.resilience.policies`) — circuit
  breakers (a closed/open/half-open user-level CTMC), request timeouts
  and hedged requests (closed forms over the M/M/c/K response-time
  distribution, with hedge load feedback), and a policy-comparison
  campaign ranking {retry, breaker, timeout, hedge} across farm fault
  scenarios through the :mod:`repro.engine` machinery.
"""

from .campaign import (
    CampaignResult,
    resume_campaign,
    run_campaign,
    run_campaigns,
)
from .degradation import (
    AdmissionPolicy,
    AdmitAll,
    ClassLoad,
    PolicyEvaluation,
    ShedClasses,
    compare_policies,
    conditional_class_availability,
    degraded_service_factor,
    evaluate_policy,
)
from .faults import (
    CompositeScenario,
    FaultScenario,
    NullScenario,
    RecurrentDegradation,
    RecurrentOutage,
    ScheduledOutage,
    ServiceDegradation,
)
from .policies import (
    CircuitBreakerPolicy,
    CircuitBreakerResult,
    FarmFaultScenario,
    HedgePolicy,
    PolicyCell,
    PolicyComparisonReport,
    PolicyRank,
    RequestPolicyResult,
    TimeoutPolicy,
    circuit_breaker_availability,
    circuit_breaker_chain,
    compare_client_policies,
    evaluate_policy_cell,
    policy_label,
    request_policy_availability,
)
from .report import (
    format_campaign_table,
    format_policy_comparison,
    format_policy_table,
    format_retry_table,
)
from .retry import (
    RetryAdjustedResult,
    RetryAdjustedScenario,
    RetryOutcome,
    RetryPolicy,
    backoff_delay,
    retry_adjusted_user_availability,
    session_outcome,
)

__all__ = [
    "CampaignResult",
    "resume_campaign",
    "run_campaign",
    "run_campaigns",
    "AdmissionPolicy",
    "AdmitAll",
    "ClassLoad",
    "PolicyEvaluation",
    "ShedClasses",
    "compare_policies",
    "conditional_class_availability",
    "degraded_service_factor",
    "evaluate_policy",
    "CompositeScenario",
    "FaultScenario",
    "NullScenario",
    "RecurrentDegradation",
    "RecurrentOutage",
    "ScheduledOutage",
    "ServiceDegradation",
    "CircuitBreakerPolicy",
    "CircuitBreakerResult",
    "FarmFaultScenario",
    "HedgePolicy",
    "PolicyCell",
    "PolicyComparisonReport",
    "PolicyRank",
    "RequestPolicyResult",
    "TimeoutPolicy",
    "circuit_breaker_availability",
    "circuit_breaker_chain",
    "compare_client_policies",
    "evaluate_policy_cell",
    "policy_label",
    "request_policy_availability",
    "format_campaign_table",
    "format_policy_comparison",
    "format_policy_table",
    "format_retry_table",
    "RetryAdjustedResult",
    "RetryAdjustedScenario",
    "RetryOutcome",
    "RetryPolicy",
    "backoff_delay",
    "retry_adjusted_user_availability",
    "session_outcome",
]
