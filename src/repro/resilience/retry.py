"""Closed-form user retry/abandonment model extending eq. (10).

The paper's user-perceived availability assumes every session is
submitted exactly once.  Real users retry: after a failed session they
try again (possibly after a backoff pause), give up with some
probability, and stop after a bounded number of attempts.  This module
derives the *retry-adjusted* user-perceived availability in closed form.

Model.  A session of scenario ``i`` succeeds per attempt with
probability ``A_i`` — the eq.-(10) scenario availability, attempts being
independent draws from the steady state.  After a failed attempt the
user *persists* (retries) with probability ``p`` and abandons with
probability ``1 - p``, up to ``k`` retries (``k + 1`` attempts total).
With ``q = (1 - A_i) p`` the session outcome probabilities are::

    P(served)    = A_i (1 - q^(k+1)) / (1 - q)        [geometric series]
    P(abandoned) = (1 - A_i)(1 - p)(1 - q^k) / (1 - q)
    P(exhausted) = (1 - A_i) q^k

and the retry-adjusted class availability is ``sum_i pi_i P_i(served)``
— eq. (10) evaluated through the same scenario mix.  Three properties
the test suite enforces:

* at ``k = 0`` the measure *equals* eq. (10);
* it is monotone non-decreasing in ``k`` (each extra retry adds the
  non-negative term ``A_i q^(k+1)``);
* with ``p = 1`` it tends to 1 as ``k`` grows whenever every ``A_i > 0``
  — which is exactly the assumption fault injection breaks: during a
  correlated outage the *conditional* per-attempt availability is 0 and
  no retry budget helps (see :mod:`repro.resilience.campaign`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from .._validation import (
    check_non_negative,
    check_non_negative_int,
    check_probability,
)
from ..core import HierarchicalModel
from ..profiles import Scenario, UserClass

__all__ = [
    "RetryPolicy",
    "RetryOutcome",
    "RetryAdjustedScenario",
    "RetryAdjustedResult",
    "backoff_delay",
    "session_outcome",
    "retry_adjusted_user_availability",
]


def backoff_delay(
    retry_index: int,
    base: float = 1.0,
    factor: float = 2.0,
    cap: float = math.inf,
) -> float:
    """Capped exponential backoff before retry number *retry_index*.

    The shared backoff law of the library: user retry models
    (:class:`RetryPolicy`) and the engine's task retry policy
    (:class:`repro.engine.TaskRetryPolicy`) both delegate here.  Always
    finite once a cap is set — the exponential term saturates at the cap
    instead of overflowing for large indices.

    Examples
    --------
    >>> [backoff_delay(i, base=0.5) for i in range(3)]
    [0.5, 1.0, 2.0]
    >>> backoff_delay(10_000, base=0.5, cap=30.0)
    30.0
    """
    retry_index = check_non_negative_int(retry_index, "retry_index")
    try:
        delay = base * factor ** retry_index
    except OverflowError:
        # factor**index exceeded float range; every such delay is above
        # any finite cap (and inf under no cap).
        delay = math.inf if base > 0.0 else 0.0
    return min(cap, delay)


@dataclass(frozen=True)
class RetryPolicy:
    """A bounded-retry policy with exponential backoff.

    Parameters
    ----------
    max_retries:
        Maximum number of *retries* ``k`` after the first attempt
        (``k = 0`` reproduces the paper's single-submission model).
    persistence:
        Probability the user retries after a failed attempt (``1 -
        persistence`` is the per-failure abandonment probability, the
        timeout/abandonment ingredient of the model).
    backoff_base:
        Delay before the first retry, in the caller's time unit.
    backoff_factor:
        Multiplier applied per further retry (2.0 = classic exponential
        backoff).
    backoff_cap:
        Upper bound on any single backoff delay.

    Examples
    --------
    >>> policy = RetryPolicy(max_retries=3, backoff_base=0.5)
    >>> [policy.backoff_delay(i) for i in range(3)]
    [0.5, 1.0, 2.0]
    """

    max_retries: int = 3
    persistence: float = 1.0
    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    backoff_cap: float = math.inf

    def __post_init__(self):
        check_non_negative_int(self.max_retries, "max_retries")
        check_probability(self.persistence, "persistence")
        check_non_negative(self.backoff_base, "backoff_base")
        from ..errors import ValidationError

        if self.backoff_factor < 1.0:
            raise ValidationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        # backoff_cap may be inf (no cap), so check_rate does not apply.
        if math.isnan(self.backoff_cap) or self.backoff_cap <= 0.0:
            raise ValidationError(
                f"backoff_cap must be > 0 (inf allowed), got {self.backoff_cap}"
            )

    def backoff_delay(self, retry_index: int) -> float:
        """Backoff before retry number *retry_index* (0-based).

        Always finite once a cap is set: the exponential term saturates
        at the cap instead of overflowing for large indices (see the
        module-level :func:`backoff_delay`, which implements the law).
        """
        return backoff_delay(
            retry_index,
            base=self.backoff_base,
            factor=self.backoff_factor,
            cap=self.backoff_cap,
        )


@dataclass(frozen=True)
class RetryOutcome:
    """Session outcome distribution under a retry policy.

    ``served + abandoned + exhausted == 1`` exactly.
    """

    served: float
    abandoned: float
    exhausted: float
    expected_attempts: float


def session_outcome(availability: float, policy: RetryPolicy) -> RetryOutcome:
    """Outcome distribution of one session with per-attempt availability *A*.

    Examples
    --------
    No retries reproduces the single-submission measure:

    >>> session_outcome(0.9, RetryPolicy(max_retries=0)).served
    0.9

    One persistent retry squares the failure probability:

    >>> round(session_outcome(0.9, RetryPolicy(max_retries=1)).served, 4)
    0.99
    """
    a = check_probability(availability, "availability")
    k = policy.max_retries
    p = policy.persistence
    u = 1.0 - a
    q = u * p
    if q >= 1.0:  # only reachable when A == 0 and persistence == 1
        return RetryOutcome(
            served=0.0, abandoned=0.0, exhausted=1.0,
            expected_attempts=float(k + 1),
        )
    geometric = (1.0 - q ** (k + 1)) / (1.0 - q)
    served = a * geometric
    abandoned = u * (1.0 - p) * (1.0 - q**k) / (1.0 - q)
    exhausted = u * q**k
    return RetryOutcome(
        served=served,
        abandoned=abandoned,
        exhausted=exhausted,
        expected_attempts=geometric,
    )


@dataclass(frozen=True)
class RetryAdjustedScenario:
    """Per-scenario detail of a retry-adjusted evaluation."""

    scenario: Scenario
    availability: float
    outcome: RetryOutcome


@dataclass(frozen=True)
class RetryAdjustedResult:
    """Retry-adjusted user-perceived availability for one user class.

    Attributes
    ----------
    user_class:
        Name of the evaluated class.
    policy:
        The retry policy applied.
    availability:
        The per-attempt eq.-(10) value (zero-retry baseline).
    adjusted_availability:
        ``sum_i pi_i P_i(served)`` — the headline retry-adjusted measure.
    abandonment_probability:
        Class-level probability a session ends in user abandonment.
    exhaustion_probability:
        Class-level probability a session fails every allowed attempt.
    expected_attempts:
        Class-level mean number of attempts per session.
    per_scenario:
        Detailed per-scenario outcomes.
    """

    user_class: str
    policy: RetryPolicy
    availability: float
    adjusted_availability: float
    abandonment_probability: float
    exhaustion_probability: float
    expected_attempts: float
    per_scenario: Tuple[RetryAdjustedScenario, ...]

    @property
    def improvement(self) -> float:
        """Availability gained by retrying, ``A_adjusted - A``."""
        return self.adjusted_availability - self.availability


def retry_adjusted_user_availability(
    model: HierarchicalModel,
    user_class: UserClass,
    policy: RetryPolicy,
) -> RetryAdjustedResult:
    """Eq. (10) extended with bounded user retries (closed form).

    Examples
    --------
    >>> from repro.ta import CLASS_A, TravelAgencyModel
    >>> ta = TravelAgencyModel()
    >>> result = retry_adjusted_user_availability(
    ...     ta.hierarchical_model, CLASS_A, RetryPolicy(max_retries=2))
    >>> result.adjusted_availability > result.availability
    True
    """
    base = model.user_availability(user_class)
    per_scenario = []
    adjusted = 0.0
    abandoned = 0.0
    exhausted = 0.0
    attempts = 0.0
    for item in base.per_scenario:
        outcome = session_outcome(item.availability, policy)
        weight = item.scenario.probability
        adjusted += weight * outcome.served
        abandoned += weight * outcome.abandoned
        exhausted += weight * outcome.exhausted
        attempts += weight * outcome.expected_attempts
        per_scenario.append(
            RetryAdjustedScenario(
                scenario=item.scenario,
                availability=item.availability,
                outcome=outcome,
            )
        )
    return RetryAdjustedResult(
        user_class=user_class.name,
        policy=policy,
        availability=base.availability,
        adjusted_availability=adjusted,
        abandonment_probability=abandoned,
        exhaustion_probability=exhausted,
        expected_attempts=attempts,
        per_scenario=tuple(per_scenario),
    )
