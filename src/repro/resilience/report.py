"""Plain-text reports for campaigns, retry studies and policy benchmarks."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

from ..reporting import format_table
from .campaign import CampaignResult
from .degradation import PolicyEvaluation
from .retry import RetryAdjustedResult

__all__ = [
    "format_campaign_table",
    "format_retry_table",
    "format_policy_table",
    "format_policy_comparison",
]


def _sig(value: float, digits: int = 6) -> str:
    if math.isnan(value):
        return "n/a"
    return f"{value:.{digits}g}"


def format_campaign_table(
    results: Iterable[CampaignResult],
    title: str = "Fault-injection campaigns",
) -> str:
    """One row per campaign: analytic vs simulated availability.

    Columns: user class, scenario, the analytic eq.-(10) value, the
    campaign mean with its standard error, the availability drop caused
    by the injected faults, and the z-score against the analytic value
    (meaningful for the null scenario, where |z| <= 2 is the
    calibration criterion).
    """
    rows: List[Sequence[object]] = []
    for r in results:
        rows.append(
            [
                r.user_class,
                r.scenario,
                _sig(r.analytic_availability, 9),
                f"{_sig(r.mean_availability, 9)} +/- {_sig(r.stderr, 3)}",
                _sig(r.availability_drop, 4),
                _sig(r.z_score, 3),
            ]
        )
    return format_table(
        ["class", "scenario", "analytic", "simulated", "drop", "z"],
        rows,
        title=title,
    )


def format_retry_table(
    results: Iterable[RetryAdjustedResult],
    title: str = "Retry-adjusted user-perceived availability",
) -> str:
    """One row per (user class, policy) retry evaluation."""
    rows: List[Sequence[object]] = []
    for r in results:
        rows.append(
            [
                r.user_class,
                r.policy.max_retries,
                _sig(r.policy.persistence, 4),
                _sig(r.availability, 9),
                _sig(r.adjusted_availability, 9),
                _sig(r.abandonment_probability, 4),
                _sig(r.expected_attempts, 5),
            ]
        )
    return format_table(
        [
            "class",
            "retries",
            "persist",
            "A (eq. 10)",
            "A adjusted",
            "abandon",
            "attempts",
        ],
        rows,
        title=title,
    )


def format_policy_table(
    evaluations: Iterable[PolicyEvaluation],
    title: str = "Admission-control policies",
) -> str:
    """One row per (policy, class): per-class availability and rates."""
    rows: List[Sequence[object]] = []
    for ev in evaluations:
        for name in sorted(ev.class_availability):
            rows.append(
                [
                    ev.policy,
                    name,
                    _sig(ev.class_availability[name], 9),
                    _sig(ev.served_rate, 6),
                    _sig(ev.value_rate, 6),
                ]
            )
    return format_table(
        ["policy", "class", "availability", "served rate", "value rate"],
        rows,
        title=title,
    )


def format_policy_comparison(report) -> str:
    """Two tables for a :class:`~repro.resilience.PolicyComparisonReport`.

    The ranking table has one row per policy (weighted mean, worst-case
    scenario); the cell table one row per (policy, scenario) in grid
    order, with the per-attempt availability the policy worked against.
    """
    ranking_rows: List[Sequence[object]] = []
    for position, rank in enumerate(report.ranking, start=1):
        ranking_rows.append(
            [
                position,
                rank.policy,
                _sig(rank.mean_availability, 9),
                _sig(rank.worst_availability, 9),
                rank.worst_scenario,
            ]
        )
    ranking = format_table(
        ["rank", "policy", "weighted mean", "worst", "worst scenario"],
        ranking_rows,
        title="Client-policy ranking",
    )
    cell_rows: List[Sequence[object]] = []
    for cell in report.cells:
        cell_rows.append(
            [
                cell.policy,
                cell.scenario,
                _sig(cell.attempt_availability, 9),
                _sig(cell.availability, 9),
            ]
        )
    cells = format_table(
        ["policy", "scenario", "attempt A", "effective A"],
        cell_rows,
        title="Policy x scenario cells",
    )
    return f"{ranking}\n\n{cells}"
