"""Client-side resilience policies as first-class availability models.

The paper's users either submit once or (in :mod:`repro.resilience.retry`)
naively retry.  Modern clients run *resilience policies* instead: circuit
breakers that stop hammering a failing service, request timeouts that
declare late responses failed, and hedged requests that race a duplicate
against a slow original.  This module models the production trio as
first-class availability models, so "which client policy maximizes
user-perceived availability under farm faults?" becomes a computable
question — a scenario axis the paper never had.

Three model families
--------------------
**Circuit breaker** (:class:`CircuitBreakerPolicy`) — the classic
closed/open/half-open state machine embedded in a *user-level CTMC*
built with :class:`repro.markov.CTMCBuilder`.  A population of
independent, identical users issues requests at rate ``lambda``; each
attempt succeeds with the per-attempt availability ``A`` (an eq.-(10)
style steady-state probability).  ``failure_threshold`` consecutive
failures trip the breaker open; an exponential reset timer (mean
``reset_timeout``) moves it to half-open, where probes at rate
``probe_rate`` either close it again or re-open it.  The user-perceived
availability is the steady-state fraction of *demanded* requests that
are served — requests short-circuited while the breaker is open count as
failures, which is exactly the availability cost a breaker pays for
protecting the service.  The closed form is cross-validated against the
discrete-event client model in :func:`repro.sim.clients.simulate_circuit_breaker_clients`.

**Timeout** (:class:`TimeoutPolicy`) — a request is *user-perceived
successful* only when it is accepted by the farm's M/M/c/K buffer, the
service-level attempt succeeds, and the response arrives within
``timeout``.  Evaluated exactly over the sojourn-time distribution of
:func:`repro.queueing.responsetime.response_time_survival`.

**Hedge** (:class:`HedgePolicy`) — a timeout policy that additionally
issues at most one spare request: immediately when the original is
rejected by the buffer, or after ``hedge_delay`` when no response has
arrived yet.  The session succeeds when either copy completes in time —
the min of two i.i.d. conditional response times.  Hedging feeds load
back into the farm (a fraction of sessions submits twice), which this
model resolves as a fixed point on the effective arrival rate before
evaluating the success probability.

All three reduce a policy to one number per *farm fault state* — the
building block :func:`compare_client_policies` sweeps over a grid of
{retry, circuit-breaker, timeout, hedge} policies times
:class:`FarmFaultScenario` states through the
:class:`repro.engine.TaskGraph` machinery, producing a ranked
:class:`PolicyComparisonReport` (CLI: ``repro policies``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from .._validation import (
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
    check_rate,
)
from ..errors import SolverError, ValidationError
from ..markov.builder import CTMCBuilder
from ..queueing.mmck import MMCKQueue
from .retry import RetryPolicy, session_outcome

__all__ = [
    "CircuitBreakerPolicy",
    "CircuitBreakerResult",
    "circuit_breaker_chain",
    "circuit_breaker_availability",
    "TimeoutPolicy",
    "HedgePolicy",
    "RequestPolicyResult",
    "request_policy_availability",
    "ClientPolicy",
    "policy_label",
    "FarmFaultScenario",
    "PolicyCell",
    "PolicyRank",
    "PolicyComparisonReport",
    "evaluate_policy_cell",
    "compare_client_policies",
]


# ----------------------------------------------------------------------
# Circuit breaker: closed/open/half-open embedded in a user-level CTMC.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CircuitBreakerPolicy:
    """A client-side circuit breaker guarding one service.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker from closed to open.
    reset_timeout:
        Mean dwell time in the open state before a recovery probe is
        allowed (the model draws it exponentially, which keeps the user
        population Markov; a deterministic timeout has the same mean
        occupancy).  In the same time unit as *request_rate*.
    request_rate:
        Rate at which one user demands the service while the breaker is
        closed (and keeps demanding while it is open — those requests
        are short-circuited and count as failures).
    probe_rate:
        Rate of recovery probes in the half-open state; the remaining
        demand ``request_rate - probe_rate`` is short-circuited.
        Defaults to *request_rate* (every request probes).

    Examples
    --------
    >>> policy = CircuitBreakerPolicy(failure_threshold=3,
    ...                               reset_timeout=30.0)
    >>> policy.probe_rate == policy.request_rate
    True
    """

    failure_threshold: int = 3
    reset_timeout: float = 30.0
    request_rate: float = 1.0
    probe_rate: Optional[float] = None

    def __post_init__(self):
        check_positive_int(self.failure_threshold, "failure_threshold")
        check_rate(self.reset_timeout, "reset_timeout")
        check_rate(self.request_rate, "request_rate")
        if self.probe_rate is None:
            object.__setattr__(self, "probe_rate", self.request_rate)
        else:
            check_rate(self.probe_rate, "probe_rate")
            if self.probe_rate > self.request_rate:
                raise ValidationError(
                    f"probe_rate ({self.probe_rate}) must not exceed "
                    f"request_rate ({self.request_rate}); probes are a "
                    "subset of the user's demand"
                )


@dataclass(frozen=True)
class CircuitBreakerResult:
    """Steady-state user-perceived availability under a circuit breaker.

    Attributes
    ----------
    attempt_availability:
        The per-attempt availability ``A`` the breaker observes.
    availability:
        Fraction of *demanded* requests served: attempts that reach the
        service and succeed.  Short-circuited requests count against it.
    closed_probability / open_probability / half_open_probability:
        Steady-state occupancy of the breaker states (closed aggregates
        every failure-streak substate).
    short_circuit_probability:
        Fraction of demanded requests rejected by the breaker without
        reaching the service (open state, plus the non-probed share of
        half-open demand).
    """

    attempt_availability: float
    availability: float
    closed_probability: float
    open_probability: float
    half_open_probability: float
    short_circuit_probability: float

    @property
    def protection_cost(self) -> float:
        """Availability given up for protection, ``A - availability``.

        Positive whenever the breaker short-circuits demand that would
        have succeeded; the price paid for shedding load off a failing
        service.
        """
        return self.attempt_availability - self.availability


def circuit_breaker_chain(
    availability: float, policy: CircuitBreakerPolicy
):
    """The user-level CTMC of one circuit-breaker client.

    States are ``("closed", j)`` for failure streak ``j = 0 ..
    failure_threshold - 1``, ``"open"`` and ``"half-open"``.  Requires
    ``0 < availability < 1`` — at the boundaries some states become
    unreachable and the chain is reducible (handled in closed form by
    :func:`circuit_breaker_availability`).

    Examples
    --------
    >>> chain = circuit_breaker_chain(
    ...     0.9, CircuitBreakerPolicy(failure_threshold=2))
    >>> chain.states
    (('closed', 0), ('closed', 1), 'open', 'half-open')
    """
    a = check_probability(availability, "availability")
    if not 0.0 < a < 1.0:
        raise ValidationError(
            "availability must be strictly inside (0, 1) for the chain "
            f"to be irreducible, got {a!r}; use "
            "circuit_breaker_availability() which handles the boundaries"
        )
    lam = policy.request_rate
    probe = policy.probe_rate
    threshold = policy.failure_threshold
    reset_rate = 1.0 / policy.reset_timeout
    builder = CTMCBuilder()
    for j in range(threshold):
        builder.add_state(("closed", j))
    builder.add_state("open")
    builder.add_state("half-open")
    for j in range(threshold):
        # A failed attempt extends the streak; the last one trips open.
        failed_to = ("closed", j + 1) if j + 1 < threshold else "open"
        builder.add_transition(("closed", j), failed_to, lam * (1.0 - a))
        if j > 0:  # a success resets the streak (j = 0 stays put)
            builder.add_transition(("closed", j), ("closed", 0), lam * a)
    builder.add_transition("open", "half-open", reset_rate)
    builder.add_transition("half-open", ("closed", 0), probe * a)
    builder.add_transition("half-open", "open", probe * (1.0 - a))
    return builder.build()


def circuit_breaker_availability(
    availability: float, policy: CircuitBreakerPolicy
) -> CircuitBreakerResult:
    """Closed-form user-perceived availability under a circuit breaker.

    The steady state of :func:`circuit_breaker_chain` weighs the demand:
    with ``pi_C`` total closed occupancy and ``pi_H`` half-open
    occupancy, the served fraction of demand is ``A * (pi_C +
    (probe_rate / request_rate) * pi_H)``.

    Examples
    --------
    A healthy service keeps the breaker closed and costs nothing:

    >>> result = circuit_breaker_availability(
    ...     0.999, CircuitBreakerPolicy(failure_threshold=3,
    ...                                 reset_timeout=30.0))
    >>> result.availability > 0.998
    True

    A failing service trips it, and short-circuits dominate:

    >>> bad = circuit_breaker_availability(
    ...     0.2, CircuitBreakerPolicy(failure_threshold=3,
    ...                               reset_timeout=30.0))
    >>> bad.short_circuit_probability > 0.5
    True
    """
    a = check_probability(availability, "availability")
    probe_share = policy.probe_rate / policy.request_rate
    if a >= 1.0:
        # Never a failure: the breaker never trips.
        return CircuitBreakerResult(
            attempt_availability=1.0,
            availability=1.0,
            closed_probability=1.0,
            open_probability=0.0,
            half_open_probability=0.0,
            short_circuit_probability=0.0,
        )
    if a <= 0.0:
        # Every attempt fails: after the initial trip the breaker cycles
        # open -> half-open -> open forever; closed states are transient.
        reset_rate = 1.0 / policy.reset_timeout
        pi_half = reset_rate / (reset_rate + policy.probe_rate)
        pi_open = 1.0 - pi_half
        return CircuitBreakerResult(
            attempt_availability=0.0,
            availability=0.0,
            closed_probability=0.0,
            open_probability=pi_open,
            half_open_probability=pi_half,
            short_circuit_probability=(
                pi_open + (1.0 - probe_share) * pi_half
            ),
        )
    chain = circuit_breaker_chain(a, policy)
    pi = chain.steady_state()
    pi_open = pi["open"]
    pi_half = pi["half-open"]
    pi_closed = 1.0 - pi_open - pi_half
    served = a * (pi_closed + probe_share * pi_half)
    return CircuitBreakerResult(
        attempt_availability=a,
        availability=served,
        closed_probability=pi_closed,
        open_probability=pi_open,
        half_open_probability=pi_half,
        short_circuit_probability=pi_open + (1.0 - probe_share) * pi_half,
    )


# ----------------------------------------------------------------------
# Timeout and hedge: request policies over M/M/c/K response times.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TimeoutPolicy:
    """Declare a request failed unless it responds within *timeout*.

    The paper's conclusion proposes exactly this composite measure: a
    request also fails when "the response time exceeds an acceptable
    threshold".  *timeout* is in the performance-model time unit
    (seconds in the paper's parameterization).
    """

    timeout: float

    def __post_init__(self):
        check_positive(self.timeout, "timeout")


@dataclass(frozen=True)
class HedgePolicy:
    """A timeout policy with one hedged (duplicated) request.

    The client issues at most one spare copy: immediately when the
    original is rejected by the farm's buffer, or after *hedge_delay*
    when no response has arrived yet.  The session succeeds when either
    copy responds within *timeout* of the session start.  Requires
    ``0 < hedge_delay < timeout``.
    """

    timeout: float
    hedge_delay: float

    def __post_init__(self):
        check_positive(self.timeout, "timeout")
        check_positive(self.hedge_delay, "hedge_delay")
        if self.hedge_delay >= self.timeout:
            raise ValidationError(
                f"hedge_delay ({self.hedge_delay}) must be strictly below "
                f"timeout ({self.timeout}); a later hedge can never help"
            )


@dataclass(frozen=True)
class RequestPolicyResult:
    """Analytic evaluation of a timeout or hedge request policy.

    Attributes
    ----------
    availability:
        P(session succeeds): accepted, service-level success, and a
        response within the timeout (either copy, for a hedge).
    blocking_probability:
        Buffer-overflow probability of the (load-adjusted) farm queue.
    timely_probability:
        P(response within the timeout | accepted) for a single request.
    hedge_probability:
        Fraction of sessions that issue the spare request (0 for a plain
        timeout policy).
    effective_arrival_rate:
        Farm arrival rate including hedge duplicates — the fixed point
        of the load-feedback equation (equals the offered rate for a
        plain timeout policy).
    iterations:
        Fixed-point iterations used (0 for a plain timeout policy).
    """

    availability: float
    blocking_probability: float
    timely_probability: float
    hedge_probability: float
    effective_arrival_rate: float
    iterations: int

    def effective_queue(self, queue: MMCKQueue) -> MMCKQueue:
        """*queue* re-loaded with the hedge-inflated arrival rate."""
        return MMCKQueue(
            arrival_rate=self.effective_arrival_rate,
            service_rate=queue.service_rate,
            servers=queue.servers,
            capacity=queue.capacity,
        )


def _timely(queue: MMCKQueue, t: float) -> float:
    """``P(T <= t)`` for an accepted request (0 at or below t = 0)."""
    from ..queueing.responsetime import response_time_survival

    if t <= 0.0:
        return 0.0
    return 1.0 - response_time_survival(queue, t)


def request_policy_availability(
    queue: MMCKQueue,
    policy: Union[TimeoutPolicy, HedgePolicy],
    attempt_availability: float = 1.0,
    tol: float = 1e-12,
    max_iterations: int = 200,
) -> RequestPolicyResult:
    """Effective availability of a timeout or hedge policy, in closed form.

    Parameters
    ----------
    queue:
        The farm performance model at the *offered* (un-hedged) load.
    policy:
        A :class:`TimeoutPolicy` or :class:`HedgePolicy`.
    attempt_availability:
        Probability the service handles the session correctly given a
        timely response — the availability-model multiplier of the farm
        state under evaluation.  It is applied once per session (a
        degraded service fails the duplicate too), so hedging buys back
        latency and blocking, not service-level failures.
    tol / max_iterations:
        Convergence control of the hedge load-feedback fixed point
        (relative change of the effective arrival rate).

    Notes
    -----
    For a timeout ``tau``::

        A = m (1 - pK) F(tau)

    with ``F`` the accepted-request response-time CDF and ``m`` the
    attempt availability.  A hedge with delay ``d`` issues its spare
    with probability ``w = pK + (1 - pK) S(d)`` — immediately on a
    buffer rejection, or at ``d`` when the original is still in flight —
    so the farm sees arrivals at ``lambda (1 + w)``, which changes
    ``pK`` and ``S`` and hence ``w``: the effective rate is resolved as
    a fixed point first.  At that rate, conditioning on the original's
    fate gives::

        A = m [ pK (1-pK) F(tau)
              + (1-pK) (1 - S(tau) (pK + (1-pK) S(tau - d))) ]

    — the min of two i.i.d. conditional response times, the second
    shifted by the hedge delay.

    Examples
    --------
    >>> q = MMCKQueue(arrival_rate=100.0, service_rate=100.0, servers=4,
    ...               capacity=10)
    >>> plain = request_policy_availability(q, TimeoutPolicy(0.05))
    >>> hedged = request_policy_availability(q, HedgePolicy(0.05, 0.01))
    >>> hedged.availability > plain.availability
    True
    >>> hedged.effective_arrival_rate > q.arrival_rate
    True
    """
    m = check_probability(attempt_availability, "attempt_availability")
    check_positive(tol, "tol")
    check_positive_int(max_iterations, "max_iterations")
    if isinstance(policy, TimeoutPolicy):
        blocking = queue.blocking_probability()
        timely = _timely(queue, policy.timeout)
        return RequestPolicyResult(
            availability=m * (1.0 - blocking) * timely,
            blocking_probability=blocking,
            timely_probability=timely,
            hedge_probability=0.0,
            effective_arrival_rate=queue.arrival_rate,
            iterations=0,
        )
    if not isinstance(policy, HedgePolicy):
        raise ValidationError(
            f"policy must be a TimeoutPolicy or HedgePolicy, got {policy!r}"
        )
    tau = policy.timeout
    delay = policy.hedge_delay
    offered = queue.arrival_rate

    def loaded(rate: float) -> MMCKQueue:
        return MMCKQueue(
            arrival_rate=rate,
            service_rate=queue.service_rate,
            servers=queue.servers,
            capacity=queue.capacity,
        )

    # Fixed point on the effective arrival rate: each session offers one
    # request plus a spare with probability w(rate).  The map rate ->
    # offered * (1 + w(rate)) is increasing and bounded by 2 * offered,
    # so iterating from the un-hedged rate converges monotonically.
    rate = offered
    hedge_p = 0.0
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        q = loaded(rate)
        blocking = q.blocking_probability()
        hedge_p = blocking + (1.0 - blocking) * (1.0 - _timely(q, delay))
        next_rate = offered * (1.0 + hedge_p)
        if abs(next_rate - rate) <= tol * offered:
            rate = next_rate
            break
        rate = next_rate
    else:
        raise SolverError(
            "hedge load-feedback fixed point did not converge within "
            f"{max_iterations} iterations (rate {rate!r})"
        )
    q = loaded(rate)
    blocking = q.blocking_probability()
    f_tau = _timely(q, tau)
    s_tau = 1.0 - f_tau
    s_delay = 1.0 - _timely(q, delay)
    f_gap = _timely(q, tau - delay)
    accepted = 1.0 - blocking
    # Condition on the original: rejected (spare immediately), done
    # before the hedge fires, or racing the spare.
    success = accepted * (
        blocking * f_tau
        + 1.0
        - s_tau * (blocking + accepted * (1.0 - f_gap))
    )
    return RequestPolicyResult(
        availability=m * success,
        blocking_probability=blocking,
        timely_probability=f_tau,
        hedge_probability=blocking + accepted * s_delay,
        effective_arrival_rate=rate,
        iterations=iterations,
    )


# ----------------------------------------------------------------------
# The policy-comparison campaign: policies x farm fault states.
# ----------------------------------------------------------------------

ClientPolicy = Union[RetryPolicy, CircuitBreakerPolicy, TimeoutPolicy, HedgePolicy]


def policy_label(policy: ClientPolicy) -> str:
    """A short, stable display label for any supported client policy."""
    if isinstance(policy, RetryPolicy):
        return (
            f"retry(k={policy.max_retries}, p={policy.persistence:g})"
        )
    if isinstance(policy, CircuitBreakerPolicy):
        return (
            f"breaker(f={policy.failure_threshold}, "
            f"reset={policy.reset_timeout:g})"
        )
    if isinstance(policy, HedgePolicy):
        return f"hedge(t={policy.timeout:g}, d={policy.hedge_delay:g})"
    if isinstance(policy, TimeoutPolicy):
        return f"timeout(t={policy.timeout:g})"
    raise ValidationError(
        f"unsupported client policy type: {type(policy).__name__!r}"
    )


@dataclass(frozen=True)
class FarmFaultScenario:
    """One fault state of the web farm for policy comparison.

    Attributes
    ----------
    name:
        Scenario name (e.g. ``"degraded"``).
    servers_up:
        Operational servers in this state (0 = total outage).
    arrival_factor:
        Multiplier on the nominal arrival rate (a traffic surge, or a
        failover concentrating load).
    service_availability:
        Probability the service handles an accepted, timely request
        correctly in this state — the availability-model multiplier
        (e.g. a degraded coverage mode dropping sessions).
    weight:
        Relative weight of the scenario in the ranked comparison
        (normalized over the scenario set; typically the state
        probability from an availability model).
    """

    name: str
    servers_up: int
    arrival_factor: float = 1.0
    service_availability: float = 1.0
    weight: float = 1.0

    def __post_init__(self):
        if not self.name:
            raise ValidationError("scenario name must be non-empty")
        check_non_negative(self.servers_up, "servers_up")
        if int(self.servers_up) != self.servers_up:
            raise ValidationError(
                f"servers_up must be an integer, got {self.servers_up!r}"
            )
        check_positive(self.arrival_factor, "arrival_factor")
        check_probability(self.service_availability, "service_availability")
        check_positive(self.weight, "weight")


@dataclass(frozen=True)
class PolicyCell:
    """One (policy, scenario) cell of a policy comparison."""

    policy: str
    scenario: str
    availability: float
    attempt_availability: float
    detail: Tuple[Tuple[str, float], ...] = ()


@dataclass(frozen=True)
class PolicyRank:
    """Aggregate ranking entry for one policy."""

    policy: str
    mean_availability: float
    worst_availability: float
    worst_scenario: str


@dataclass(frozen=True)
class PolicyComparisonReport:
    """Ranked outcome of a policy-comparison campaign.

    ``ranking`` is sorted by weighted mean availability (descending,
    label-alphabetical ties), ``cells`` holds every (policy, scenario)
    evaluation in grid order.
    """

    cells: Tuple[PolicyCell, ...]
    ranking: Tuple[PolicyRank, ...]
    scenarios: Tuple[FarmFaultScenario, ...]

    @property
    def best(self) -> PolicyRank:
        """The top-ranked policy."""
        return self.ranking[0]

    def cell(self, policy: str, scenario: str) -> PolicyCell:
        """Look up one cell by policy label and scenario name."""
        for item in self.cells:
            if item.policy == policy and item.scenario == scenario:
                return item
        raise ValidationError(
            f"no cell for policy {policy!r} and scenario {scenario!r}"
        )


def evaluate_policy_cell(
    policy: ClientPolicy,
    scenario: FarmFaultScenario,
    arrival_rate: float,
    service_rate: float,
    capacity: int,
) -> PolicyCell:
    """Evaluate one client policy in one farm fault state.

    The farm in state *scenario* is an M/M/c/K with ``c =
    scenario.servers_up`` servers at ``arrival_rate *
    scenario.arrival_factor`` offered load (capacity is never shrunk
    below the server count).  Retry and circuit-breaker policies see the
    per-attempt availability ``(1 - pK) * service_availability``;
    timeout and hedge policies are evaluated over the full response-time
    distribution of that queue.
    """
    check_rate(arrival_rate, "arrival_rate")
    check_rate(service_rate, "service_rate")
    check_positive_int(capacity, "capacity")
    label = policy_label(policy)
    if scenario.servers_up <= 0:
        # Total outage: nothing any client policy can do.
        return PolicyCell(
            policy=label,
            scenario=scenario.name,
            availability=0.0,
            attempt_availability=0.0,
        )
    queue = MMCKQueue(
        arrival_rate=arrival_rate * scenario.arrival_factor,
        service_rate=service_rate,
        servers=int(scenario.servers_up),
        capacity=max(capacity, int(scenario.servers_up)),
    )
    blocking = queue.blocking_probability()
    attempt = (1.0 - blocking) * scenario.service_availability
    if isinstance(policy, RetryPolicy):
        outcome = session_outcome(attempt, policy)
        return PolicyCell(
            policy=label,
            scenario=scenario.name,
            availability=outcome.served,
            attempt_availability=attempt,
            detail=(
                ("abandoned", outcome.abandoned),
                ("exhausted", outcome.exhausted),
                ("expected_attempts", outcome.expected_attempts),
            ),
        )
    if isinstance(policy, CircuitBreakerPolicy):
        result = circuit_breaker_availability(attempt, policy)
        return PolicyCell(
            policy=label,
            scenario=scenario.name,
            availability=result.availability,
            attempt_availability=attempt,
            detail=(
                ("open", result.open_probability),
                ("half_open", result.half_open_probability),
                ("short_circuited", result.short_circuit_probability),
            ),
        )
    result = request_policy_availability(
        queue, policy, attempt_availability=scenario.service_availability
    )
    return PolicyCell(
        policy=label,
        scenario=scenario.name,
        availability=result.availability,
        attempt_availability=attempt,
        detail=(
            ("blocking", result.blocking_probability),
            ("timely", result.timely_probability),
            ("hedged", result.hedge_probability),
            ("effective_rate", result.effective_arrival_rate),
        ),
    )


def _rank(
    cells: Sequence[PolicyCell],
    scenarios: Sequence[FarmFaultScenario],
) -> Tuple[PolicyRank, ...]:
    weights = {s.name: s.weight for s in scenarios}
    total_weight = sum(weights.values())
    by_policy: Dict[str, list] = {}
    for cell in cells:
        by_policy.setdefault(cell.policy, []).append(cell)
    ranking = []
    for label, items in by_policy.items():
        mean = sum(
            weights[c.scenario] * c.availability for c in items
        ) / total_weight
        worst = min(items, key=lambda c: (c.availability, c.scenario))
        ranking.append(PolicyRank(
            policy=label,
            mean_availability=mean,
            worst_availability=worst.availability,
            worst_scenario=worst.scenario,
        ))
    ranking.sort(key=lambda r: (-r.mean_availability, r.policy))
    return tuple(ranking)


def compare_client_policies(
    policies: Sequence[ClientPolicy],
    scenarios: Sequence[FarmFaultScenario],
    arrival_rate: float,
    service_rate: float,
    capacity: int,
    engine=None,
) -> PolicyComparisonReport:
    """Run the policy x fault-scenario comparison grid.

    Every (policy, scenario) cell becomes one keyed task of a
    :class:`repro.engine.TaskGraph`
    (:func:`repro.engine.client_policy_task`), so the grid flows through
    the same cache/parallel/resume/observability machinery as the
    Fig. 11/12 sweeps: a process-pool engine evaluates cells in parallel
    with bit-identical results, a warm :class:`~repro.engine.MemoCache`
    skips unchanged cells, and engine metrics/traces cover the run.

    Parameters
    ----------
    policies:
        Any mix of :class:`~repro.resilience.RetryPolicy`,
        :class:`CircuitBreakerPolicy`, :class:`TimeoutPolicy` and
        :class:`HedgePolicy` (at least one; duplicate labels rejected).
    scenarios:
        The farm fault states to evaluate under (at least one; duplicate
        names rejected).
    arrival_rate / service_rate / capacity:
        The nominal farm: offered request rate, per-server service rate
        and total buffer capacity (scenarios scale the rate and set the
        operational server count).
    engine:
        Optional :class:`repro.engine.EvaluationEngine`; defaults to a
        serial engine with an in-memory cache.

    Examples
    --------
    >>> from repro.resilience import RetryPolicy
    >>> report = compare_client_policies(
    ...     [RetryPolicy(max_retries=2), TimeoutPolicy(0.05)],
    ...     [FarmFaultScenario("nominal", servers_up=4)],
    ...     arrival_rate=100.0, service_rate=100.0, capacity=10)
    >>> report.best.policy
    'retry(k=2, p=1)'
    """
    if not policies:
        raise ValidationError("compare_client_policies needs >= 1 policy")
    if not scenarios:
        raise ValidationError("compare_client_policies needs >= 1 scenario")
    labels = [policy_label(p) for p in policies]
    if len(set(labels)) != len(labels):
        raise ValidationError(f"duplicate policy labels: {labels}")
    names = [s.name for s in scenarios]
    if len(set(names)) != len(names):
        raise ValidationError(f"duplicate scenario names: {names}")
    check_rate(arrival_rate, "arrival_rate")
    check_rate(service_rate, "service_rate")
    check_positive_int(capacity, "capacity")

    from ..engine import EvaluationEngine, TaskGraph, client_policy_task

    if engine is None:
        engine = EvaluationEngine()
    graph = TaskGraph()
    order = []
    for i, policy in enumerate(policies):
        for j, scenario in enumerate(scenarios):
            name = f"cell-{i}-{j}"
            client_policy_task(
                graph, name, policy, scenario,
                arrival_rate=arrival_rate,
                service_rate=service_rate,
                capacity=capacity,
            )
            order.append(name)
    result = engine.run_graph(graph, phase="policy-comparison")
    cells = tuple(result.values[name] for name in order)
    return PolicyComparisonReport(
        cells=cells,
        ranking=_rank(cells, scenarios),
        scenarios=tuple(scenarios),
    )
