"""The fault-injection campaign engine.

A *campaign* runs the end-to-end simulator
(:func:`repro.sim.endtoend.simulate_user_availability_over_time`)
``replications`` times against a fault scenario, with independent
streams spawned from one seed, and summarizes the user-perceived
availability across replications: mean, standard error, and the z-score
against the analytic eq.-(10) value.

Two uses:

* **validation** — under the :class:`~repro.resilience.faults.NullScenario`
  (faults only at the model's own rates), the campaign mean must sit
  within ~2 standard errors of the analytic value; the benchmark
  harness asserts this.
* **robustness probing** — scripted/stochastic scenarios (correlated
  LAN+host outages, coverage-mode degradation) violate the independence
  assumptions behind eq. (10) on purpose; the measured availability
  drop quantifies how optimistic the analytic model is for that fault
  class.

Fault tolerance
---------------
Campaigns are the longest-running code path in the library, so the
runner is built on :mod:`repro.runtime`:

* a :class:`~repro.runtime.CancellationToken` is polled between *and
  inside* replications, so deadlines and interactive cancellation take
  effect at a clean boundary;
* with a :class:`~repro.runtime.Journal` attached, the campaign
  configuration and every completed replication are durably recorded
  (fsync per record), and :func:`resume_campaign` reconstructs the
  completed work and re-runs only the missing replications.

Because replication ``i`` always draws from stream ``i`` of
``SeedSequence(seed).spawn(replications)`` — never from a shared
generator — a resumed campaign is **bit-identical** to an uninterrupted
run with the same seed, no matter where the interruption fell.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from .._validation import check_positive, check_positive_int, check_rate
from ..core import HierarchicalModel
from ..errors import ResumeError, ValidationError
from ..obs.context import active_metrics, active_tracer
from ..profiles import UserClass
from ..runtime.budget import CancellationToken
from ..runtime.heartbeat import HeartbeatCallback, ProgressEvent
from ..runtime.journal import Journal, read_journal
from ..sim.endtoend import EndToEndResult, simulate_user_availability_over_time
from .faults import FaultScenario, NullScenario

__all__ = [
    "CampaignResult",
    "run_campaign",
    "run_campaigns",
    "resume_campaign",
]

JournalLike = Union[Journal, str, "Path"]


@dataclass(frozen=True)
class CampaignResult:
    """Summary of one (user class, scenario) fault-injection campaign.

    Attributes
    ----------
    user_class:
        Name of the evaluated user class.
    scenario:
        Name of the injected fault scenario.
    analytic_availability:
        The eq.-(10) value of the *unfaulted* model — the reference the
        campaign is compared against.
    replications:
        Per-replication end-to-end results.
    seed:
        Campaign seed (replication streams are spawned from it).
    """

    user_class: str
    scenario: str
    analytic_availability: float
    replications: Tuple[EndToEndResult, ...]
    seed: int

    @property
    def values(self) -> Tuple[float, ...]:
        """Per-replication average user availabilities."""
        return tuple(
            r.average_user_availability for r in self.replications
        )

    @property
    def mean_availability(self) -> float:
        """Mean simulated availability across replications."""
        return float(np.mean(self.values))

    @property
    def stderr(self) -> float:
        """Standard error of the mean across replications."""
        values = self.values
        if len(values) < 2:
            return float("nan")
        return float(np.std(values, ddof=1) / math.sqrt(len(values)))

    @property
    def z_score(self) -> float:
        """Deviation from the analytic value, in standard errors."""
        se = self.stderr
        if not se or math.isnan(se):
            return float("nan")
        return (self.mean_availability - self.analytic_availability) / se

    @property
    def availability_drop(self) -> float:
        """Analytic minus simulated availability (positive = faults hurt)."""
        return self.analytic_availability - self.mean_availability

    @property
    def mean_outage_fraction(self) -> float:
        """Mean fraction of time with a total user-perceived outage."""
        return float(
            np.mean([r.fraction_total_outage for r in self.replications])
        )

    def agrees_with_analytic(self, sigmas: float = 2.0) -> bool:
        """True when the campaign mean is within *sigmas* standard errors."""
        return abs(self.mean_availability - self.analytic_availability) <= (
            sigmas * self.stderr
        )


#: Journal-record fields of one replication, in EndToEndResult order.
_REPLICATION_FIELDS = (
    "horizon",
    "average_user_availability",
    "fraction_fully_available",
    "fraction_total_outage",
    "resource_transitions",
    "fault_events_applied",
)


def _replication_record(index: int, result: EndToEndResult) -> dict:
    record = {"index": index}
    for name in _REPLICATION_FIELDS:
        record[name] = getattr(result, name)
    return record


def _result_from_record(record: dict) -> EndToEndResult:
    # JSON round-trips Python floats exactly (repr shortest-round-trip),
    # so the reconstructed result is bit-identical to the one journaled.
    return EndToEndResult(
        horizon=float(record["horizon"]),
        average_user_availability=float(record["average_user_availability"]),
        fraction_fully_available=float(record["fraction_fully_available"]),
        fraction_total_outage=float(record["fraction_total_outage"]),
        resource_transitions=int(record["resource_transitions"]),
        fault_events_applied=int(record["fault_events_applied"]),
    )


def _run_replication(
    model: HierarchicalModel,
    user_class: UserClass,
    scenario: FaultScenario,
    horizon: float,
    stream: np.random.SeedSequence,
    default_repair_rate: float,
    cancellation: Optional[CancellationToken],
    observer=None,
) -> EndToEndResult:
    """One replication from its dedicated seed stream (resume-stable)."""
    rng = np.random.default_rng(stream)
    faults = scenario.compile(model, horizon, rng)
    return simulate_user_availability_over_time(
        model,
        user_class,
        horizon=horizon,
        rng=rng,
        default_repair_rate=default_repair_rate,
        faults=faults,
        cancellation=cancellation,
        observer=observer,
    )


class _ShiftedObserver:
    """Re-bases one replication's sim-time onto the campaign timeline.

    Replication *i* simulates ``[0, horizon)``; the campaign observer
    sees it as ``[i * horizon, (i + 1) * horizon)`` so sliding windows
    (e.g. an :class:`repro.obs.slo.SLOMonitor`) span replication
    boundaries instead of restarting at zero every time.
    """

    def __init__(self, observer, offset: float):
        self._observer = observer
        self._offset = offset

    def interval(self, start: float, end: float, availability: float) -> None:
        self._observer.interval(
            start + self._offset, end + self._offset, availability
        )

    def fault(self, time: float, event) -> None:
        self._observer.fault(time + self._offset, event)


def _note_replication(metrics, scenario_name: str, class_name: str,
                      result: EndToEndResult) -> None:
    """Record one finished replication's fault/repair activity."""
    if metrics is None:
        return
    metrics.counter(
        "campaign_replications",
        help="Fault-injection replications completed.",
        scenario=scenario_name,
        user_class=class_name,
    ).inc()
    metrics.counter(
        "campaign_fault_events",
        help="Injected failure/repair events applied, by scenario.",
        scenario=scenario_name,
    ).inc(result.fault_events_applied)
    metrics.counter(
        "campaign_resource_transitions",
        help="Resource up/down transitions simulated, by scenario.",
        scenario=scenario_name,
    ).inc(result.resource_transitions)


def _beat(
    heartbeat: Optional[HeartbeatCallback],
    phase: str,
    completed: int,
    total: int,
    message: str = "",
) -> None:
    if heartbeat is not None:
        heartbeat(ProgressEvent(
            phase=phase, completed=completed, total=total, message=message
        ))


def _replication_payload(payload) -> EndToEndResult:
    """Engine work function for one replication (module-level: picklable).

    Cancellation is handled by the parent between completions, not
    inside workers, so parallel cancellation has replication
    granularity.
    """
    model, user_class, scenario, horizon, stream, default_repair_rate = payload
    return _run_replication(
        model, user_class, scenario, horizon, stream,
        default_repair_rate, None,
    )


def run_campaign(
    model: HierarchicalModel,
    user_class: UserClass,
    scenario: Optional[FaultScenario] = None,
    horizon: float = 20_000.0,
    replications: int = 8,
    seed: int = 0,
    default_repair_rate: float = 1.0,
    cancellation: Optional[CancellationToken] = None,
    journal: Optional[JournalLike] = None,
    heartbeat: Optional[HeartbeatCallback] = None,
    journal_meta: Optional[dict] = None,
    workers: int = 1,
    observer=None,
) -> CampaignResult:
    """Run one fault-injection campaign.

    Parameters
    ----------
    model:
        The hierarchical model under test.
    user_class:
        Scenario mix to evaluate.
    scenario:
        Fault scenario to inject; ``None`` or
        :class:`~repro.resilience.faults.NullScenario` runs the
        calibration campaign (faults only at the model's own rates).
    horizon:
        Simulated time span per replication (availability-model unit).
    replications:
        Number of independent replications; streams are spawned from
        *seed* via :class:`numpy.random.SeedSequence`, so a campaign is
        fully reproducible from ``(seed, horizon, replications)``.
    seed:
        Campaign seed.
    default_repair_rate:
        Passed through to the end-to-end simulator for resources that
        only carry an availability number.
    cancellation:
        Optional :class:`~repro.runtime.CancellationToken`; polled per
        simulated transition and between replications.  On cancellation
        or deadline the journal (if any) keeps every completed
        replication, ready for :func:`resume_campaign`.
    journal:
        Optional :class:`~repro.runtime.Journal` (or a path to create
        one).  The file must be empty/absent — resuming an existing
        journal goes through :func:`resume_campaign` instead.
    heartbeat:
        Optional progress callback invoked after every replication.
    journal_meta:
        Free-form JSON-serializable dict stored in the
        ``campaign_start`` record; the CLI stashes what it needs to
        rebuild the model on ``repro resume``.
    workers:
        Worker processes for the replications (default 1 = in-process).
        Because replication ``i`` always draws from its own spawned
        stream, the parallel result is **bit-identical** to the serial
        one; results are assembled by replication index, and the journal
        records each replication as it completes (indices may land out
        of order — resume handles that).  With ``workers > 1``,
        cancellation takes effect between replication completions rather
        than inside a replication.
    observer:
        Optional streaming consumer with ``interval(start, end,
        availability)`` and ``fault(time, event)`` — typically an
        :class:`repro.obs.slo.SLOMonitor` or
        :class:`~repro.obs.slo.PoissonSessionSampler`.  Replication
        ``i``'s events are re-based onto ``[i * horizon, (i + 1) *
        horizon)`` so the observer sees one continuous campaign
        timeline.  Streaming requires an ordered timeline, so it is
        serial-only: combining ``observer`` with ``workers > 1`` raises
        :class:`~repro.errors.ValidationError`.

    Examples
    --------
    >>> from repro.ta import CLASS_A, TravelAgencyModel
    >>> ta = TravelAgencyModel()
    >>> result = run_campaign(ta.hierarchical_model, CLASS_A,
    ...                       horizon=2000.0, replications=3, seed=7)
    >>> len(result.replications)
    3
    """
    horizon = check_positive(horizon, "horizon")
    replications = check_positive_int(replications, "replications")
    workers = check_positive_int(workers, "workers")
    check_rate(default_repair_rate, "default_repair_rate")
    if observer is not None and workers > 1 and replications > 1:
        raise ValidationError(
            "a streaming observer needs the replications in timeline "
            f"order; run with workers=1 (got workers={workers})"
        )
    if scenario is None:
        scenario = NullScenario()

    owns_journal = journal is not None and not isinstance(journal, Journal)
    if owns_journal:
        path = Path(journal)
        if path.exists() and read_journal(path, missing_ok=True):
            raise ResumeError(
                f"journal {path} already holds records; resume it with "
                "resume_campaign() / `repro resume` instead of starting a "
                "new campaign over it"
            )
        journal = Journal(path)
    elif isinstance(journal, Journal) and journal.next_seq:
        raise ResumeError(
            "journal already holds records; resume it with "
            "resume_campaign() / `repro resume` instead"
        )

    analytic = model.user_availability(user_class).availability
    phase = f"campaign {user_class.name}/{scenario.name}"
    try:
        if journal is not None:
            journal.append(
                "campaign_start",
                user_class=user_class.name,
                scenario=scenario.name,
                horizon=horizon,
                replications=replications,
                seed=seed,
                default_repair_rate=default_repair_rate,
                analytic_availability=analytic,
                meta=journal_meta or {},
            )
        _beat(heartbeat, phase, 0, replications, "starting")
        metrics = active_metrics()
        tracer = active_tracer()
        streams = np.random.SeedSequence(seed).spawn(replications)
        results: List[EndToEndResult] = []
        if workers == 1 or replications == 1:
            for index, stream in enumerate(streams):
                if cancellation is not None:
                    cancellation.check()
                shifted = (
                    _ShiftedObserver(observer, index * horizon)
                    if observer is not None
                    else None
                )
                if tracer is not None:
                    with tracer.span(
                        "replication", category="campaign",
                        scenario=scenario.name, index=index,
                    ):
                        result = _run_replication(
                            model, user_class, scenario, horizon, stream,
                            default_repair_rate, cancellation, shifted,
                        )
                else:
                    result = _run_replication(
                        model, user_class, scenario, horizon, stream,
                        default_repair_rate, cancellation, shifted,
                    )
                results.append(result)
                _note_replication(
                    metrics, scenario.name, user_class.name, result
                )
                if journal is not None:
                    journal.append(
                        "replication", **_replication_record(index, result)
                    )
                _beat(
                    heartbeat, phase, index + 1, replications,
                    f"A={result.average_user_availability:.6f}",
                )
        else:
            from ..engine import EvaluationEngine

            completed_count = 0

            def _on_result(index: int, result: EndToEndResult) -> None:
                nonlocal completed_count
                completed_count += 1
                _note_replication(
                    metrics, scenario.name, user_class.name, result
                )
                if journal is not None:
                    journal.append(
                        "replication", **_replication_record(index, result)
                    )
                _beat(
                    heartbeat, phase, completed_count, replications,
                    f"A={result.average_user_availability:.6f}",
                )

            payloads = [
                (model, user_class, scenario, horizon, stream,
                 default_repair_rate)
                for stream in streams
            ]
            batch = EvaluationEngine(
                workers=workers, cancellation=cancellation
            ).map(_replication_payload, payloads, phase=phase,
                  on_result=_on_result)
            results = list(batch.outputs)
        campaign = CampaignResult(
            user_class=user_class.name,
            scenario=scenario.name,
            analytic_availability=analytic,
            replications=tuple(results),
            seed=seed,
        )
        if journal is not None:
            journal.append(
                "campaign_end",
                mean_availability=campaign.mean_availability,
                stderr=campaign.stderr,
            )
        return campaign
    finally:
        if owns_journal:
            journal.close()


def resume_campaign(
    journal: JournalLike,
    model: HierarchicalModel,
    user_class: UserClass,
    scenario: Optional[FaultScenario] = None,
    cancellation: Optional[CancellationToken] = None,
    heartbeat: Optional[HeartbeatCallback] = None,
) -> CampaignResult:
    """Resume an interrupted campaign from its journal.

    Completed replications are reconstructed from the journal; only the
    missing ones are simulated, each from the *same* spawned seed stream
    it would have used originally.  The returned
    :class:`CampaignResult` is therefore bit-identical to what the
    uninterrupted run would have produced, and the journal ends up in
    the same state as a never-interrupted journaled run.

    Parameters
    ----------
    journal:
        Journal (or path) written by :func:`run_campaign`; it will be
        appended to.  A journal holding only a torn tail or nothing past
        ``campaign_start`` resumes to a full fresh run.
    model / user_class / scenario:
        Must denote the same campaign the journal was started with;
        names and the recomputed analytic availability are checked and a
        mismatch raises :class:`~repro.errors.ResumeError`.
    cancellation / heartbeat:
        As in :func:`run_campaign`; a resume can itself be interrupted
        and resumed again.

    Raises
    ------
    ResumeError
        On a corrupt journal, a missing ``campaign_start`` record, or a
        model/configuration mismatch.
    """
    if scenario is None:
        scenario = NullScenario()
    owns_journal = not isinstance(journal, Journal)
    path = journal.path if isinstance(journal, Journal) else Path(journal)
    records = read_journal(path)
    start = next(
        (r for r in records if r.get("kind") == "campaign_start"), None
    )
    if start is None:
        raise ResumeError(
            f"journal {path} has no campaign_start record; nothing to resume"
        )
    if start["user_class"] != user_class.name:
        raise ResumeError(
            f"journal {path} was recorded for user class "
            f"{start['user_class']!r}, not {user_class.name!r}"
        )
    if start["scenario"] != scenario.name:
        raise ResumeError(
            f"journal {path} was recorded for scenario "
            f"{start['scenario']!r}, not {scenario.name!r}"
        )
    horizon = float(start["horizon"])
    replications = int(start["replications"])
    seed = int(start["seed"])
    default_repair_rate = float(start["default_repair_rate"])
    recomputed = model.user_availability(user_class).availability
    analytic = float(start["analytic_availability"])
    # Tolerate last-ulp noise (float summation order can differ between
    # processes under hash randomization) but catch real model drift.
    # The journaled value is authoritative for the resumed result, which
    # keeps it bit-identical to the uninterrupted run's.
    if not math.isclose(recomputed, analytic, rel_tol=1e-9, abs_tol=1e-12):
        raise ResumeError(
            f"journal {path} was recorded against analytic availability "
            f"{analytic!r}, but this model computes {recomputed!r}; the "
            "model or its parameters changed"
        )

    completed: Dict[int, EndToEndResult] = {}
    for record in records:
        if record.get("kind") != "replication":
            continue
        index = int(record["index"])
        if not 0 <= index < replications:
            raise ResumeError(
                f"journal {path} holds replication index {index} outside "
                f"0..{replications - 1}"
            )
        completed[index] = _result_from_record(record)

    phase = f"resume {user_class.name}/{scenario.name}"
    _beat(
        heartbeat, phase, len(completed), replications,
        f"{len(completed)} replication(s) restored from journal",
    )

    metrics = active_metrics()
    if metrics is not None and completed:
        metrics.counter(
            "campaign_replications_restored",
            help="Replications restored from resume journals.",
            scenario=scenario.name,
            user_class=user_class.name,
        ).inc(len(completed))

    if owns_journal:
        journal = Journal(path)
    try:
        streams = np.random.SeedSequence(seed).spawn(replications)
        results: List[EndToEndResult] = []
        for index, stream in enumerate(streams):
            if index in completed:
                results.append(completed[index])
                continue
            if cancellation is not None:
                cancellation.check()
            result = _run_replication(
                model, user_class, scenario, horizon, stream,
                default_repair_rate, cancellation,
            )
            results.append(result)
            _note_replication(metrics, scenario.name, user_class.name, result)
            journal.append(
                "replication", **_replication_record(index, result)
            )
            _beat(
                heartbeat, phase, index + 1, replications,
                f"A={result.average_user_availability:.6f}",
            )
        campaign = CampaignResult(
            user_class=user_class.name,
            scenario=scenario.name,
            analytic_availability=analytic,
            replications=tuple(results),
            seed=seed,
        )
        if not any(r.get("kind") == "campaign_end" for r in records):
            journal.append(
                "campaign_end",
                mean_availability=campaign.mean_availability,
                stderr=campaign.stderr,
            )
        return campaign
    finally:
        if owns_journal:
            journal.close()


def run_campaigns(
    model: HierarchicalModel,
    user_classes: Iterable[UserClass],
    scenarios: Iterable[FaultScenario],
    horizon: float = 20_000.0,
    replications: int = 8,
    seed: int = 0,
    default_repair_rate: float = 1.0,
    cancellation: Optional[CancellationToken] = None,
    heartbeat: Optional[HeartbeatCallback] = None,
    workers: int = 1,
) -> List[CampaignResult]:
    """The full campaign grid: every user class under every scenario.

    Seeds are varied per cell so campaigns never share streams, while
    the grid remains reproducible from the single *seed*.  The
    cancellation token and heartbeat are shared across cells (one
    deadline bounds the whole grid); *workers* parallelizes the
    replications within each cell.
    """
    results: List[CampaignResult] = []
    for c, user_class in enumerate(user_classes):
        for s, scenario in enumerate(scenarios):
            results.append(
                run_campaign(
                    model,
                    user_class,
                    scenario,
                    horizon=horizon,
                    replications=replications,
                    seed=seed + 10_000 * c + 100 * s,
                    default_repair_rate=default_repair_rate,
                    cancellation=cancellation,
                    heartbeat=heartbeat,
                    workers=workers,
                )
            )
    return results
