"""The fault-injection campaign engine.

A *campaign* runs the end-to-end simulator
(:func:`repro.sim.endtoend.simulate_user_availability_over_time`)
``replications`` times against a fault scenario, with independent
streams spawned from one seed, and summarizes the user-perceived
availability across replications: mean, standard error, and the z-score
against the analytic eq.-(10) value.

Two uses:

* **validation** — under the :class:`~repro.resilience.faults.NullScenario`
  (faults only at the model's own rates), the campaign mean must sit
  within ~2 standard errors of the analytic value; the benchmark
  harness asserts this.
* **robustness probing** — scripted/stochastic scenarios (correlated
  LAN+host outages, coverage-mode degradation) violate the independence
  assumptions behind eq. (10) on purpose; the measured availability
  drop quantifies how optimistic the analytic model is for that fault
  class.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from .._validation import check_positive, check_positive_int, check_rate
from ..core import HierarchicalModel
from ..profiles import UserClass
from ..sim.endtoend import EndToEndResult, simulate_user_availability_over_time
from .faults import FaultScenario, NullScenario

__all__ = ["CampaignResult", "run_campaign", "run_campaigns"]


@dataclass(frozen=True)
class CampaignResult:
    """Summary of one (user class, scenario) fault-injection campaign.

    Attributes
    ----------
    user_class:
        Name of the evaluated user class.
    scenario:
        Name of the injected fault scenario.
    analytic_availability:
        The eq.-(10) value of the *unfaulted* model — the reference the
        campaign is compared against.
    replications:
        Per-replication end-to-end results.
    seed:
        Campaign seed (replication streams are spawned from it).
    """

    user_class: str
    scenario: str
    analytic_availability: float
    replications: Tuple[EndToEndResult, ...]
    seed: int

    @property
    def values(self) -> Tuple[float, ...]:
        """Per-replication average user availabilities."""
        return tuple(
            r.average_user_availability for r in self.replications
        )

    @property
    def mean_availability(self) -> float:
        """Mean simulated availability across replications."""
        return float(np.mean(self.values))

    @property
    def stderr(self) -> float:
        """Standard error of the mean across replications."""
        values = self.values
        if len(values) < 2:
            return float("nan")
        return float(np.std(values, ddof=1) / math.sqrt(len(values)))

    @property
    def z_score(self) -> float:
        """Deviation from the analytic value, in standard errors."""
        se = self.stderr
        if not se or math.isnan(se):
            return float("nan")
        return (self.mean_availability - self.analytic_availability) / se

    @property
    def availability_drop(self) -> float:
        """Analytic minus simulated availability (positive = faults hurt)."""
        return self.analytic_availability - self.mean_availability

    @property
    def mean_outage_fraction(self) -> float:
        """Mean fraction of time with a total user-perceived outage."""
        return float(
            np.mean([r.fraction_total_outage for r in self.replications])
        )

    def agrees_with_analytic(self, sigmas: float = 2.0) -> bool:
        """True when the campaign mean is within *sigmas* standard errors."""
        return abs(self.mean_availability - self.analytic_availability) <= (
            sigmas * self.stderr
        )


def run_campaign(
    model: HierarchicalModel,
    user_class: UserClass,
    scenario: Optional[FaultScenario] = None,
    horizon: float = 20_000.0,
    replications: int = 8,
    seed: int = 0,
    default_repair_rate: float = 1.0,
) -> CampaignResult:
    """Run one fault-injection campaign.

    Parameters
    ----------
    model:
        The hierarchical model under test.
    user_class:
        Scenario mix to evaluate.
    scenario:
        Fault scenario to inject; ``None`` or
        :class:`~repro.resilience.faults.NullScenario` runs the
        calibration campaign (faults only at the model's own rates).
    horizon:
        Simulated time span per replication (availability-model unit).
    replications:
        Number of independent replications; streams are spawned from
        *seed* via :class:`numpy.random.SeedSequence`, so a campaign is
        fully reproducible from ``(seed, horizon, replications)``.
    seed:
        Campaign seed.
    default_repair_rate:
        Passed through to the end-to-end simulator for resources that
        only carry an availability number.

    Examples
    --------
    >>> from repro.ta import CLASS_A, TravelAgencyModel
    >>> ta = TravelAgencyModel()
    >>> result = run_campaign(ta.hierarchical_model, CLASS_A,
    ...                       horizon=2000.0, replications=3, seed=7)
    >>> len(result.replications)
    3
    """
    horizon = check_positive(horizon, "horizon")
    replications = check_positive_int(replications, "replications")
    check_rate(default_repair_rate, "default_repair_rate")
    if scenario is None:
        scenario = NullScenario()

    analytic = model.user_availability(user_class).availability
    streams = np.random.SeedSequence(seed).spawn(replications)
    results: List[EndToEndResult] = []
    for stream in streams:
        rng = np.random.default_rng(stream)
        faults = scenario.compile(model, horizon, rng)
        results.append(
            simulate_user_availability_over_time(
                model,
                user_class,
                horizon=horizon,
                rng=rng,
                default_repair_rate=default_repair_rate,
                faults=faults,
            )
        )
    return CampaignResult(
        user_class=user_class.name,
        scenario=scenario.name,
        analytic_availability=analytic,
        replications=tuple(results),
        seed=seed,
    )


def run_campaigns(
    model: HierarchicalModel,
    user_classes: Iterable[UserClass],
    scenarios: Iterable[FaultScenario],
    horizon: float = 20_000.0,
    replications: int = 8,
    seed: int = 0,
    default_repair_rate: float = 1.0,
) -> List[CampaignResult]:
    """The full campaign grid: every user class under every scenario.

    Seeds are varied per cell so campaigns never share streams, while
    the grid remains reproducible from the single *seed*.
    """
    results: List[CampaignResult] = []
    for c, user_class in enumerate(user_classes):
        for s, scenario in enumerate(scenarios):
            results.append(
                run_campaign(
                    model,
                    user_class,
                    scenario,
                    horizon=horizon,
                    replications=replications,
                    seed=seed + 10_000 * c + 100 * s,
                    default_repair_rate=default_repair_rate,
                )
            )
    return results
