"""Graceful-degradation policies: admission control under farm faults.

When the web farm is degraded — servers down, or limping in an
uncovered-failure coverage mode — the M/M/c/K buffer overflows more
often and *every* user class suffers.  A graceful-degradation policy
trades fairness for value: it sheds the load of low-value user classes
while the farm is below a capacity threshold, recomputing the M/M/c/K
loss (:func:`repro.queueing.mmck.mmck_blocking_probability`) with only
the admitted load, so the classes that are kept see a lower blocking
probability.

Evaluation is analytic and per farm state: the farm availability model
supplies the state probabilities, the queueing model the per-state loss
under the admitted load, and the policy decides who is admitted where.
The campaign engine uses the same per-state machinery to score policies
under scripted fault states (``conditional_class_availability``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .._validation import (
    check_non_negative,
    check_non_negative_int,
    check_positive,
)
from ..availability.webservice import WebServiceModel
from ..errors import ValidationError
from ..queueing.mmck import mmck_blocking_probability

__all__ = [
    "ClassLoad",
    "AdmissionPolicy",
    "AdmitAll",
    "ShedClasses",
    "PolicyEvaluation",
    "evaluate_policy",
    "compare_policies",
    "conditional_class_availability",
    "degraded_service_factor",
]


@dataclass(frozen=True)
class ClassLoad:
    """The request load and business value one user class contributes.

    Attributes
    ----------
    name:
        Class name (e.g. ``"class A"``).
    arrival_rate:
        Request rate this class offers, in the performance-model unit
        (requests per second in the paper's parameterization).
    value:
        Relative value of one served request of this class; admission
        policies shed low-value classes first and evaluations report a
        value-weighted served rate.
    """

    name: str
    arrival_rate: float
    value: float = 1.0

    def __post_init__(self):
        if not self.name:
            raise ValidationError("class load name must be non-empty")
        check_positive(self.arrival_rate, "arrival_rate")
        check_non_negative(self.value, "value")


class AdmissionPolicy:
    """Base class: decides which classes are admitted per farm state."""

    name: str = "policy"

    def admits(self, class_name: str, operational_servers: int) -> bool:
        """True when *class_name* is admitted with that many servers up."""
        raise NotImplementedError

    def referenced_classes(self) -> FrozenSet[str]:
        """Class names this policy refers to by name.

        Evaluations check these against the offered
        :class:`ClassLoad` names, so a typo in a policy fails loudly
        instead of silently shedding nothing.
        """
        return frozenset()


@dataclass(frozen=True)
class AdmitAll(AdmissionPolicy):
    """The no-shedding baseline: everyone admitted in every state."""

    name: str = "admit-all"

    def admits(self, class_name: str, operational_servers: int) -> bool:
        return True


@dataclass(frozen=True)
class ShedClasses(AdmissionPolicy):
    """Shed the named classes while the farm is below a server threshold.

    Parameters
    ----------
    shed:
        Names of the classes to shed.
    below_servers:
        Shedding triggers when strictly fewer than this many servers are
        operational (``below_servers = 3`` sheds in states 1 and 2).
    """

    shed: FrozenSet[str]
    below_servers: int
    name: str = "shed-low-value"

    def __post_init__(self):
        object.__setattr__(self, "shed", frozenset(self.shed))
        if not self.shed:
            raise ValidationError("ShedClasses needs at least one class name")
        check_non_negative_int(self.below_servers, "below_servers")

    def admits(self, class_name: str, operational_servers: int) -> bool:
        if class_name not in self.shed:
            return True
        return operational_servers >= self.below_servers

    def referenced_classes(self) -> FrozenSet[str]:
        return self.shed


@dataclass(frozen=True)
class PolicyEvaluation:
    """Steady-state outcome of one admission policy.

    Attributes
    ----------
    policy:
        Name of the evaluated policy.
    class_availability:
        Per class, the probability a request of that class is served:
        admitted in the current farm state *and* not lost to the buffer.
    served_rate:
        Total served request rate (performance-model unit).
    value_rate:
        Value-weighted served request rate — the quantity shedding
        policies are designed to protect.
    offered_rate:
        Total offered request rate, for reference.
    """

    policy: str
    class_availability: Dict[str, float]
    served_rate: float
    value_rate: float
    offered_rate: float

    @property
    def served_fraction(self) -> float:
        """Fraction of offered requests served, all classes combined."""
        return self.served_rate / self.offered_rate


def _operational_state_probabilities(web: WebServiceModel) -> Dict[int, float]:
    """``{i: Pi_i}`` for the operational states ``i = 0 .. NW``."""
    farm = web.farm()
    if web.has_perfect_coverage:
        return dict(farm.state_probabilities())
    operational, _down = farm.state_probabilities()
    return dict(operational)


def _check_policy_classes(
    loads: Sequence[ClassLoad], policy: AdmissionPolicy
) -> None:
    """Reject a policy naming classes absent from the offered loads."""
    referenced = getattr(policy, "referenced_classes", frozenset)()
    unknown = sorted(frozenset(referenced) - {load.name for load in loads})
    if unknown:
        raise ValidationError(
            f"policy {policy.name!r} references unknown class "
            f"name(s) {unknown}; offered classes are "
            f"{sorted(load.name for load in loads)}"
        )


def _admitted_loss(
    web: WebServiceModel,
    loads: Sequence[ClassLoad],
    policy: AdmissionPolicy,
    servers_up: int,
) -> Tuple[float, Dict[str, bool]]:
    """Blocking probability and admission map with *servers_up* servers."""
    admitted = {
        load.name: policy.admits(load.name, servers_up) for load in loads
    }
    admitted_rate = sum(
        load.arrival_rate for load in loads if admitted[load.name]
    )
    if admitted_rate <= 0.0 or servers_up <= 0:
        return 1.0, admitted
    loss = mmck_blocking_probability(
        admitted_rate / web.service_rate, servers_up, web.buffer_capacity
    )
    return loss, admitted


def conditional_class_availability(
    web: WebServiceModel,
    loads: Sequence[ClassLoad],
    policy: AdmissionPolicy,
    servers_up: int,
) -> Dict[str, float]:
    """Per-class served probability *given* a farm fault state.

    This is the per-state building block the campaign engine scores
    policies with: with ``servers_up`` servers operational, a class is
    served iff the policy admits it and the buffer (loaded only by the
    admitted classes) does not overflow.
    """
    servers_up = check_non_negative_int(servers_up, "servers_up")
    _check_policy_classes(loads, policy)
    if servers_up == 0:
        return {load.name: 0.0 for load in loads}
    loss, admitted = _admitted_loss(web, loads, policy, servers_up)
    return {
        load.name: (1.0 - loss) if admitted[load.name] else 0.0
        for load in loads
    }


def evaluate_policy(
    web: WebServiceModel,
    loads: Sequence[ClassLoad],
    policy: AdmissionPolicy,
) -> PolicyEvaluation:
    """Steady-state evaluation of an admission policy.

    Weighs :func:`conditional_class_availability` by the farm's
    availability-model state probabilities (down states serve nobody).

    Examples
    --------
    >>> web = WebServiceModel(servers=4, arrival_rate=100.0,
    ...                       service_rate=100.0, buffer_capacity=10,
    ...                       failure_rate=1e-4, repair_rate=1.0)
    >>> loads = [ClassLoad("A", 60.0, value=1.0),
    ...          ClassLoad("B", 40.0, value=5.0)]
    >>> full = evaluate_policy(web, loads, AdmitAll())
    >>> 0.999 < full.class_availability["B"] <= 1.0
    True
    """
    if not loads:
        raise ValidationError("evaluate_policy needs at least one ClassLoad")
    names = [load.name for load in loads]
    if len(set(names)) != len(names):
        raise ValidationError(f"duplicate class load names: {names}")
    _check_policy_classes(loads, policy)
    states = _operational_state_probabilities(web)
    availability = {load.name: 0.0 for load in loads}
    for servers_up, probability in states.items():
        if servers_up < 1 or probability <= 0.0:
            continue
        conditional = conditional_class_availability(
            web, loads, policy, servers_up
        )
        for name in availability:
            availability[name] += probability * conditional[name]
    served_rate = sum(
        load.arrival_rate * availability[load.name] for load in loads
    )
    value_rate = sum(
        load.value * load.arrival_rate * availability[load.name]
        for load in loads
    )
    offered = sum(load.arrival_rate for load in loads)
    return PolicyEvaluation(
        policy=policy.name,
        class_availability=availability,
        served_rate=served_rate,
        value_rate=value_rate,
        offered_rate=offered,
    )


def compare_policies(
    web: WebServiceModel,
    loads: Sequence[ClassLoad],
    policies: Iterable[AdmissionPolicy],
) -> List[PolicyEvaluation]:
    """Evaluate several policies on the same farm and load mix."""
    return [evaluate_policy(web, loads, policy) for policy in policies]


def degraded_service_factor(
    web: WebServiceModel,
    servers_up: Optional[int] = None,
    buffer_capacity: Optional[int] = None,
    arrival_rate: Optional[float] = None,
) -> float:
    """Served-fraction ratio of a degraded farm configuration.

    The end-to-end simulator models degradation as a multiplicative
    factor on the conditional session-success probability
    (:class:`~repro.sim.endtoend.FaultEvent` ``service_factors``).  This
    helper derives that factor from the queueing model: the ratio of the
    buffer-survival probability in the degraded configuration (fewer
    servers up, a shrunk buffer, or a latency-inflated arrival rate) to
    the nominal full-capacity one.

    Examples
    --------
    A four-server farm limping on one server at full load drops ~9% of
    requests (M/M/1/10 at rho = 1):

    >>> web = WebServiceModel(servers=4, arrival_rate=100.0,
    ...                       service_rate=100.0, buffer_capacity=10,
    ...                       failure_rate=1e-4, repair_rate=1.0)
    >>> round(degraded_service_factor(web, servers_up=1), 4)
    0.9091
    """
    servers = web.servers if servers_up is None else servers_up
    servers = check_non_negative_int(servers, "servers_up")
    capacity = (
        web.buffer_capacity if buffer_capacity is None else buffer_capacity
    )
    if arrival_rate is None:
        rate = web.arrival_rate
    else:
        rate = check_positive(arrival_rate, "arrival_rate")
    if servers == 0:
        return 0.0
    nominal = 1.0 - mmck_blocking_probability(
        web.offered_load, web.servers, web.buffer_capacity
    )
    degraded = 1.0 - mmck_blocking_probability(
        rate / web.service_rate, servers, max(capacity, servers)
    )
    if nominal <= 0.0:
        return 0.0
    return min(1.0, degraded / nominal)
