"""Fault scenarios: scripted and stochastic fault-injection timelines.

A :class:`FaultScenario` compiles — given the model under test, the
campaign horizon and a random generator — into the flat
:class:`~repro.sim.endtoend.FaultEvent` timeline the end-to-end
simulator consumes.  Scripted scenarios (:class:`ScheduledOutage`,
:class:`ServiceDegradation`) produce the same events every run;
stochastic scenarios (:class:`RecurrentOutage`,
:class:`RecurrentDegradation`) draw episode times and durations from the
generator, so a campaign replication's faults are reproducible from its
seed.

Scenario algebra: scenarios compose with ``+`` (a
:class:`CompositeScenario` concatenates the compiled timelines; the
simulator orders events by time), which is how "LAN down *and* both
application hosts down" correlated-failure studies are assembled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

import numpy as np

from .._validation import check_non_negative, check_positive, check_probability
from ..core import HierarchicalModel
from ..errors import ValidationError
from ..sim.endtoend import FaultEvent

__all__ = [
    "FaultScenario",
    "NullScenario",
    "ScheduledOutage",
    "RecurrentOutage",
    "ServiceDegradation",
    "RecurrentDegradation",
    "CompositeScenario",
]


class FaultScenario:
    """Base class: anything that compiles to a ``FaultEvent`` timeline."""

    #: Display name used by campaign reports.
    name: str = "scenario"

    def compile(
        self,
        model: HierarchicalModel,
        horizon: float,
        rng: np.random.Generator,
    ) -> List[FaultEvent]:
        """The event timeline of one campaign replication."""
        raise NotImplementedError

    def __add__(self, other: "FaultScenario") -> "CompositeScenario":
        mine = self.parts if isinstance(self, CompositeScenario) else (self,)
        theirs = (
            other.parts if isinstance(other, CompositeScenario) else (other,)
        )
        return CompositeScenario(parts=mine + theirs)


@dataclass(frozen=True)
class NullScenario(FaultScenario):
    """No injected faults: resources fail only at the model's own rates.

    The null campaign is the engine's calibration check — its simulated
    availability must agree with the analytic eq.-(10) value within
    Monte-Carlo error, because nothing violates the model assumptions.
    """

    name: str = "null"

    def compile(self, model, horizon, rng) -> List[FaultEvent]:
        return []


@dataclass(frozen=True)
class ScheduledOutage(FaultScenario):
    """A scripted outage: the given resources go down together at *start*.

    Taking several resources down in one event is precisely the
    correlated failure (LAN segment plus hosts sharing its power feed)
    that the analytic independence assumption excludes.
    """

    resources: FrozenSet[str]
    start: float
    duration: float
    name: str = "scheduled-outage"

    def __post_init__(self):
        object.__setattr__(self, "resources", frozenset(self.resources))
        if not self.resources:
            raise ValidationError("ScheduledOutage needs at least one resource")
        check_non_negative(self.start, "start")
        check_positive(self.duration, "duration")

    def compile(self, model, horizon, rng) -> List[FaultEvent]:
        if self.start >= horizon:
            return []
        return [
            FaultEvent(time=self.start, force_down=self.resources),
            FaultEvent(time=self.start + self.duration, release=self.resources),
        ]


@dataclass(frozen=True)
class RecurrentOutage(FaultScenario):
    """Stochastic correlated outages arriving as a Poisson process.

    Episodes hit all *resources* simultaneously; inter-episode times are
    exponential with rate *episode_rate*, durations exponential with
    mean *mean_duration* (both in the availability-model time unit).
    Episodes overlap-safely: forced-down windows stack and unwind in
    order.
    """

    resources: FrozenSet[str]
    episode_rate: float
    mean_duration: float
    name: str = "recurrent-outage"

    def __post_init__(self):
        object.__setattr__(self, "resources", frozenset(self.resources))
        if not self.resources:
            raise ValidationError("RecurrentOutage needs at least one resource")
        check_positive(self.episode_rate, "episode_rate")
        check_positive(self.mean_duration, "mean_duration")

    def compile(self, model, horizon, rng) -> List[FaultEvent]:
        events: List[FaultEvent] = []
        clock = rng.exponential(1.0 / self.episode_rate)
        while clock < horizon:
            duration = rng.exponential(self.mean_duration)
            events.append(FaultEvent(time=clock, force_down=self.resources))
            events.append(
                FaultEvent(time=clock + duration, release=self.resources)
            )
            clock += rng.exponential(1.0 / self.episode_rate)
        return events


@dataclass(frozen=True)
class ServiceDegradation(FaultScenario):
    """A scripted capacity-degradation window for one service.

    While active, the service still counts as *up* but only a fraction
    *factor* of the sessions needing it succeed — the coverage-mode /
    buffer-shrink style of fault, where a web farm limps along serving a
    reduced request rate.  Use
    :func:`repro.resilience.degradation.degraded_service_factor` to
    derive *factor* from a degraded :class:`WebServiceModel`
    configuration.
    """

    service: str
    factor: float
    start: float
    duration: float
    name: str = "service-degradation"

    def __post_init__(self):
        check_probability(self.factor, "factor")
        check_non_negative(self.start, "start")
        check_positive(self.duration, "duration")

    def compile(self, model, horizon, rng) -> List[FaultEvent]:
        if self.start >= horizon:
            return []
        return [
            FaultEvent(
                time=self.start, service_factors={self.service: self.factor}
            ),
            FaultEvent(
                time=self.start + self.duration,
                service_factors={self.service: 1.0},
            ),
        ]


@dataclass(frozen=True)
class RecurrentDegradation(FaultScenario):
    """Stochastic transient degradations of one service.

    Latency spikes / buffer-shrink faults: episodes multiply the
    service's conditional success fraction by *factor* for an
    exponential duration; gaps between episodes are exponential with
    rate *episode_rate*.  Episodes are generated end-to-start (an
    alternating renewal process), so degradation windows never overlap —
    service factors are absolute and would not stack.
    """

    service: str
    factor: float
    episode_rate: float
    mean_duration: float
    name: str = "recurrent-degradation"

    def __post_init__(self):
        check_probability(self.factor, "factor")
        check_positive(self.episode_rate, "episode_rate")
        check_positive(self.mean_duration, "mean_duration")

    def compile(self, model, horizon, rng) -> List[FaultEvent]:
        events: List[FaultEvent] = []
        clock = rng.exponential(1.0 / self.episode_rate)
        while clock < horizon:
            duration = rng.exponential(self.mean_duration)
            events.append(
                FaultEvent(
                    time=clock, service_factors={self.service: self.factor}
                )
            )
            events.append(
                FaultEvent(
                    time=clock + duration,
                    service_factors={self.service: 1.0},
                )
            )
            clock += duration + rng.exponential(1.0 / self.episode_rate)
        return events


@dataclass(frozen=True)
class CompositeScenario(FaultScenario):
    """Several scenarios injected together (``a + b`` builds one)."""

    parts: Tuple[FaultScenario, ...] = ()
    name: str = "composite"

    def __post_init__(self):
        object.__setattr__(self, "parts", tuple(self.parts))
        if not self.parts:
            raise ValidationError("CompositeScenario needs at least one part")

    def compile(self, model, horizon, rng) -> List[FaultEvent]:
        events: List[FaultEvent] = []
        for part in self.parts:
            events.extend(part.compile(model, horizon, rng))
        return events
