"""Task graphs of evaluation units with explicit dependencies.

A :class:`TaskGraph` names the units of work behind a table or figure —
CTMC solves, queueing-formula batches, DES replications, and the derived
cells combining them — and records which unit feeds which.  The engine
(:meth:`repro.engine.EvaluationEngine.run_graph`) executes a graph in
dependency order, running independent tasks in parallel and memoizing
each unit under its content-addressed cache key.

A task's function receives its static ``args`` first, then the results
of its dependencies in declaration order::

    graph = TaskGraph()
    graph.add("pi", _solve_ctmc, args=(states, generator))
    graph.add("pk", _mmck_grid, args=(loads, servers, capacity))
    graph.add("cell", combine, deps=("pi", "pk"))   # combine(pi, pk)

The four helper constructors below cover the evaluation units named
above; anything else can be added with :meth:`TaskGraph.add` directly.
Functions must be module-level (picklable) to run under a process-pool
engine; closures and lambdas are fine for the serial backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from ..errors import EngineError
from .cache import canonical_key

__all__ = [
    "Task",
    "TaskGraph",
    "ctmc_steady_state_task",
    "queueing_batch_task",
    "des_replication_task",
    "client_policy_task",
    "cloud_scenario_task",
    "derived_task",
]


@dataclass(frozen=True)
class Task:
    """One evaluation unit of a :class:`TaskGraph`.

    Attributes
    ----------
    name:
        Graph-unique identifier.
    fn:
        Work function, called as ``fn(*args, *dep_results)``.
    args:
        Static arguments (the task's spec).
    deps:
        Names of tasks whose results are appended to *args*.
    key:
        Optional content-addressed cache key
        (:func:`~repro.engine.canonical_key`); keyed tasks are memoized
        by the engine, unkeyed tasks always run.
    """

    name: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    deps: Tuple[str, ...] = ()
    key: Optional[str] = None


class TaskGraph:
    """A directed acyclic graph of named evaluation tasks."""

    def __init__(self):
        self._tasks: Dict[str, Task] = {}

    def add(
        self,
        name: str,
        fn: Callable[..., Any],
        args: Sequence[Any] = (),
        deps: Sequence[str] = (),
        key: Optional[str] = None,
    ) -> Task:
        """Add one task; returns it.  Names must be unique."""
        if not isinstance(name, str) or not name:
            raise EngineError("task name must be a non-empty string")
        if name in self._tasks:
            raise EngineError(f"duplicate task name {name!r}")
        if not callable(fn):
            raise EngineError(f"task {name!r} needs a callable, got {fn!r}")
        task = Task(
            name=name, fn=fn, args=tuple(args), deps=tuple(deps), key=key
        )
        self._tasks[name] = task
        return task

    def task(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            raise EngineError(f"no task named {name!r} in the graph") from None

    @property
    def names(self) -> Tuple[str, ...]:
        """Task names in insertion order."""
        return tuple(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def topological_order(self) -> Tuple[str, ...]:
        """Task names in a deterministic dependency-respecting order.

        Kahn's algorithm with insertion-order tie-breaking, so the same
        graph always schedules identically (part of the determinism
        contract).

        Raises
        ------
        EngineError
            On a dependency naming no task, or a dependency cycle.
        """
        for task in self:
            for dep in task.deps:
                if dep not in self._tasks:
                    raise EngineError(
                        f"task {task.name!r} depends on unknown task {dep!r}"
                    )
        remaining: Dict[str, set] = {
            task.name: set(task.deps) for task in self
        }
        order = []
        while remaining:
            ready = [name for name, deps in remaining.items() if not deps]
            if not ready:
                cycle = sorted(remaining)
                raise EngineError(
                    f"task graph has a dependency cycle among {cycle}"
                )
            for name in ready:
                order.append(name)
                del remaining[name]
            for deps in remaining.values():
                deps.difference_update(ready)
        return tuple(order)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskGraph(tasks={len(self)})"


# ----------------------------------------------------------------------
# Module-level work functions: picklable for process-pool execution.
# ----------------------------------------------------------------------

def _solve_ctmc_steady_state(states, generator) -> Dict[Any, float]:
    from ..markov import CTMC

    return CTMC(states, generator).steady_state()


def _evaluate_mmck_grid(offered_load, servers, capacity) -> np.ndarray:
    from ..queueing import mmck_blocking_grid

    return mmck_blocking_grid(offered_load, servers, capacity)


def _run_des_replication(
    model, user_class, horizon, stream, default_repair_rate, faults
):
    from ..sim.endtoend import simulate_user_availability_over_time

    rng = np.random.default_rng(stream)
    return simulate_user_availability_over_time(
        model,
        user_class,
        horizon=horizon,
        rng=rng,
        default_repair_rate=default_repair_rate,
        faults=faults,
    )


# ----------------------------------------------------------------------
# Helper constructors for the canonical evaluation units.
# ----------------------------------------------------------------------

def ctmc_steady_state_task(graph: TaskGraph, name: str, states, generator) -> Task:
    """A steady-state CTMC solve, keyed by the generator matrix bytes."""
    generator = np.asarray(generator, dtype=float)
    states = tuple(states)
    key = canonical_key(
        "ctmc-steady-state",
        states=tuple(str(state) for state in states),
        generator=generator,
    )
    return graph.add(
        name, _solve_ctmc_steady_state, args=(states, generator), key=key
    )


def queueing_batch_task(
    graph: TaskGraph, name: str, offered_load, servers, capacity
) -> Task:
    """A vectorized M/M/c/K blocking grid, keyed by the point arrays."""
    offered_load = np.asarray(offered_load, dtype=float)
    servers = np.asarray(servers, dtype=np.int64)
    capacity = np.asarray(capacity, dtype=np.int64)
    key = canonical_key(
        "mmck-blocking-grid",
        offered_load=offered_load,
        servers=servers,
        capacity=capacity,
    )
    return graph.add(
        name,
        _evaluate_mmck_grid,
        args=(offered_load, servers, capacity),
        key=key,
    )


def des_replication_task(
    graph: TaskGraph,
    name: str,
    model,
    user_class,
    horizon: float,
    stream: np.random.SeedSequence,
    default_repair_rate: float = 1.0,
    faults: Sequence = (),
) -> Task:
    """One end-to-end DES replication from a dedicated seed stream.

    The cache key covers the seed stream's entropy and spawn position,
    the horizon, and a pickle-based content digest of the model, user
    class, and fault timeline — two replications share a key only when
    every simulation input is identical.
    """
    import pickle

    spawn_key = tuple(int(k) for k in stream.spawn_key)
    entropy = stream.entropy
    if isinstance(entropy, (list, tuple)):
        entropy = tuple(int(e) for e in entropy)
    elif entropy is not None:
        entropy = int(entropy)
    key = canonical_key(
        "des-replication",
        entropy=entropy,
        spawn_key=spawn_key,
        horizon=float(horizon),
        default_repair_rate=float(default_repair_rate),
        content=pickle.dumps((model, user_class, tuple(faults)), protocol=4),
    )
    return graph.add(
        name,
        _run_des_replication,
        args=(
            model, user_class, float(horizon), stream,
            float(default_repair_rate), tuple(faults),
        ),
        key=key,
    )


def _evaluate_client_policy_cell(
    policy, scenario, arrival_rate, service_rate, capacity
):
    from ..resilience.policies import evaluate_policy_cell

    return evaluate_policy_cell(
        policy, scenario, arrival_rate, service_rate, capacity
    )


def client_policy_task(
    graph: TaskGraph,
    name: str,
    policy,
    scenario,
    arrival_rate: float,
    service_rate: float,
    capacity: int,
) -> Task:
    """One client-policy x farm-fault-scenario availability cell.

    The unit behind the ``repro policies`` comparison grid: evaluates a
    retry / circuit-breaker / timeout / hedge policy against one
    :class:`~repro.resilience.FarmFaultScenario`, keyed by the nominal
    farm parameters plus a pickle digest of the policy and scenario
    dataclasses — so a warm cache skips every unchanged cell when only
    part of the grid moves.
    """
    import pickle

    key = canonical_key(
        "client-policy-cell",
        arrival_rate=float(arrival_rate),
        service_rate=float(service_rate),
        capacity=int(capacity),
        content=pickle.dumps((policy, scenario), protocol=4),
    )
    return graph.add(
        name,
        _evaluate_client_policy_cell,
        args=(
            policy, scenario, float(arrival_rate), float(service_rate),
            int(capacity),
        ),
        key=key,
    )


def _evaluate_cloud_scenario_cell(scenario):
    from ..bayes.scenarios import evaluate_cloud_scenario

    return evaluate_cloud_scenario(scenario)


def cloud_scenario_task(graph: TaskGraph, name: str, scenario) -> Task:
    """One cloud deployment scenario of the ``repro cloud`` grid.

    Evaluates a :class:`~repro.bayes.CloudScenario` — both user
    classes through exact Bayesian-network inference plus the farm
    marginal — keyed by a pickle digest of the full scenario, so a
    warm cache skips every deployment whose parameters did not move.
    """
    import pickle

    key = canonical_key(
        "cloud-scenario",
        content=pickle.dumps(scenario, protocol=4),
    )
    return graph.add(
        name,
        _evaluate_cloud_scenario_cell,
        args=(scenario,),
        key=key,
    )


def derived_task(
    graph: TaskGraph,
    name: str,
    fn: Callable[..., Any],
    deps: Sequence[str],
    args: Sequence[Any] = (),
) -> Task:
    """A derived cell: combines upstream results, never cached.

    Derived cells (table rows, availability compositions) are cheap
    arithmetic over their dependencies, so they re-run every time rather
    than carrying a key that would have to hash upstream values.
    """
    return graph.add(name, fn, args=tuple(args), deps=tuple(deps))
