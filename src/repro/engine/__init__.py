"""Parallel, cache-aware batch evaluation of availability models.

Every headline artifact of the paper — the Table 5–8 availability
figures, the Fig. 11–13 sensitivity curves — is the output of many
near-identical model evaluations: CTMC solves, M/M/c/K formula batches,
DES replications, and derived table cells combining them.  This package
is the execution layer that runs such batches fast without changing a
single digit of their results:

* :mod:`~repro.engine.tasks` — :class:`TaskGraph`: evaluation units
  with explicit dependencies, plus helper constructors for the four
  canonical unit types;
* :mod:`~repro.engine.executor` — :class:`EvaluationEngine`: a serial
  reference backend and a *supervised* process-pool backend producing
  bit-identical outputs, with cooperative cancellation
  (:class:`~repro.runtime.CancellationToken`), heartbeats, journaled
  resume for interrupted parallel runs, worker-crash respawn, and
  per-task retry under a :class:`TaskRetryPolicy`
  (:mod:`~repro.engine.retry`);
* :mod:`~repro.engine.cache` — :class:`MemoCache`: a content-addressed
  memo store (in-memory LRU + optional on-disk level) keyed by
  :func:`canonical_key` hashes of the full evaluation spec, with
  hit/miss/eviction statistics on every result object;
* vectorized batch kernels for the hot queueing paths live with the
  math in :mod:`repro.queueing.batch` and are exposed to graphs through
  :func:`~repro.engine.tasks.queueing_batch_task`.

The consumers are :func:`repro.sensitivity.sweep` / ``grid_sweep``
(``engine=`` parameter), :func:`repro.resilience.run_campaign`
(``workers=`` parameter), :func:`repro.ta.report.availability_report`
(``engine=`` parameter), and the ``repro sweep`` CLI subcommand.  See
``docs/PERFORMANCE.md`` for the architecture, the determinism contract,
and the cache-key scheme.
"""

from .cache import CacheStats, MemoCache, canonical_key
from .executor import BatchResult, EvaluationEngine, GraphResult
from .retry import TaskRetryPolicy
from .tasks import (
    Task,
    TaskGraph,
    client_policy_task,
    cloud_scenario_task,
    ctmc_steady_state_task,
    derived_task,
    des_replication_task,
    queueing_batch_task,
)

__all__ = [
    "BatchResult",
    "CacheStats",
    "EvaluationEngine",
    "GraphResult",
    "MemoCache",
    "Task",
    "TaskGraph",
    "TaskRetryPolicy",
    "canonical_key",
    "client_policy_task",
    "cloud_scenario_task",
    "ctmc_steady_state_task",
    "derived_task",
    "des_replication_task",
    "queueing_batch_task",
]
