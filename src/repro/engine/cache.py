"""Content-addressed memoization for model evaluations.

Every evaluation unit the engine runs (a CTMC steady-state solve, an
M/M/c/K blocking probability, a DES replication) is a pure function of
its *spec*: the generator matrix bytes, the queue parameters, the seed.
:func:`canonical_key` hashes such a spec into a stable hex digest, and
:class:`MemoCache` maps digests to previously computed results — an
in-memory LRU backed by an optional on-disk store, so a warm rerun of a
sweep or a table regeneration skips every solver call it has already
paid for.

Key canonicalization rules (the *cache-key scheme*, also documented in
``docs/PERFORMANCE.md``):

* floats hash by their IEEE-754 bit pattern (``struct.pack('>d')``), so
  two specs collide only when every parameter is bit-equal — ``0.1``
  and ``0.1 + 1e-17`` are distinct keys, and ``0.0`` / ``-0.0`` are
  distinct on purpose;
* NumPy arrays hash dtype, shape, and C-contiguous buffer bytes —
  changing *any* entry of a generator matrix changes the key;
* containers hash recursively with type tags, so ``(1, 2)`` and
  ``[1, 2]`` and ``"12"`` cannot collide; mapping items are hashed in
  sorted-key order, making dict iteration order irrelevant;
* every key embeds a *kind* label (``"ctmc-steady-state"``,
  ``"mmck-blocking"``, ...) namespacing unrelated computations that
  happen to share parameters.

Unsupported value types raise :class:`~repro.errors.EngineError` rather
than falling back to ``repr`` — a silently unstable key is a cache that
returns wrong answers.

On-disk entries are *checksum framed*: every file starts with a magic
tag, the SHA-256 digest of the pickled payload, and the payload length,
so a corrupt, truncated, or foreign file is detected before a single
byte is unpickled.  A bad entry is treated as a miss, moved to
``<cache_dir>/quarantine/`` for post-mortem, and counted in
:attr:`CacheStats.corruptions` — a damaged cache degrades to
recomputation, never to a crashed (or worse, silently wrong) sweep.
Disk *write* failures (full disk, revoked permissions) likewise degrade
the cache to memory-only with a one-time warning instead of aborting
the run.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional, Tuple, Union

import numpy as np

from .._validation import check_positive_int
from ..errors import EngineError

__all__ = ["canonical_key", "CacheStats", "MemoCache"]

PathLike = Union[str, Path]


def _feed(h, value: Any) -> None:
    """Feed one value into hash *h* with an unambiguous type tag."""
    if value is None:
        h.update(b"N")
    elif isinstance(value, bool):
        # Before int: bool is an int subclass but must not collide with 0/1.
        h.update(b"B1" if value else b"B0")
    elif isinstance(value, (int, np.integer)):
        encoded = str(int(value)).encode("ascii")
        h.update(b"I" + struct.pack(">I", len(encoded)) + encoded)
    elif isinstance(value, (float, np.floating)):
        h.update(b"F" + struct.pack(">d", float(value)))
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        h.update(b"S" + struct.pack(">I", len(encoded)) + encoded)
    elif isinstance(value, bytes):
        h.update(b"Y" + struct.pack(">I", len(value)) + value)
    elif isinstance(value, np.ndarray):
        dtype = str(value.dtype).encode("ascii")
        h.update(b"A" + struct.pack(">I", len(dtype)) + dtype)
        h.update(struct.pack(">I", value.ndim))
        for dim in value.shape:
            h.update(struct.pack(">Q", dim))
        h.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, (tuple, list)):
        h.update(b"T" + struct.pack(">I", len(value)))
        for item in value:
            _feed(h, item)
    elif isinstance(value, (frozenset, set)):
        h.update(b"E" + struct.pack(">I", len(value)))
        # Hash each element independently, combine order-free by XOR of
        # digests — set iteration order is not deterministic.
        combined = bytearray(32)
        for item in value:
            sub = hashlib.sha256()
            _feed(sub, item)
            for i, byte in enumerate(sub.digest()):
                combined[i] ^= byte
        h.update(bytes(combined))
    elif isinstance(value, Mapping):
        h.update(b"M" + struct.pack(">I", len(value)))
        for key in sorted(value, key=lambda k: (str(type(k)), str(k))):
            _feed(h, key)
            _feed(h, value[key])
    else:
        raise EngineError(
            f"cannot build a canonical cache key from a value of type "
            f"{type(value).__name__!r}: {value!r} (supported: None, bool, "
            "int, float, str, bytes, numpy arrays, sequences, sets, "
            "mappings)"
        )


def canonical_key(kind: str, **fields: Any) -> str:
    """The content-addressed key of one evaluation spec.

    Parameters
    ----------
    kind:
        Label namespacing the computation type (two different analyses
        of the same parameters must not share results).
    **fields:
        The complete spec: every input that influences the result must
        appear here, including seeds for stochastic computations.

    Examples
    --------
    >>> a = canonical_key("mmck-blocking", load=1.0, servers=4, capacity=10)
    >>> b = canonical_key("mmck-blocking", capacity=10, servers=4, load=1.0)
    >>> a == b  # keyword order is irrelevant
    True
    >>> a == canonical_key("mmck-blocking", load=1.0, servers=5, capacity=10)
    False
    """
    if not isinstance(kind, str) or not kind:
        raise EngineError("cache-key kind must be a non-empty string")
    h = hashlib.sha256()
    _feed(h, kind)
    _feed(h, fields)
    return h.hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Counter snapshot of one :class:`MemoCache`.

    The counters reconcile: ``hits + misses == lookups``, and
    ``memory_hits + disk_hits == hits``.  ``corruptions`` counts disk
    entries that failed integrity validation (quarantined, served as
    misses); ``disk_write_failures`` counts on-disk stores that could
    not be written (after the first, the disk level is disabled and the
    cache continues memory-only).
    """

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    stores: int = 0
    evictions: int = 0
    corruptions: int = 0
    disk_write_failures: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (NaN before any lookup)."""
        if not self.lookups:
            return float("nan")
        return self.hits / self.lookups

    @property
    def consistent(self) -> bool:
        """True when the counters reconcile with each other."""
        return (
            self.hits + self.misses == self.lookups
            and self.memory_hits + self.disk_hits == self.hits
        )


_MISSING = object()

# On-disk entry framing: MAGIC + sha256(payload) + len(payload) + payload.
# The digest is checked before unpickling, so truncation, bit rot, and
# foreign files are all caught without executing any pickle opcodes.
_MAGIC = b"RMC1"
_HEADER = struct.Struct(">32sQ")  # sha256 digest, payload length


class MemoCache:
    """In-memory LRU of evaluation results, with an optional disk store.

    Parameters
    ----------
    maxsize:
        Capacity of the in-memory LRU; the least recently used entry is
        evicted when a store would exceed it.
    cache_dir:
        Optional directory for a persistent second level.  Every stored
        value is also pickled to ``<cache_dir>/<key[:2]>/<key>.pkl``
        (content-addressed, so concurrent writers of the *same* key are
        idempotent), and a memory miss falls back to the disk copy.
        Entries are checksum framed; a corrupt or truncated file is a
        miss, quarantined to ``<cache_dir>/quarantine/``.

    Examples
    --------
    >>> cache = MemoCache(maxsize=2)
    >>> key = canonical_key("demo", x=1.0)
    >>> cache.get(key) is None
    True
    >>> cache.put(key, 42.0)
    >>> cache.get(key)
    42.0
    >>> cache.stats.consistent
    True
    """

    def __init__(self, maxsize: int = 4096, cache_dir: Optional[PathLike] = None):
        self.maxsize = check_positive_int(maxsize, "maxsize")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._lookups = 0
        self._memory_hits = 0
        self._disk_hits = 0
        self._stores = 0
        self._evictions = 0
        self._corruptions = 0
        self._disk_write_failures = 0
        self._disk_disabled = False

    # ------------------------------------------------------------------
    def _disk_path(self, key: str) -> Path:
        return self.cache_dir / key[:2] / f"{key}.pkl"

    @property
    def quarantine_dir(self) -> Optional[Path]:
        """Where corrupt disk entries are moved (``None`` without a disk)."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / "quarantine"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside for post-mortem; never raises."""
        with self._lock:
            self._corruptions += 1
        try:
            target_dir = self.quarantine_dir
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / path.name)
        except OSError:
            try:
                path.unlink()
            except OSError:
                # Unremovable (read-only filesystem): leave it; every
                # future lookup of this key re-detects the corruption.
                pass

    @staticmethod
    def _decode_entry(raw: bytes) -> Any:
        """Unframe and unpickle one disk entry; raises on any damage."""
        header_size = len(_MAGIC) + _HEADER.size
        if len(raw) < header_size or raw[: len(_MAGIC)] != _MAGIC:
            raise ValueError("bad cache-entry frame")
        digest, length = _HEADER.unpack_from(raw, len(_MAGIC))
        payload = raw[header_size:]
        if len(payload) != length or hashlib.sha256(payload).digest() != digest:
            raise ValueError("cache-entry checksum mismatch")
        return pickle.loads(payload)

    @staticmethod
    def _encode_entry(value: Any) -> bytes:
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).digest()
        return _MAGIC + _HEADER.pack(digest, len(payload)) + payload

    def lookup(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)`` — distinguishes a miss from a cached ``None``."""
        with self._lock:
            self._lookups += 1
            value = self._entries.get(key, _MISSING)
            if value is not _MISSING:
                self._entries.move_to_end(key)
                self._memory_hits += 1
                return True, value
        if self.cache_dir is not None:
            path = self._disk_path(key)
            if path.exists():
                try:
                    raw = path.read_bytes()
                except OSError:
                    # Unreadable (permissions, I/O error): a miss — the
                    # value is recomputed; the file is left untouched.
                    return False, None
                try:
                    value = self._decode_entry(raw)
                except (ValueError, pickle.UnpicklingError, EOFError,
                        AttributeError, ImportError, IndexError,
                        MemoryError):
                    # Corrupt, truncated, or foreign entry: quarantine
                    # it and serve a miss — recompute, never crash.
                    self._quarantine(path)
                    return False, None
                with self._lock:
                    self._disk_hits += 1
                    self._insert(key, value)
                return True, value
        return False, None

    def get(self, key: str, default: Any = None) -> Any:
        """The cached value, or *default* on a miss."""
        hit, value = self.lookup(key)
        return value if hit else default

    def put(self, key: str, value: Any) -> None:
        """Store *value* under *key* in memory (and on disk when enabled)."""
        with self._lock:
            self._stores += 1
            self._insert(key, value)
        if self.cache_dir is not None and not self._disk_disabled:
            path = self._disk_path(key)
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                # Write-then-rename so a concurrent reader never sees a
                # torn entry; content addressing makes replacement
                # idempotent.
                tmp = path.with_suffix(f".tmp-{threading.get_ident()}")
                with open(tmp, "wb") as handle:
                    handle.write(self._encode_entry(value))
                tmp.replace(path)
            except OSError as exc:
                # Full disk, revoked permissions, dead mount: degrade to
                # memory-only caching instead of failing the sweep.
                with self._lock:
                    self._disk_write_failures += 1
                    already = self._disk_disabled
                    self._disk_disabled = True
                if not already:
                    warnings.warn(
                        f"memo cache disk store disabled after write "
                        f"failure ({exc}); continuing memory-only",
                        RuntimeWarning,
                        stacklevel=2,
                    )

    def _insert(self, key: str, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self._evictions += 1

    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        """A consistent snapshot of the hit/miss/eviction counters."""
        with self._lock:
            memory_hits = self._memory_hits
            disk_hits = self._disk_hits
            hits = memory_hits + disk_hits
            return CacheStats(
                lookups=self._lookups,
                hits=hits,
                misses=self._lookups - hits,
                memory_hits=memory_hits,
                disk_hits=disk_hits,
                stores=self._stores,
                evictions=self._evictions,
                corruptions=self._corruptions,
                disk_write_failures=self._disk_write_failures,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self, statistics: bool = False) -> None:
        """Drop every in-memory entry (disk entries survive).

        With ``statistics=True`` the counters reset as well.
        """
        with self._lock:
            self._entries.clear()
            if statistics:
                self._lookups = 0
                self._memory_hits = 0
                self._disk_hits = 0
                self._stores = 0
                self._evictions = 0
                self._corruptions = 0
                self._disk_write_failures = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats
        disk = f", dir={str(self.cache_dir)!r}" if self.cache_dir else ""
        return (
            f"MemoCache(entries={len(self)}, maxsize={self.maxsize}, "
            f"hits={stats.hits}, misses={stats.misses}{disk})"
        )
