"""Per-task retry policies for the evaluation engine.

A transiently failing task — a worker hiccup, an injected chaos fault,
a flaky external resource — should not kill a whole sweep.  Attaching a
:class:`TaskRetryPolicy` to an :class:`~repro.engine.EvaluationEngine`
makes the engine re-run a failed task up to ``max_attempts`` times when
the failure is *retryable* (an instance of one of the policy's
``retryable`` exception types), sleeping the shared capped-exponential
backoff (:func:`repro.resilience.retry.backoff_delay`) between
attempts.  Exhausted retries re-raise the last failure, so the original
diagnostic always surfaces; non-retryable exceptions propagate on the
first attempt, untouched.

Retries never change outputs: a task that eventually succeeds returns
the same value it would have returned on a clean first attempt, and
results are still assembled by index/name.  Attempt counts are recorded
in the ``engine_task_retries`` metric and in journal ``task_result``
records (``attempts`` field), so an instrumented or resumed run shows
exactly how hard the engine had to work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple, Type

from .._validation import check_positive_int
from ..errors import TransientTaskError, ValidationError
from ..resilience.retry import backoff_delay

__all__ = ["TaskRetryPolicy"]


@dataclass(frozen=True)
class TaskRetryPolicy:
    """Bounded retry of transiently failing engine tasks.

    Parameters
    ----------
    max_attempts:
        Total attempts per task, including the first (``1`` disables
        retrying while keeping the policy object valid).
    backoff_base / backoff_factor / backoff_cap:
        The shared backoff law (:func:`repro.resilience.retry.backoff_delay`):
        the wait before retry ``i`` (0-based) is
        ``min(cap, base * factor**i)``.  The default base of ``0`` makes
        retries immediate — engine tasks are usually pure computations
        where waiting buys nothing; raise it when tasks touch shared
        external resources.
    retryable:
        Exception types that trigger a retry; anything else propagates
        immediately.  Defaults to
        :class:`~repro.errors.TransientTaskError` only — retrying
        arbitrary exceptions would mask real bugs.

    Examples
    --------
    >>> policy = TaskRetryPolicy(max_attempts=4, backoff_base=0.5)
    >>> [policy.backoff_delay(i) for i in range(3)]
    [0.5, 1.0, 2.0]
    >>> policy.is_retryable(TransientTaskError("worker hiccup"))
    True
    >>> policy.is_retryable(ValueError("bad spec"))
    False
    """

    max_attempts: int = 3
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_cap: float = 30.0
    retryable: Tuple[Type[BaseException], ...] = field(
        default=(TransientTaskError,)
    )

    def __post_init__(self):
        check_positive_int(self.max_attempts, "max_attempts")
        if self.backoff_base < 0.0 or math.isnan(self.backoff_base):
            raise ValidationError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_factor < 1.0:
            raise ValidationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if math.isnan(self.backoff_cap) or self.backoff_cap < 0.0:
            raise ValidationError(
                f"backoff_cap must be >= 0 (inf allowed), got "
                f"{self.backoff_cap}"
            )
        retryable = tuple(self.retryable)
        for item in retryable:
            if not (isinstance(item, type)
                    and issubclass(item, BaseException)):
                raise ValidationError(
                    f"retryable must contain exception types, got {item!r}"
                )
        object.__setattr__(self, "retryable", retryable)

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether *exc* should trigger another attempt."""
        return isinstance(exc, self.retryable)

    def backoff_delay(self, retry_index: int) -> float:
        """Seconds to wait before retry number *retry_index* (0-based)."""
        return backoff_delay(
            retry_index,
            base=self.backoff_base,
            factor=self.backoff_factor,
            cap=self.backoff_cap,
        )
