"""The batch evaluation engine: parallel, cache-aware, resumable.

:class:`EvaluationEngine` executes homogeneous batches (:meth:`~EvaluationEngine.map`)
and heterogeneous :class:`~repro.engine.tasks.TaskGraph`\\ s
(:meth:`~EvaluationEngine.run_graph`) behind one set of guarantees:

**Determinism.**  Results are assembled by task index/name, never by
completion order, so a run with ``workers=4`` is bit-identical to
``workers=1``.  Stochastic tasks must draw from per-task
:class:`numpy.random.SeedSequence` streams carried in their arguments
(the campaign and DES helpers already do); the engine itself introduces
no randomness.

**Caching.**  Tasks carrying a content-addressed key
(:func:`~repro.engine.canonical_key`) are memoized in the engine's
:class:`~repro.engine.MemoCache`; per-run hit/miss/eviction deltas are
exposed on every result object.

**Cancellation.**  A :class:`~repro.runtime.CancellationToken` is polled
before every dispatch and between completions.  Cancellation is
cooperative at task granularity: in-flight worker tasks finish, pending
ones are dropped, and already-journaled results survive.

**Resume.**  With a journal attached, every completed task is durably
recorded (key + JSON value); re-running the same batch over the same
journal restores completed tasks and computes only the rest — the same
contract campaigns have, now for arbitrary parallel batches.

**Fault tolerance.**  The process-pool backends are *supervised*: a
worker that dies mid-task (OOM kill, segfault, chaos injection) breaks
the pool, and the engine responds by respawning a fresh pool and
re-dispatching only the tasks that had not completed — up to
``max_respawns`` pool generations before giving up with
:class:`~repro.errors.EngineError`.  Attaching a
:class:`~repro.engine.TaskRetryPolicy` additionally retries individual
tasks that fail with *retryable* exceptions (by default
:class:`~repro.errors.TransientTaskError`); exhausted retries re-raise
the last failure.  Both mechanisms preserve determinism — results are
still assembled by index/name, so a run that survived crashes is
bit-identical to an undisturbed serial run.

The serial backend (``workers=1``, the default) is the reference
implementation: the parallel backend must, and is tested to, reproduce
its outputs bit for bit.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .._validation import check_positive_int
from ..errors import EngineError, ResumeError
from ..obs.clock import monotonic, walltime
from ..obs.context import active_metrics, active_perf, active_tracer
from ..runtime.budget import CancellationToken
from ..runtime.heartbeat import HeartbeatCallback, ProgressEvent
from ..runtime.journal import Journal, read_journal
from .cache import CacheStats, MemoCache
from .retry import TaskRetryPolicy
from .tasks import TaskGraph

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..chaos.plan import ChaosPlan
    from ..obs.metrics import MetricsRegistry
    from ..obs.perf import BatchPerf, PerfRecorder
    from ..obs.tracing import Tracer

__all__ = ["EvaluationEngine", "BatchResult", "GraphResult"]

JournalLike = Union[Journal, str, Path]


def _stats_delta(before: CacheStats, after: CacheStats) -> CacheStats:
    return CacheStats(
        lookups=after.lookups - before.lookups,
        hits=after.hits - before.hits,
        misses=after.misses - before.misses,
        memory_hits=after.memory_hits - before.memory_hits,
        disk_hits=after.disk_hits - before.disk_hits,
        stores=after.stores - before.stores,
        evictions=after.evictions - before.evictions,
        corruptions=after.corruptions - before.corruptions,
        disk_write_failures=(
            after.disk_write_failures - before.disk_write_failures
        ),
    )


class _RunCounters:
    """Mutable fault-tolerance tallies for one engine run.

    Mutable on purpose: a pool pass that dies mid-flight must not lose
    the retries it already performed, so passes update this in place and
    the supervisor reads whatever survived.
    """

    __slots__ = ("executed", "retries", "respawns")

    def __init__(self):
        self.executed = 0
        self.retries = 0
        self.respawns = 0


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one :meth:`EvaluationEngine.map` call.

    Attributes
    ----------
    outputs:
        Task results in input order — independent of worker count and
        completion order.
    cache_stats:
        Hit/miss/eviction counters for *this* run (deltas, not the
        cache's lifetime totals).
    executed:
        Tasks actually computed this run.
    restored:
        Tasks restored from the journal instead of computed.
    workers:
        Worker processes used (1 = the serial reference backend).
    elapsed:
        Wall-clock seconds for the batch.
    retries:
        Task attempts re-run under the engine's
        :class:`~repro.engine.TaskRetryPolicy` after transient failures.
    respawns:
        Worker-pool generations spawned to replace dead workers (0 on an
        undisturbed run).
    """

    outputs: Tuple[Any, ...]
    cache_stats: CacheStats
    executed: int
    restored: int
    workers: int
    elapsed: float
    retries: int = 0
    respawns: int = 0

    def __len__(self) -> int:
        return len(self.outputs)


@dataclass(frozen=True)
class GraphResult:
    """Outcome of one :meth:`EvaluationEngine.run_graph` call.

    ``values`` maps every task name to its result; the remaining fields
    match :class:`BatchResult`.
    """

    values: Dict[str, Any]
    cache_stats: CacheStats
    executed: int
    workers: int
    elapsed: float
    retries: int = 0
    respawns: int = 0

    def __getitem__(self, name: str) -> Any:
        return self.values[name]


def _obs_call(
    ctx: Optional[Dict[str, Any]],
    phase: str,
    fn: Callable[..., Any],
    args: Tuple[Any, ...],
    perf: bool = False,
) -> Tuple[Any, Dict[str, Any], Optional[Dict[str, Any]],
           Optional[Dict[str, Any]]]:
    """Run one task in a worker under fresh ambient instrumentation.

    The worker builds its own registry (merged back by name) and, when a
    :class:`~repro.obs.SpanContext` dict is shipped, its own tracer whose
    root span parents under the submitting span.  With *perf*, it also
    builds a worker-local :class:`~repro.obs.PerfRecorder` — DES kernels
    constructed inside the task account per-event-type self-time into it
    — and ships back its execute window (pid + wall start + duration) for
    the parent's :class:`~repro.obs.AttributionReport`.  Returns
    ``(value, metrics_snapshot, trace_payload, perf_record)`` — the
    parent unwraps the value before assembly, so instrumented parallel
    outputs stay bit-identical to uninstrumented ones.
    """
    from ..obs.context import instrumented
    from ..obs.metrics import MetricsRegistry
    from ..obs.tracing import SpanContext, Tracer

    registry = MetricsRegistry()
    tracer = (
        Tracer(context=SpanContext.from_dict(ctx)) if ctx is not None else None
    )
    recorder = None
    if perf:
        from ..obs.perf import PerfRecorder

        recorder = PerfRecorder()
        recorder.profiler.tick_task(leaf=f"task:{phase}")
    with instrumented(metrics=registry, tracer=tracer, perf=recorder):
        wall_start = walltime()
        started = monotonic()
        if tracer is not None:
            with tracer.span("engine task", category="engine", phase=phase):
                value = fn(*args)
        else:
            value = fn(*args)
        duration = monotonic() - started
        registry.histogram(
            "engine_task_seconds",
            help="Wall-clock latency of engine-executed tasks.",
            phase=phase,
        ).observe(duration)
    payload = tracer.payload() if tracer is not None else None
    record = None
    if recorder is not None:
        from ..obs.perf import worker_perf_record

        record = worker_perf_record(recorder)
        record["wall_start"] = wall_start
        record["duration"] = duration
    return value, registry.to_dict(), payload, record


def _worker_call(
    chaos: Optional["ChaosPlan"],
    index: int,
    instrument: bool,
    ctx: Optional[Dict[str, Any]],
    phase: str,
    fn: Callable[..., Any],
    args: Tuple[Any, ...],
    perf: bool = False,
) -> Any:
    """Worker-side task entry point when a chaos plan is attached.

    Runs the plan's injection point (which may kill this worker process
    or raise a transient fault) before delegating to the plain or
    instrumented call path.  Module-level so it pickles.
    """
    if chaos is not None:
        chaos.before_task(index, in_worker=True)
    if instrument:
        return _obs_call(ctx, phase, fn, args, perf)
    return fn(*args)


def _json_safe(value: Any) -> Any:
    """Round-trip *value* through JSON, or raise EngineError."""
    try:
        return json.loads(json.dumps(value))
    except (TypeError, ValueError):
        raise EngineError(
            "journaled batches need JSON-serializable task results; got "
            f"a value of type {type(value).__name__!r} (run without a "
            "journal, or reduce the task output to plain numbers first)"
        ) from None


class EvaluationEngine:
    """Cache-aware batch executor with serial and process-pool backends.

    Parameters
    ----------
    workers:
        Worker processes; ``1`` (default) runs everything in-process and
        is the reference backend for equality tests.
    cache:
        A shared :class:`~repro.engine.MemoCache`; built internally from
        *cache_dir*/*cache_size* when omitted.
    cache_dir:
        Optional on-disk cache directory (persists across processes and
        runs).
    cache_size:
        In-memory LRU capacity when the engine builds its own cache.
    cancellation:
        Optional :class:`~repro.runtime.CancellationToken`, polled at
        every dispatch and completion boundary.
    heartbeat:
        Optional progress callback (one event per completed task).
    retry:
        Optional :class:`~repro.engine.TaskRetryPolicy`.  Tasks failing
        with one of its retryable exception types are re-run (same
        worker pool, capped backoff) up to ``max_attempts`` times;
        anything else — and the last retryable failure once attempts are
        exhausted — propagates unchanged.
    chaos:
        Optional :class:`~repro.chaos.ChaosPlan` wired into every
        :meth:`map` task (serial and worker-side), used by the
        deterministic chaos harness to inject worker kills and transient
        faults at planned task indices.  Production runs leave it None.
    max_respawns:
        Worker-pool generations the supervisor may spawn to replace dead
        workers before declaring the batch failed.
    metrics / tracer:
        Optional :class:`~repro.obs.MetricsRegistry` /
        :class:`~repro.obs.Tracer`; each defaults to the ambient one
        (:func:`repro.obs.active_metrics` / :func:`repro.obs.active_tracer`).
        When present, the engine records per-phase task counts and
        latency histograms, re-exposes the memo cache's per-run
        hit/miss/eviction deltas as counters, and wraps every batch and
        task in spans — worker-process spans reattach under the
        submitting task's span, and worker registries merge back by
        name.  Instrumentation never changes outputs: parallel
        instrumented runs stay bit-identical to serial uninstrumented
        ones.  Exported traces keep each worker's pid on its spans,
        which is what ``repro trace-report`` aggregates into the
        per-worker utilization table
        (:meth:`repro.obs.analysis.TraceAnalysis.worker_utilization`).
    perf:
        Optional :class:`~repro.obs.PerfRecorder`; defaults to the
        ambient one (:func:`repro.obs.active_perf`).  When present,
        every batch builds an :class:`~repro.obs.AttributionReport`
        decomposing ``workers x elapsed`` capacity into compute,
        serialization, IPC, idle, and cache time — worker execute
        windows, parent-side pickle/cache timing, and queue-depth
        samples — and worker-side kernel accounting and profiler
        samples merge back like metrics do.  Like the other
        instrumentation, it never changes outputs.

    Examples
    --------
    >>> from math import sqrt
    >>> engine = EvaluationEngine()
    >>> result = engine.map(sqrt, [1.0, 4.0, 9.0])
    >>> result.outputs
    (1.0, 2.0, 3.0)
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[MemoCache] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        cache_size: int = 4096,
        cancellation: Optional[CancellationToken] = None,
        heartbeat: Optional[HeartbeatCallback] = None,
        metrics: Optional["MetricsRegistry"] = None,
        tracer: Optional["Tracer"] = None,
        retry: Optional[TaskRetryPolicy] = None,
        chaos: Optional["ChaosPlan"] = None,
        max_respawns: int = 3,
        perf: Optional["PerfRecorder"] = None,
    ):
        self.workers = check_positive_int(workers, "workers")
        self.retry = retry
        self.chaos = chaos
        self.max_respawns = check_positive_int(max_respawns, "max_respawns")
        if cache is not None and cache_dir is not None:
            raise EngineError(
                "pass either a prebuilt cache or a cache_dir, not both"
            )
        self.cache = (
            cache
            if cache is not None
            else MemoCache(maxsize=cache_size, cache_dir=cache_dir)
        )
        self.cancellation = cancellation
        self.heartbeat = heartbeat
        self._metrics = metrics if metrics is not None else active_metrics()
        self._tracer = tracer if tracer is not None else active_tracer()
        self._perf = perf if perf is not None else active_perf()

    # ------------------------------------------------------------------
    def _check(self) -> None:
        if self.cancellation is not None:
            self.cancellation.check()

    def _beat(self, phase: str, completed: int, total: int, message: str = ""):
        if self.heartbeat is not None:
            self.heartbeat(ProgressEvent(
                phase=phase, completed=completed, total=total, message=message
            ))

    @staticmethod
    def _require_picklable(fn: Callable) -> None:
        try:
            pickle.dumps(fn)
        except Exception as exc:
            raise EngineError(
                f"work function {fn!r} cannot be sent to worker processes "
                f"({exc}); use a module-level function, or run with "
                "workers=1"
            ) from exc

    # -- instrumentation helpers ---------------------------------------
    def _call_task(
        self, fn: Callable[..., Any], args: Tuple[Any, ...], phase: str,
        **attrs: Any,
    ) -> Any:
        """Run one task in-process, spanned and latency-timed."""
        if self._metrics is None and self._tracer is None:
            return fn(*args)
        started = monotonic()
        if self._tracer is not None:
            with self._tracer.span(
                "engine task", category="engine", phase=phase, **attrs
            ):
                value = fn(*args)
        else:
            value = fn(*args)
        if self._metrics is not None:
            self._metrics.histogram(
                "engine_task_seconds",
                help="Wall-clock latency of engine-executed tasks.",
                phase=phase,
            ).observe(monotonic() - started)
        return value

    # -- fault tolerance helpers ---------------------------------------
    def _should_retry(self, exc: BaseException, attempt: int) -> bool:
        return (
            self.retry is not None
            and self.retry.is_retryable(exc)
            and attempt < self.retry.max_attempts
        )

    def _retry_pause(self, attempt: int) -> None:
        delay = self.retry.backoff_delay(attempt - 1)
        if delay > 0.0:
            time.sleep(delay)

    def _call_serial(
        self,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        phase: str,
        chaos_index: Optional[int],
        counters: _RunCounters,
        **attrs: Any,
    ) -> Tuple[Any, int]:
        """Run one task in-process under the retry policy.

        Returns ``(value, attempts)``.  Chaos injections (when a plan is
        attached and the task has a map index) fire before each attempt,
        exactly as they do inside pool workers.
        """
        attempt = 1
        while True:
            try:
                if self.chaos is not None and chaos_index is not None:
                    self.chaos.before_task(chaos_index, in_worker=False)
                return self._call_task(fn, args, phase, **attrs), attempt
            except BaseException as exc:
                if not self._should_retry(exc, attempt):
                    raise
                counters.retries += 1
                self._retry_pause(attempt)
                attempt += 1

    def _submit_map_task(
        self,
        pool: ProcessPoolExecutor,
        fn: Callable[[Any], Any],
        item: Any,
        phase: str,
        index: int,
    ):
        """Submit one map task, routing through the chaos/obs wrappers."""
        perf = self._perf is not None
        instrument = (
            self._metrics is not None or self._tracer is not None or perf
        )
        if self.chaos is None and not instrument:
            return pool.submit(fn, item)
        if instrument:
            if self._tracer is not None:
                with self._tracer.span(
                    "engine submit", category="engine", phase=phase,
                    index=index,
                ):
                    ctx = self._tracer.context().as_dict()
            else:
                ctx = None
            if self.chaos is None:
                return pool.submit(_obs_call, ctx, phase, fn, (item,), perf)
            return pool.submit(
                _worker_call, self.chaos, index, True, ctx, phase, fn,
                (item,), perf,
            )
        return pool.submit(
            _worker_call, self.chaos, index, False, None, phase, fn, (item,),
        )

    def _respawn_or_give_up(
        self, respawns: int, phase: str, remaining: int,
        counters: _RunCounters,
    ) -> None:
        """Account one dead pool; raise once the respawn budget is spent."""
        counters.respawns += 1
        if respawns > self.max_respawns:
            raise EngineError(
                f"worker pool for {phase!r} died {respawns} times "
                f"(max_respawns={self.max_respawns}); giving up with "
                f"{remaining} tasks incomplete"
            )

    def _submit_instrumented(
        self, pool: ProcessPoolExecutor, fn: Callable[..., Any],
        args: Tuple[Any, ...], phase: str, **attrs: Any,
    ):
        """Submit a task wrapped in :func:`_obs_call`.

        The submit span is recorded immediately (its duration is the
        submission cost); the worker's spans parent under its id and are
        re-based onto this timeline when the result is unwrapped.
        """
        if self._tracer is not None:
            with self._tracer.span(
                "engine submit", category="engine", phase=phase, **attrs
            ):
                ctx = self._tracer.context().as_dict()
        else:
            ctx = None
        return pool.submit(
            _obs_call, ctx, phase, fn, args, self._perf is not None
        )

    def _unwrap_instrumented(
        self, result: Tuple[Any, ...],
        batch: Optional["BatchPerf"] = None,
    ) -> Any:
        value, snapshot, payload, record = result
        if self._metrics is not None:
            self._metrics.merge_snapshot(snapshot)
        if self._tracer is not None and payload is not None:
            self._tracer.absorb(payload)
        if self._perf is not None and record is not None:
            self._perf.merge_worker(record)
            if batch is not None:
                batch.task_executed(
                    record["pid"], record["wall_start"], record["duration"]
                )
        return value

    def _time_serialization(
        self, batch: Optional["BatchPerf"], fn: Callable[..., Any], item: Any,
    ) -> None:
        """Measure what shipping this task costs in pickle time/bytes.

        The pool pickles ``(fn, item)`` itself on submit; re-pickling
        here is the measured proxy for that cost (only when a perf
        recorder is attached), credited to the serialization bucket.
        """
        if batch is None:
            return
        started = monotonic()
        try:
            payload = pickle.dumps((fn, item))
        except Exception:
            return
        batch.add_serialization(monotonic() - started, len(payload))

    def _record_run_metrics(
        self, phase: str, total: int, executed: int, restored: int,
        delta: CacheStats, retries: int = 0, respawns: int = 0,
    ) -> None:
        if self._metrics is None:
            return
        m = self._metrics
        m.counter(
            "engine_task_retries",
            help="Task attempts re-run after retryable failures.",
        ).inc(retries)
        m.counter(
            "engine_worker_respawns",
            help="Worker pools respawned after a worker death.",
        ).inc(respawns)
        m.counter(
            "engine_tasks", help="Tasks submitted to the engine.", phase=phase,
        ).inc(total)
        m.counter(
            "engine_tasks_executed",
            help="Tasks actually computed (not cached or restored).",
            phase=phase,
        ).inc(executed)
        m.counter(
            "engine_tasks_restored",
            help="Tasks restored from a resume journal.",
            phase=phase,
        ).inc(restored)
        m.counter(
            "engine_tasks_cached",
            help="Tasks satisfied by the memo cache before dispatch.",
            phase=phase,
        ).inc(total - executed - restored)
        for field in (
            "lookups", "hits", "misses", "memory_hits", "disk_hits",
            "stores", "evictions", "corruptions", "disk_write_failures",
        ):
            m.counter(
                f"engine_cache_{field}",
                help=f"Memo-cache {field.replace('_', ' ')} across engine runs.",
            ).inc(getattr(delta, field))

    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        keys: Optional[Sequence[Optional[str]]] = None,
        phase: str = "batch",
        journal: Optional[JournalLike] = None,
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> BatchResult:
        """Evaluate ``fn(item)`` for every item, in parallel when possible.

        Parameters
        ----------
        fn:
            Work function of one argument.  With ``workers > 1`` it must
            be picklable (module-level); its argument and result must be
            picklable too.
        items:
            Task inputs; output order follows input order exactly.
        keys:
            Optional per-item content-addressed cache keys (``None``
            entries bypass the cache).  A key must change whenever the
            item's result could — build them with
            :func:`~repro.engine.canonical_key` from the full spec.
        phase:
            Label for heartbeat events and journal records.
        journal:
            Optional journal (or path).  Completed tasks are appended as
            JSON records; a journal that already holds records for this
            phase/size resumes — restored tasks are not recomputed.
        on_result:
            Callback ``on_result(index, value)`` invoked once per task
            computed *this run* (not for cache/journal restores), in
            completion order.  Campaigns use it to journal their own
            richer records.

        Raises
        ------
        EngineError
            On unpicklable work functions under a process pool, or
            non-JSON-serializable results under a journal.
        ResumeError
            When the journal does not match this batch.
        """
        if self._tracer is None:
            return self._map(fn, items, keys, phase, journal, on_result)
        with self._tracer.span(f"map {phase}", category="engine"):
            return self._map(fn, items, keys, phase, journal, on_result)

    def _map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        keys: Optional[Sequence[Optional[str]]],
        phase: str,
        journal: Optional[JournalLike],
        on_result: Optional[Callable[[int, Any], None]],
    ) -> BatchResult:
        items = list(items)
        total = len(items)
        if keys is not None:
            keys = list(keys)
            if len(keys) != total:
                raise EngineError(
                    f"got {len(keys)} cache keys for {total} items"
                )
        before = self.cache.stats
        started = monotonic()
        bperf = (
            self._perf.start_batch(phase, self.workers, total)
            if self._perf is not None
            else None
        )

        owns_journal = journal is not None and not isinstance(journal, Journal)
        restored: Dict[int, Any] = {}
        if journal is not None:
            path = journal.path if isinstance(journal, Journal) else Path(journal)
            restored = self._restore_from_journal(path, phase, total, keys)
            if owns_journal:
                journal = Journal(path)
            if journal.next_seq == 0:
                journal.append("batch_start", phase=phase, total=total)

        try:
            outputs: List[Any] = [None] * total
            done = 0
            pending: List[int] = []
            for index, item in enumerate(items):
                if index in restored:
                    outputs[index] = restored[index]
                    done += 1
                    continue
                key = keys[index] if keys is not None else None
                if key is not None:
                    if bperf is not None:
                        lookup_started = monotonic()
                        hit, value = self.cache.lookup(key)
                        bperf.add_cache(monotonic() - lookup_started)
                    else:
                        hit, value = self.cache.lookup(key)
                    if hit:
                        outputs[index] = value
                        done += 1
                        continue
                pending.append(index)

            self._beat(
                phase, done, total,
                f"{len(restored)} restored, {done - len(restored)} cached",
            )

            counters = _RunCounters()

            def complete(index: int, value: Any, attempts: int = 1) -> None:
                nonlocal done
                outputs[index] = value
                done += 1
                key = keys[index] if keys is not None else None
                if key is not None:
                    if bperf is not None:
                        put_started = monotonic()
                        self.cache.put(key, value)
                        bperf.add_cache(monotonic() - put_started)
                    else:
                        self.cache.put(key, value)
                if journal is not None:
                    append_started = monotonic() if bperf is not None else 0.0
                    journal.append(
                        "task_result",
                        index=index,
                        key=key,
                        value=_json_safe(value),
                        attempts=attempts,
                    )
                    if bperf is not None:
                        bperf.add_serialization(monotonic() - append_started)
                if on_result is not None:
                    on_result(index, value)
                self._beat(phase, done, total)

            executed = len(pending)
            if self.workers == 1 or len(pending) <= 1:
                for index in pending:
                    self._check()
                    if bperf is not None:
                        self._perf.profiler.tick_task(leaf=f"task:{phase}")
                        wall_start = walltime()
                        exec_started = monotonic()
                    value, attempts = self._call_serial(
                        fn, (items[index],), phase, index, counters,
                        index=index,
                    )
                    if bperf is not None:
                        bperf.task_executed(
                            os.getpid(), wall_start,
                            monotonic() - exec_started,
                        )
                    complete(index, value, attempts)
            else:
                self._map_parallel(fn, items, pending, complete, phase,
                                   counters, bperf)

            if journal is not None and total and done == total:
                # Idempotent end marker (skipped when resuming past one).
                records = read_journal(journal.path, missing_ok=True)
                if not any(r.get("kind") == "batch_end" for r in records):
                    journal.append("batch_end", executed=executed)
        finally:
            if owns_journal and journal is not None:
                journal.close()

        if bperf is not None:
            bperf.finish()
        delta = _stats_delta(before, self.cache.stats)
        self._record_run_metrics(phase, total, executed, len(restored), delta,
                                 retries=counters.retries,
                                 respawns=counters.respawns)
        return BatchResult(
            outputs=tuple(outputs),
            cache_stats=delta,
            executed=executed,
            restored=len(restored),
            workers=self.workers,
            elapsed=monotonic() - started,
            retries=counters.retries,
            respawns=counters.respawns,
        )

    def _map_parallel(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        pending: Sequence[int],
        complete: Callable[..., None],
        phase: str,
        counters: _RunCounters,
        bperf: Optional["BatchPerf"] = None,
    ) -> None:
        """Supervised process-pool backend for :meth:`map`.

        Each *pool pass* drives one ``ProcessPoolExecutor`` until every
        remaining task completes or the pool breaks (a worker died).  A
        broken pool costs one respawn from the ``max_respawns`` budget;
        the next pass re-dispatches exactly the tasks that had not
        completed, so supervised output is bit-identical to serial.
        """
        self._require_picklable(fn)
        remaining: Set[int] = set(pending)
        attempts: Dict[int, int] = {}
        respawns = 0
        while remaining:
            try:
                self._map_pool_pass(fn, items, remaining, attempts, complete,
                                    phase, counters, bperf)
            except BrokenExecutor:
                respawns += 1
                self._respawn_or_give_up(respawns, phase, len(remaining),
                                         counters)

    def _map_pool_pass(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        remaining: Set[int],
        attempts: Dict[int, int],
        complete: Callable[..., None],
        phase: str,
        counters: _RunCounters,
        bperf: Optional["BatchPerf"] = None,
    ) -> None:
        instrument = (
            self._metrics is not None
            or self._tracer is not None
            or self._perf is not None
        )
        max_workers = min(self.workers, len(remaining))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures: Dict[Any, int] = {}
            try:
                for index in sorted(remaining):
                    self._check()
                    self._time_serialization(bperf, fn, items[index])
                    future = self._submit_map_task(pool, fn, items[index],
                                                   phase, index)
                    futures[future] = index
                outstanding = set(futures)
                while outstanding:
                    self._check()
                    if bperf is not None:
                        bperf.sample_queue_depth(len(outstanding))
                    finished, outstanding = wait(
                        outstanding, return_when=FIRST_COMPLETED
                    )
                    for future in finished:
                        index = futures.pop(future)
                        try:
                            value = future.result()
                        except BrokenExecutor:
                            raise  # dead worker: the supervisor respawns
                        except BaseException as exc:
                            attempt = attempts.get(index, 1)
                            if not self._should_retry(exc, attempt):
                                raise
                            attempts[index] = attempt + 1
                            counters.retries += 1
                            self._retry_pause(attempt)
                            retry_future = self._submit_map_task(
                                pool, fn, items[index], phase, index
                            )
                            futures[retry_future] = index
                            outstanding.add(retry_future)
                            continue
                        if instrument:
                            value = self._unwrap_instrumented(value, bperf)
                        complete(index, value, attempts.get(index, 1))
                        remaining.discard(index)
            except BaseException:
                for future in futures:
                    future.cancel()
                raise

    @staticmethod
    def _restore_from_journal(
        path: Path,
        phase: str,
        total: int,
        keys: Optional[Sequence[Optional[str]]],
    ) -> Dict[int, Any]:
        records = read_journal(path, missing_ok=True)
        if not records:
            return {}
        start = records[0]
        if start.get("kind") != "batch_start":
            raise ResumeError(
                f"journal {path} was not written by the evaluation engine "
                "(first record is not batch_start)"
            )
        if start.get("phase") != phase or start.get("total") != total:
            raise ResumeError(
                f"journal {path} records batch {start.get('phase')!r} of "
                f"{start.get('total')} tasks, not {phase!r} of {total}"
            )
        restored: Dict[int, Any] = {}
        for record in records:
            if record.get("kind") != "task_result":
                continue
            index = int(record["index"])
            if not 0 <= index < total:
                raise ResumeError(
                    f"journal {path} holds task index {index} outside "
                    f"0..{total - 1}"
                )
            if keys is not None and record.get("key") != keys[index]:
                raise ResumeError(
                    f"journal {path} task {index} was computed under a "
                    "different cache key; the batch spec changed"
                )
            restored[index] = record["value"]
        return restored

    # ------------------------------------------------------------------
    def run_graph(self, graph: TaskGraph, phase: str = "graph") -> GraphResult:
        """Execute a :class:`~repro.engine.tasks.TaskGraph`.

        Tasks run as soon as their dependencies are available —
        independent tasks in parallel under a process pool.  Keyed tasks
        are memoized; results are returned by name.

        Raises
        ------
        EngineError
            On graph defects (via
            :meth:`~repro.engine.tasks.TaskGraph.topological_order`) or
            unpicklable task functions under a process pool.
        """
        if self._tracer is None:
            return self._run_graph(graph, phase)
        with self._tracer.span(f"run_graph {phase}", category="engine"):
            return self._run_graph(graph, phase)

    def _run_graph(self, graph: TaskGraph, phase: str) -> GraphResult:
        order = graph.topological_order()
        before = self.cache.stats
        started = monotonic()
        bperf = (
            self._perf.start_batch(phase, self.workers, len(order))
            if self._perf is not None
            else None
        )
        values: Dict[str, Any] = {}
        counters = _RunCounters()

        def resolve(name: str) -> Tuple[bool, Any]:
            task = graph.task(name)
            if task.key is not None:
                if bperf is not None:
                    lookup_started = monotonic()
                    outcome = self.cache.lookup(task.key)
                    bperf.add_cache(monotonic() - lookup_started)
                    return outcome
                return self.cache.lookup(task.key)
            return False, None

        def call_args(name: str) -> Tuple[Any, ...]:
            task = graph.task(name)
            return task.args + tuple(values[dep] for dep in task.deps)

        def finish(name: str, value: Any) -> None:
            task = graph.task(name)
            values[name] = value
            if task.key is not None:
                if bperf is not None:
                    put_started = monotonic()
                    self.cache.put(task.key, value)
                    bperf.add_cache(monotonic() - put_started)
                else:
                    self.cache.put(task.key, value)
            self._beat(phase, len(values), len(order), name)

        if self.workers == 1:
            for name in order:
                self._check()
                hit, value = resolve(name)
                if hit:
                    values[name] = value
                    self._beat(phase, len(values), len(order), name)
                    continue
                counters.executed += 1
                if bperf is not None:
                    self._perf.profiler.tick_task(leaf=f"task:{phase}")
                    wall_start = walltime()
                    exec_started = monotonic()
                value, _ = self._call_serial(
                    graph.task(name).fn, call_args(name), phase, None,
                    counters, task=name,
                )
                if bperf is not None:
                    bperf.task_executed(
                        os.getpid(), wall_start, monotonic() - exec_started
                    )
                finish(name, value)
        else:
            self._run_graph_parallel(graph, order, resolve, call_args,
                                     finish, phase, counters, bperf)

        if bperf is not None:
            bperf.finish()
        delta = _stats_delta(before, self.cache.stats)
        self._record_run_metrics(phase, len(order), counters.executed, 0,
                                 delta, retries=counters.retries,
                                 respawns=counters.respawns)
        return GraphResult(
            values=values,
            cache_stats=delta,
            executed=counters.executed,
            workers=self.workers,
            elapsed=monotonic() - started,
            retries=counters.retries,
            respawns=counters.respawns,
        )

    def _run_graph_parallel(self, graph, order, resolve, call_args, finish,
                            phase, counters: _RunCounters,
                            bperf: Optional["BatchPerf"] = None):
        """Supervised process-pool backend for :meth:`run_graph`.

        Like :meth:`_map_parallel`, runs one pool pass at a time; a pass
        that loses a worker forfeits its in-flight futures, and the next
        pass re-dispatches every task that is not yet settled (their
        dependencies stay settled, so no completed work is repeated).
        """
        waiting = {name: set(graph.task(name).deps) for name in order}
        dependents: Dict[str, List[str]] = {name: [] for name in order}
        for name in order:
            for dep in graph.task(name).deps:
                dependents[dep].append(name)
        done: set = set()
        attempts: Dict[str, int] = {}
        respawns = 0
        while len(done) < len(order):
            try:
                self._graph_pool_pass(graph, order, waiting, dependents,
                                      done, attempts, resolve, call_args,
                                      finish, phase, counters, bperf)
            except BrokenExecutor:
                respawns += 1
                self._respawn_or_give_up(
                    respawns, phase, len(order) - len(done), counters
                )
        return counters.executed

    def _graph_pool_pass(self, graph, order, waiting, dependents, done,
                         attempts, resolve, call_args, finish, phase,
                         counters: _RunCounters,
                         bperf: Optional["BatchPerf"] = None):
        instrument = (
            self._metrics is not None
            or self._tracer is not None
            or self._perf is not None
        )
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures: Dict[Any, str] = {}

            def settle(name: str, value: Any) -> List[str]:
                finish(name, value)
                done.add(name)
                freed = []
                for dependent in dependents[name]:
                    waiting[dependent].discard(name)
                    if not waiting[dependent] and dependent not in done:
                        freed.append(dependent)
                return freed

            def submit(name: str) -> None:
                task = graph.task(name)
                self._require_picklable(task.fn)
                self._time_serialization(bperf, task.fn, call_args(name))
                if instrument:
                    future = self._submit_instrumented(
                        pool, task.fn, call_args(name), phase, task=name
                    )
                else:
                    future = pool.submit(task.fn, *call_args(name))
                futures[future] = name

            def dispatch(name: str) -> List[str]:
                # Cache hits (and their newly freed dependents) settle
                # immediately; misses go to the pool.
                self._check()
                hit, value = resolve(name)
                if hit:
                    return settle(name, value)
                submit(name)
                return []

            try:
                # On a respawn pass this re-collects exactly the tasks
                # whose dependencies are settled but which are not.
                ready = [name for name in order
                         if name not in done and not waiting[name]]
                while ready or futures:
                    freed: List[str] = []
                    for name in ready:
                        freed.extend(dispatch(name))
                    ready = freed
                    if not ready and futures:
                        self._check()
                        if bperf is not None:
                            bperf.sample_queue_depth(len(futures))
                        finished, _ = wait(
                            set(futures), return_when=FIRST_COMPLETED
                        )
                        for future in finished:
                            name = futures.pop(future)
                            try:
                                value = future.result()
                            except BrokenExecutor:
                                raise  # dead worker: supervisor respawns
                            except BaseException as exc:
                                attempt = attempts.get(name, 1)
                                if not self._should_retry(exc, attempt):
                                    raise
                                attempts[name] = attempt + 1
                                counters.retries += 1
                                self._retry_pause(attempt)
                                submit(name)
                                continue
                            counters.executed += 1
                            if instrument:
                                value = self._unwrap_instrumented(value,
                                                                  bperf)
                            ready.extend(settle(name, value))
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
        if len(done) != len(order):  # pragma: no cover - defensive
            missing = [name for name in order if name not in done]
            raise EngineError(f"graph execution stalled; unfinished: {missing}")
