"""Estimating dependability parameters from measurements.

The paper's introduction points out that an e-business provider cannot
model its external suppliers white-box: *"only limited information is
generally available... remote measurements can be used to evaluate some
parameters characterizing the dependability of these services.  These
parameters can then be incorporated into the models."*  This subpackage
implements that measurement-to-model pipeline:

* :func:`fit_two_state` — maximum-likelihood failure/repair rates from
  observed up/down durations, with exact gamma confidence intervals;
* :func:`availability_confidence_interval` — Wilson interval for
  probe-based availability estimates (also consumed online by the
  streaming :class:`repro.obs.slo.SLOMonitor`, whose session tallies
  are exactly the successes/trials this interval expects);
* :class:`ProbeLog` — a timeline of probe results (the raw output of a
  remote monitor), reduced to durations, rates and availabilities;
* :mod:`repro.measurement.uncertainty` — propagation of parameter
  uncertainty through any availability model by Monte-Carlo sampling,
  turning measured confidence intervals into confidence intervals on
  the user-perceived availability.
"""

from .estimators import (
    TwoStateFit,
    availability_confidence_interval,
    fit_two_state,
)
from .probes import ProbeLog
from .uncertainty import UncertaintyResult, propagate_uncertainty

__all__ = [
    "TwoStateFit",
    "availability_confidence_interval",
    "fit_two_state",
    "ProbeLog",
    "UncertaintyResult",
    "propagate_uncertainty",
]
