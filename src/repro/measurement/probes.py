"""Probe logs: reducing raw monitoring data to dependability parameters.

A remote monitor periodically probes an external service and records
up/down verdicts.  :class:`ProbeLog` turns such a timeline into the
quantities the models need: point availability with a confidence
interval, observed up/down episodes, and a fitted two-state model ready
to plug into a :class:`~repro.core.HierarchicalModel` resource slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ValidationError
from .estimators import (
    TwoStateFit,
    availability_confidence_interval,
    fit_two_state,
)

__all__ = ["ProbeLog"]


class ProbeLog:
    """A chronological series of probe results for one service.

    Parameters
    ----------
    timestamps:
        Strictly increasing probe times (any consistent unit).
    states:
        Boolean verdicts aligned with *timestamps* (True = service up).

    Examples
    --------
    >>> log = ProbeLog([0, 1, 2, 3, 4, 5], [True, True, False, False,
    ...                                     True, True])
    >>> log.observed_availability()
    0.6666666666666666
    >>> log.episodes()
    [(True, 2.0), (False, 2.0), (True, 1.0)]
    """

    def __init__(self, timestamps: Sequence[float], states: Sequence[bool]):
        times = np.asarray(timestamps, dtype=float)
        verdicts = [bool(s) for s in states]
        if times.ndim != 1 or times.size != len(verdicts):
            raise ValidationError(
                "timestamps and states must be one-dimensional and aligned"
            )
        if times.size < 2:
            raise ValidationError("a probe log needs at least two probes")
        finite = np.isfinite(times)
        if not np.all(finite):
            index = int(np.argmin(finite))
            raise ValidationError(
                f"timestamps must be finite: timestamps[{index}] is "
                f"{times[index]}"
            )
        increasing = np.diff(times) > 0
        if not np.all(increasing):
            index = int(np.argmin(increasing)) + 1
            raise ValidationError(
                "timestamps must be strictly increasing: "
                f"timestamps[{index}] = {times[index]:g} does not follow "
                f"timestamps[{index - 1}] = {times[index - 1]:g}"
            )
        self._times = times
        self._states = verdicts

    def __len__(self) -> int:
        return len(self._states)

    @property
    def span(self) -> float:
        """Total observed time span."""
        return float(self._times[-1] - self._times[0])

    # ------------------------------------------------------------------
    def observed_availability(self) -> float:
        """Fraction of probes that found the service up."""
        return sum(self._states) / len(self._states)

    def availability_interval(self, confidence: float = 0.95) -> Tuple[float, float]:
        """Wilson interval for the probe-based availability.

        Treats probes as independent Bernoulli trials — optimistic when
        probes are much denser than the failure/repair dynamics; use
        :meth:`fit` for a duration-based view.
        """
        return availability_confidence_interval(
            sum(self._states), len(self._states), confidence
        )

    # ------------------------------------------------------------------
    def episodes(self) -> List[Tuple[bool, float]]:
        """Maximal constant-state runs as ``(state, duration)`` pairs.

        The duration of a run is measured between the first probe of the
        run and the first probe of the next run (probe-resolution
        censoring applies at both ends of the log).
        """
        result: List[Tuple[bool, float]] = []
        run_start = self._times[0]
        current = self._states[0]
        for time, state in zip(self._times[1:], self._states[1:]):
            if state != current:
                result.append((current, float(time - run_start)))
                run_start = time
                current = state
        result.append((current, float(self._times[-1] - run_start)))
        return result

    def fit(self, confidence: float = 0.95) -> TwoStateFit:
        """Fit a two-state model from the completed episodes.

        The trailing episode is censored (its end was not observed) and
        is excluded, as is the leading one when the log starts
        mid-episode — standard practice for alternating renewal data.

        Raises
        ------
        ValidationError
            If the log does not contain at least one *complete* up and
            one complete down episode.
        """
        episodes = self.episodes()
        complete = episodes[:-1]  # last episode is right-censored
        ups = [d for state, d in complete if state]
        downs = [d for state, d in complete if not state]
        if not ups or not downs:
            raise ValidationError(
                "need at least one complete up and one complete down episode "
                f"(observed {len(ups)} up, {len(downs)} down)"
            )
        return fit_two_state(ups, downs, confidence=confidence)
