"""Statistical estimators for dependability parameters."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats

from .._validation import check_in_range, check_non_negative_int, check_probability
from ..availability import TwoStateAvailability
from ..errors import ValidationError

__all__ = ["TwoStateFit", "fit_two_state", "availability_confidence_interval"]


@dataclass(frozen=True)
class TwoStateFit:
    """Maximum-likelihood fit of a two-state availability model.

    Attributes
    ----------
    model:
        The fitted :class:`TwoStateAvailability` (point estimates).
    failure_rate_interval / repair_rate_interval:
        Exact gamma confidence intervals for the rates (the MLE of an
        exponential rate from ``n`` observed durations totalling ``T``
        is ``n / T``, with ``2 n lambda T ~ chi^2(2n)``).
    availability_interval:
        Interval for the steady-state availability obtained by combining
        the *pessimistic* and *optimistic* rate corners; conservative
        (at least the nominal coverage).
    confidence:
        The confidence level used for all intervals.
    """

    model: TwoStateAvailability
    failure_rate_interval: Tuple[float, float]
    repair_rate_interval: Tuple[float, float]
    availability_interval: Tuple[float, float]
    confidence: float


def _rate_interval(
    count: int, total_time: float, confidence: float
) -> Tuple[float, float]:
    """Exact CI for an exponential rate from *count* complete durations."""
    alpha = 1.0 - confidence
    lower = stats.chi2.ppf(alpha / 2.0, 2 * count) / (2.0 * total_time)
    upper = stats.chi2.ppf(1.0 - alpha / 2.0, 2 * count) / (2.0 * total_time)
    return float(lower), float(upper)


def fit_two_state(
    up_durations: Sequence[float],
    down_durations: Sequence[float],
    confidence: float = 0.95,
) -> TwoStateFit:
    """Fit failure/repair rates from observed up/down durations.

    Parameters
    ----------
    up_durations:
        Complete time-to-failure observations (same unit throughout).
    down_durations:
        Complete time-to-repair observations.
    confidence:
        Confidence level for the intervals.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(1)
    >>> ups = rng.exponential(100.0, size=500)    # MTTF 100 h
    >>> downs = rng.exponential(2.0, size=500)    # MTTR 2 h
    >>> fit = fit_two_state(ups, downs)
    >>> 0.008 < fit.model.failure_rate < 0.012
    True
    """
    confidence = check_in_range(confidence, 0.5, 0.9999, "confidence")
    ups = np.asarray(up_durations, dtype=float)
    downs = np.asarray(down_durations, dtype=float)
    for name, arr in (("up_durations", ups), ("down_durations", downs)):
        if arr.size == 0:
            raise ValidationError(f"{name} must contain at least one duration")
        if np.any(arr <= 0) or not np.all(np.isfinite(arr)):
            raise ValidationError(f"{name} must be positive and finite")

    failure_rate = ups.size / float(ups.sum())
    repair_rate = downs.size / float(downs.sum())
    model = TwoStateAvailability(
        failure_rate=failure_rate, repair_rate=repair_rate
    )

    failure_ci = _rate_interval(ups.size, float(ups.sum()), confidence)
    repair_ci = _rate_interval(downs.size, float(downs.sum()), confidence)
    # Availability is increasing in mu and decreasing in lambda, so the
    # corner combinations bound it (conservatively, by Bonferroni).
    pessimistic = repair_ci[0] / (failure_ci[1] + repair_ci[0])
    optimistic = repair_ci[1] / (failure_ci[0] + repair_ci[1])
    return TwoStateFit(
        model=model,
        failure_rate_interval=failure_ci,
        repair_rate_interval=repair_ci,
        availability_interval=(pessimistic, optimistic),
        confidence=confidence,
    )


def availability_confidence_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a probe-based availability estimate.

    The natural summary of "we probed the payment gateway 10 000 times
    and 9 920 answered": robust near 0 and 1 where the naive normal
    interval breaks down.

    Examples
    --------
    >>> low, high = availability_confidence_interval(9920, 10000)
    >>> low < 0.992 < high
    True
    """
    trials = check_non_negative_int(trials, "trials")
    successes = check_non_negative_int(successes, "successes")
    if trials == 0:
        raise ValidationError("trials must be >= 1")
    if successes > trials:
        raise ValidationError(
            f"successes ({successes}) cannot exceed trials ({trials})"
        )
    confidence = check_in_range(confidence, 0.5, 0.9999, "confidence")
    z = stats.norm.ppf(0.5 + confidence / 2.0)
    p_hat = successes / trials
    denominator = 1.0 + z**2 / trials
    center = (p_hat + z**2 / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(
            p_hat * (1 - p_hat) / trials + z**2 / (4 * trials**2)
        )
        / denominator
    )
    return float(max(0.0, center - margin)), float(min(1.0, center + margin))
