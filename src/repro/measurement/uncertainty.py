"""Propagating parameter uncertainty through availability models.

Measured inputs come with confidence intervals; the user-perceived
availability inherits that uncertainty.  :func:`propagate_uncertainty`
samples the uncertain parameters, re-evaluates an arbitrary model
function, and summarizes the output distribution — the bridge between
the measurement layer and the modeling layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Tuple

import numpy as np

from .._validation import check_in_range, check_positive_int
from ..errors import ValidationError

__all__ = ["UncertaintyResult", "propagate_uncertainty"]

#: A sampler takes the shared Generator and returns one parameter draw.
Sampler = Callable[[np.random.Generator], float]


@dataclass(frozen=True)
class UncertaintyResult:
    """Summary of a Monte-Carlo uncertainty propagation.

    Attributes
    ----------
    mean / std:
        Moments of the output distribution.
    interval:
        Equal-tailed credible interval at the requested level.
    samples:
        The raw output samples (callers may compute further statistics).
    """

    mean: float
    std: float
    interval: Tuple[float, float]
    samples: np.ndarray

    @property
    def half_width(self) -> float:
        """Half the credible-interval width — a scalar "error bar"."""
        return (self.interval[1] - self.interval[0]) / 2.0


def propagate_uncertainty(
    model: Callable[[Mapping[str, float]], float],
    samplers: Mapping[str, Sampler],
    rng: np.random.Generator,
    draws: int = 1000,
    confidence: float = 0.95,
) -> UncertaintyResult:
    """Monte-Carlo propagation of parameter uncertainty.

    Parameters
    ----------
    model:
        Callable evaluating the measure from a full ``{name: value}``
        parameter draw.
    samplers:
        Per-parameter samplers, e.g. a beta posterior for a probe-based
        availability or a gamma posterior for a fitted rate.  Values
        returned by samplers are passed to *model* untouched.
    rng:
        Random generator (caller owns seeding).
    draws:
        Number of Monte-Carlo evaluations.
    confidence:
        Level of the equal-tailed output interval.

    Examples
    --------
    Uncertainty on two independent 0.9-ish availabilities propagated
    through a series system:

    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> result = propagate_uncertainty(
    ...     lambda p: p["a"] * p["b"],
    ...     {"a": lambda g: g.beta(90, 10), "b": lambda g: g.beta(90, 10)},
    ...     rng, draws=2000)
    >>> abs(result.mean - 0.81) < 0.01
    True
    """
    draws = check_positive_int(draws, "draws")
    confidence = check_in_range(confidence, 0.5, 0.9999, "confidence")
    if not samplers:
        raise ValidationError("at least one parameter sampler is required")

    outputs = np.empty(draws)
    for i in range(draws):
        point: Dict[str, float] = {
            name: float(sampler(rng)) for name, sampler in samplers.items()
        }
        outputs[i] = float(model(point))
    alpha = 1.0 - confidence
    lower, upper = np.quantile(outputs, [alpha / 2.0, 1.0 - alpha / 2.0])
    return UncertaintyResult(
        mean=float(outputs.mean()),
        std=float(outputs.std(ddof=1)) if draws > 1 else 0.0,
        interval=(float(lower), float(upper)),
        samples=outputs,
    )
