"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError`, so a
caller embedding the library can catch every library-specific failure with
a single ``except`` clause while still letting genuine programming errors
(``TypeError`` from bad call signatures, etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "ModelStructureError",
    "SolverError",
    "NotIrreducibleError",
    "CalibrationError",
    "SimulationError",
    "CancelledError",
    "DeadlineExceededError",
    "ResumeError",
    "EngineError",
    "TransientTaskError",
    "ChaosError",
    "ObservabilityError",
    "ServerError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed domain validation (negative rate, bad probability, ...).

    Inherits :class:`ValueError` so code written against the standard
    library conventions keeps working.
    """


class ModelStructureError(ReproError):
    """A model is structurally ill-formed (dangling node, no absorbing state, ...)."""


class SolverError(ReproError):
    """A numerical solver failed to produce a usable solution."""


class NotIrreducibleError(SolverError):
    """A steady-state solve was requested for a reducible chain.

    The steady-state distribution of a finite CTMC/DTMC is unique only when
    the chain is irreducible (a single recurrent class reachable from every
    state); this error reports which states are unreachable or transient.
    """

    def __init__(self, message: str, problem_states: tuple = ()):
        super().__init__(message)
        self.problem_states = tuple(problem_states)


class CalibrationError(ReproError):
    """A model-calibration routine could not fit the requested targets."""


class SimulationError(ReproError):
    """A discrete-event simulation was configured or driven incorrectly."""


class CancelledError(ReproError):
    """A run was cancelled through a :class:`repro.runtime.CancellationToken`.

    Raised at the next cooperative cancellation point after
    :meth:`~repro.runtime.CancellationToken.cancel` is called, so long
    runs unwind cleanly (journals stay consistent, partial results are
    preserved) instead of being killed from outside.
    """

    def __init__(self, message: str = "run was cancelled", reason: str = ""):
        super().__init__(message)
        self.reason = reason


class DeadlineExceededError(CancelledError):
    """A run exhausted its :class:`repro.runtime.Budget` or deadline.

    Subclasses :class:`CancelledError` because a budget overrun is a
    cancellation initiated by the runtime rather than the caller; the
    ``limit`` attribute names which bound tripped (``"wall_clock"``,
    ``"max_events"``, or ``"max_iterations"``).
    """

    def __init__(self, message: str, limit: str = "wall_clock"):
        super().__init__(message, reason=limit)
        self.limit = limit


class ResumeError(ReproError):
    """A run journal could not be resumed.

    Raised when a journal file is corrupt beyond its final record, was
    written by an incompatible schema version, or does not match the
    model/configuration it is being resumed against.
    """


class EngineError(ReproError):
    """The batch evaluation engine was misused or failed structurally.

    Raised for task-graph defects (cycles, unknown dependencies,
    duplicate task names), cache-key specs containing unhashable value
    types, and work functions that cannot be shipped to a process-pool
    worker (unpicklable closures/lambdas with ``workers > 1``).
    """


class TransientTaskError(ReproError):
    """A task failed in a way that is expected to succeed on retry.

    The default retryable exception of the engine's
    :class:`repro.engine.TaskRetryPolicy`: raise it from a task body (or
    let the chaos harness inject it) to mark a failure as transient.
    When every allowed attempt fails, the engine re-raises the *last*
    instance, so exhausted retries surface the original diagnostic.
    """


class ChaosError(ReproError):
    """The deterministic chaos harness was misconfigured.

    Raised for invalid injection plans (negative task indices, an
    unusable state directory) and for injections that would destroy the
    run they are supposed to exercise — e.g. a kill-worker injection
    executing inside the supervising process instead of a pool worker.
    """


class ObservabilityError(ReproError):
    """The observability subsystem was misused or fed bad data.

    Raised for metric name/type conflicts, histogram bucket-bound
    mismatches on merge, malformed metrics snapshots or trace files, and
    span-context misuse (e.g. asking for a propagation context with no
    open span).
    """


class ServerError(ReproError):
    """The evaluation server was misconfigured or a request failed.

    Raised for malformed/oversized HTTP requests (the protocol layer
    maps these to 4xx responses), unusable bind addresses, client-side
    transport failures, and server responses the thin client cannot
    interpret.
    """
