"""Declarative model specifications (dict / JSON) for hierarchical models.

A whole four-level model can be described as plain data — convenient for
configuration files, experiment sweeps and sharing models between teams
without writing Python.  :func:`model_from_dict` builds a
:class:`~repro.core.HierarchicalModel` from a specification dictionary;
:func:`load_model` reads the same structure from a JSON file.

Specification schema::

    {
      "resources": {
        "<name>": 0.99,                                   # fixed availability
        "<name>": {"type": "two-state",
                   "failure_rate": 1e-3, "repair_rate": 1.0},
        "<name>": {"type": "two-state", "availability": 0.9966,
                   "repair_rate": 1.0},                   # derived lambda
        "<name>": {"type": "repairable-group", "units": 4,
                   "failure_rate": 0.1, "repair_rate": 1.0,
                   "repairmen": 2, "repair_threshold": 1,
                   "required": 1},                        # k-of-n group
        "<name>": {"type": "web-service", "servers": 4,
                   "arrival_rate": 100.0, "service_rate": 100.0,
                   "buffer_capacity": 10, "failure_rate": 1e-4,
                   "repair_rate": 1.0, "coverage": 0.98,
                   "reconfiguration_rate": 12.0}
      },
      "services": {
        "<name>": "<resource>",                           # black box
        "<name>": {"parallel": [<structure>, ...]},
        "<name>": {"series":   [<structure>, ...]},
        "<name>": {"k_of_n":   {"k": 2, "of": [<structure>, ...]}}
      },
      "functions": {
        "<name>": {"services": ["web", "database"]},      # series shortcut
        "<name>": {"diagram": {
            "nodes": {"<node>": ["service", ...], ...},
            "edges": [["Begin", "<node>", 0.2],            # prob optional
                      ["<node>", "End"]]
        }}
      },
      "require_everywhere": ["net", "lan"],
      "user_classes": {
        "<name>": {"home": 0.6, "home+search": 0.4}       # '+'-joined sets
      }
    }

Structures nest arbitrarily; a bare string inside a structure refers to
a resource.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Tuple

from .availability import TwoStateAvailability, WebServiceModel
from .core import HierarchicalModel, InteractionDiagram
from .errors import ValidationError
from .profiles import UserClass
from .rbd import Block, Component, KofN, Parallel, Series

__all__ = [
    "model_from_dict",
    "user_classes_from_dict",
    "load_model",
]

_RESOURCE_BUILDERS = {}


def _resource_builder(type_name):
    def register(fn):
        _RESOURCE_BUILDERS[type_name] = fn
        return fn

    return register


@_resource_builder("two-state")
def _build_two_state(spec: Mapping[str, Any]):
    if "availability" in spec:
        return TwoStateAvailability.from_availability(
            spec["availability"], repair_rate=spec.get("repair_rate", 1.0)
        )
    return TwoStateAvailability(
        failure_rate=spec["failure_rate"], repair_rate=spec["repair_rate"]
    )


@_resource_builder("repairable-group")
def _build_repairable_group(spec: Mapping[str, Any]):
    from .availability import RepairableGroup

    kwargs = {
        key: spec[key] for key in ("units", "failure_rate", "repair_rate")
    }
    for optional in ("repairmen", "repair_threshold"):
        if optional in spec:
            kwargs[optional] = spec[optional]
    group = RepairableGroup(**kwargs)
    required = spec.get("required", 1)

    class _GroupAvailability:
        """Adapter exposing the k-of-n availability as a resource."""

        def availability(self) -> float:
            return group.availability(required=required)

    return _GroupAvailability()


@_resource_builder("web-service")
def _build_web_service(spec: Mapping[str, Any]):
    kwargs = {
        key: spec[key]
        for key in (
            "servers",
            "arrival_rate",
            "service_rate",
            "buffer_capacity",
            "failure_rate",
            "repair_rate",
        )
    }
    for optional in ("coverage", "reconfiguration_rate"):
        if optional in spec:
            kwargs[optional] = spec[optional]
    return WebServiceModel(**kwargs)


def _build_resource(name: str, spec) -> Any:
    if isinstance(spec, (int, float)) and not isinstance(spec, bool):
        return float(spec)
    if isinstance(spec, Mapping):
        type_name = spec.get("type")
        if type_name not in _RESOURCE_BUILDERS:
            raise ValidationError(
                f"resource {name!r}: unknown type {type_name!r}; expected "
                f"one of {sorted(_RESOURCE_BUILDERS)} or a bare number"
            )
        try:
            return _RESOURCE_BUILDERS[type_name](spec)
        except KeyError as exc:
            raise ValidationError(
                f"resource {name!r}: missing field {exc.args[0]!r}"
            ) from None
    raise ValidationError(
        f"resource {name!r}: expected a number or a typed mapping, got "
        f"{type(spec).__name__}"
    )


def _build_structure(spec) -> Block:
    if isinstance(spec, str):
        return Component(spec)
    if isinstance(spec, Mapping):
        if len(spec) != 1:
            raise ValidationError(
                f"structure mapping must have exactly one key, got {sorted(spec)}"
            )
        kind, inner = next(iter(spec.items()))
        if kind == "series":
            return Series(*[_build_structure(child) for child in inner])
        if kind == "parallel":
            return Parallel(*[_build_structure(child) for child in inner])
        if kind == "k_of_n":
            return KofN(
                inner["k"], [_build_structure(child) for child in inner["of"]]
            )
        raise ValidationError(
            f"unknown structure kind {kind!r}; expected series/parallel/k_of_n"
        )
    raise ValidationError(
        f"structure must be a resource name or a mapping, got "
        f"{type(spec).__name__}"
    )


def _build_diagram(name: str, spec: Mapping[str, Any]) -> InteractionDiagram:
    diagram = InteractionDiagram(name)
    nodes = spec.get("nodes", {})
    if not isinstance(nodes, Mapping):
        raise ValidationError(f"function {name!r}: 'nodes' must be a mapping")
    for node, services in nodes.items():
        diagram.add_node(node, services=services)
    for edge in spec.get("edges", ()):
        if len(edge) == 2:
            src, dst = edge
            diagram.add_edge(src, dst)
        elif len(edge) == 3:
            src, dst, probability = edge
            diagram.add_edge(src, dst, probability)
        else:
            raise ValidationError(
                f"function {name!r}: edge {edge!r} must be "
                "[src, dst] or [src, dst, probability]"
            )
    return diagram


def model_from_dict(spec: Mapping[str, Any]) -> HierarchicalModel:
    """Build a :class:`HierarchicalModel` from a specification dict.

    See the module docstring for the schema.

    Examples
    --------
    >>> model = model_from_dict({
    ...     "resources": {"host": 0.999},
    ...     "services": {"web": "host"},
    ...     "functions": {"home": {"services": ["web"]}},
    ... })
    >>> round(model.function_availability("home"), 3)
    0.999
    """
    if not isinstance(spec, Mapping):
        raise ValidationError(
            f"model spec must be a mapping, got {type(spec).__name__}"
        )
    unknown = set(spec) - {
        "resources", "services", "functions", "require_everywhere",
        "user_classes", "name",
    }
    if unknown:
        raise ValidationError(f"unknown top-level keys: {sorted(unknown)}")

    model = HierarchicalModel()
    for name, resource_spec in spec.get("resources", {}).items():
        model.add_resource(name, _build_resource(name, resource_spec))
    for name, service_spec in spec.get("services", {}).items():
        model.add_service(name, _build_structure(service_spec))
    for name, function_spec in spec.get("functions", {}).items():
        if not isinstance(function_spec, Mapping):
            raise ValidationError(
                f"function {name!r}: expected a mapping with 'services' or "
                "'diagram'"
            )
        if "diagram" in function_spec:
            model.add_function(
                name, diagram=_build_diagram(name, function_spec["diagram"])
            )
        elif "services" in function_spec:
            model.add_function(name, services=function_spec["services"])
        else:
            raise ValidationError(
                f"function {name!r}: needs 'services' or 'diagram'"
            )
    common = spec.get("require_everywhere", ())
    if common:
        model.require_everywhere(common)
    return model


def user_classes_from_dict(
    spec: Mapping[str, Any]
) -> Dict[str, UserClass]:
    """Build the user classes declared under ``"user_classes"``.

    Scenario keys join function names with ``+``; an empty string means
    the empty scenario.  Probabilities are normalized, so percentages
    work directly.

    Examples
    --------
    >>> classes = user_classes_from_dict({
    ...     "user_classes": {"buyers": {"home": 70, "home+pay": 30}}})
    >>> round(classes["buyers"].buying_intent(), 2)
    0.3
    """
    result: Dict[str, UserClass] = {}
    for name, mix in spec.get("user_classes", {}).items():
        scenarios = {}
        for key, probability in mix.items():
            functions = frozenset(
                part for part in key.split("+") if part
            )
            scenarios[functions] = float(probability)
        result[name] = UserClass.from_probabilities(
            name, scenarios, normalize=True
        )
    return result


def load_model(path) -> Tuple[HierarchicalModel, Dict[str, UserClass]]:
    """Load a model and its user classes from a JSON file.

    Returns
    -------
    (model, user_classes)

    Raises
    ------
    ValidationError
        When the file cannot be read, is not valid JSON, or the
        specification itself is malformed.
    """
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ValidationError(f"cannot read spec file {path}: {exc}") from exc
    try:
        spec = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path}: invalid JSON ({exc})") from exc
    return model_from_dict(spec), user_classes_from_dict(spec)
