"""The canonical workloads, as plain functions.

``repro.cli`` and ``repro.server`` present the same evaluations through
two front ends — a command line and an HTTP job API.  Both must render
byte-identical output for the same inputs (the server's contract is
that a sweep submitted over HTTP returns exactly what ``repro sweep``
prints), so the workload definitions live here, in one place:

* the Fig. 11/12 sensitivity grids (``run_fig_sweep`` /
  ``fig_sweep_text``),
* the named fault scenarios of ``repro inject`` and the campaign
  rendering (``run_fault_campaigns`` / ``campaign_text``),
* the client-policy comparison of ``repro policies``
  (``default_client_policies`` / ``default_farm_scenarios`` /
  ``policy_comparison_text``),
* the cloud deployment comparison of ``repro cloud``
  (``default_cloud_scenarios`` / ``run_cloud_comparison`` /
  ``cloud_comparison_text``).

Everything here is importable without side effects and the work
functions are module-level, so they stay picklable for the engine's
process-pool backend.
"""

from __future__ import annotations

import functools
from typing import List, Optional, Tuple

__all__ = [
    "SWEEP_FAILURE_RATES",
    "FAULT_SCENARIOS",
    "sweep_point",
    "sweep_cell_keys",
    "run_fig_sweep",
    "fig_sweep_text",
    "fault_scenario_factories",
    "run_fault_campaigns",
    "campaign_text",
    "default_client_policies",
    "default_farm_scenarios",
    "run_policy_comparison",
    "policy_comparison_text",
    "default_cloud_scenarios",
    "run_cloud_comparison",
    "cloud_comparison_text",
]

#: The failure-rate curves of Fig. 11/12, per hour.
SWEEP_FAILURE_RATES = (1e-2, 1e-3, 1e-4)

#: Scenario names accepted by ``repro inject --scenario``.
FAULT_SCENARIOS = ("null", "lan-host", "net-outage", "web-degraded")


# -- Fig. 11/12 sensitivity grids --------------------------------------

def sweep_point(figure, arrival_rate, failure_rate, servers):
    """One Fig. 11/12 grid cell (module-level: picklable for workers)."""
    from .availability import WebServiceModel

    imperfect = {}
    if figure == "12":
        imperfect = {"coverage": 0.98, "reconfiguration_rate": 12.0}
    return WebServiceModel(
        servers=int(servers),
        arrival_rate=arrival_rate,
        service_rate=100.0,
        buffer_capacity=10,
        failure_rate=failure_rate,
        repair_rate=1.0,
        **imperfect,
    ).unavailability()


def sweep_cell_keys(figure, arrival_rate, servers) -> List[str]:
    """Content-addressed cache keys for every cell of one grid.

    The key is the full cell spec: any parameter change misses.
    """
    from .engine import canonical_key

    return [
        canonical_key(
            "webservice-unavailability",
            figure=figure,
            arrival_rate=float(arrival_rate),
            service_rate=100.0,
            buffer_capacity=10,
            failure_rate=float(lam),
            repair_rate=1.0,
            servers=int(nw),
        )
        for lam in SWEEP_FAILURE_RATES
        for nw in servers
    ]


def run_fig_sweep(
    figure: str,
    arrival_rate: float,
    servers_max: int,
    engine=None,
    journal=None,
):
    """Run the Fig. 11/12 grid, through *engine* or the plain loop.

    Shared by ``repro sweep``, ``repro chaos``, and the server's sweep
    jobs: the chaos harness runs the same grid once undisturbed
    (``engine=None``, the in-process reference loop) and once under
    injection, then compares the rendered output byte for byte.
    """
    from .sensitivity import grid_sweep

    servers = tuple(range(1, servers_max + 1))
    keys = None
    if engine is not None:
        keys = sweep_cell_keys(figure, arrival_rate, servers)
    return grid_sweep(
        functools.partial(sweep_point, figure, arrival_rate),
        "failure rate", SWEEP_FAILURE_RATES,
        "NW", servers,
        engine=engine,
        keys=keys,
        journal=journal,
    )


def fig_sweep_text(figure, arrival_rate, servers_max, grid) -> str:
    """The stdout rendering of one Fig. 11/12 grid (sweep and chaos)."""
    from .reporting import format_series

    servers = tuple(range(1, servers_max + 1))
    series = {
        f"lambda={lam:g}/h": grid.row(lam).outputs
        for lam in SWEEP_FAILURE_RATES
    }
    coverage = "perfect coverage" if figure == "11" else "coverage = 0.98"
    return format_series(
        "NW", servers, series,
        log_bars=True, floor_exponent=-14,
        title=(
            f"Figure {figure} — {coverage}, "
            f"alpha = {arrival_rate:g}/s"
        ),
    )


# -- fault-injection campaigns -----------------------------------------

def fault_scenario_factories():
    """Named fault scenarios for ``repro inject`` (built lazily)."""
    from .resilience import (
        NullScenario,
        RecurrentDegradation,
        RecurrentOutage,
        ScheduledOutage,
    )

    def lan_host(model):
        hosts = frozenset(
            name for name in model.resources if name.startswith("app-host")
        )
        return RecurrentOutage(
            frozenset({"lan-segment"}) | hosts,
            episode_rate=0.01,
            mean_duration=5.0,
        )

    return {
        "null": lambda model: NullScenario(),
        "lan-host": lan_host,
        "net-outage": lambda model: ScheduledOutage(
            frozenset({"internet-link"}), start=1000.0, duration=50.0
        ),
        "web-degraded": lambda model: RecurrentDegradation(
            "web", factor=0.9, episode_rate=0.02, mean_duration=10.0
        ),
    }


def selected_classes(spec: str):
    """Map a ``--user-class`` value to the Table 1 class objects."""
    from .ta import CLASS_A, CLASS_B

    return {"A": [CLASS_A], "B": [CLASS_B], "both": [CLASS_A, CLASS_B]}[spec]


def run_fault_campaigns(
    scenario: str,
    architecture: str = "redundant",
    user_class: str = "both",
    horizon: float = 5000.0,
    replications: int = 6,
    seed: int = 0,
    workers: int = 1,
    cancellation=None,
    heartbeat=None,
):
    """The ``repro inject`` campaign grid for one named scenario."""
    from .resilience import run_campaigns
    from .ta import TravelAgencyModel

    model = TravelAgencyModel(architecture=architecture)
    built = fault_scenario_factories()[scenario](model.hierarchical_model)
    return run_campaigns(
        model.hierarchical_model,
        selected_classes(user_class),
        [built],
        horizon=horizon,
        replications=replications,
        seed=seed,
        workers=workers,
        cancellation=cancellation,
        heartbeat=heartbeat,
    )


def campaign_text(
    results,
    scenario: str,
    horizon: float,
    replications: int,
    seed: int,
    title_prefix: str = "Fault-injection campaign",
) -> Tuple[str, Optional[bool]]:
    """The stdout rendering of a campaign, plus the calibration verdict.

    Returns ``(text, calibrated)`` where *calibrated* is None for fault
    scenarios and the eq.-(10) agreement verdict for the null scenario
    (which drives the CLI exit code).
    """
    from .resilience import format_campaign_table

    text = format_campaign_table(
        results,
        title=(
            f"{title_prefix} — scenario {scenario!r}, "
            f"{replications} x {horizon:g} h, seed {seed}"
        ),
    )
    calibrated: Optional[bool] = None
    if scenario == "null":
        calibrated = all(r.agrees_with_analytic() for r in results)
        text += (
            "\n\ncalibration: simulated availability "
            + ("agrees with" if calibrated else "DISAGREES with")
            + " the analytic eq.-(10) value within 2 standard errors"
        )
    return text, calibrated


# -- client-policy comparison ------------------------------------------

def default_client_policies(
    max_retries: int = 3,
    persistence: float = 1.0,
    breaker_threshold: int = 3,
    breaker_reset: float = 30.0,
    timeout: float = 0.05,
    hedge_delay: float = 0.02,
):
    """The four policies ranked by ``repro policies``, CLI defaults."""
    from .resilience import (
        CircuitBreakerPolicy,
        HedgePolicy,
        RetryPolicy,
        TimeoutPolicy,
    )

    return [
        RetryPolicy(max_retries=max_retries, persistence=persistence),
        CircuitBreakerPolicy(
            failure_threshold=breaker_threshold,
            reset_timeout=breaker_reset,
        ),
        TimeoutPolicy(timeout),
        HedgePolicy(timeout, hedge_delay),
    ]


def default_farm_scenarios(servers: int):
    """The default fault axis of ``repro policies``.

    Weights approximate how much steady-state time a lightly-faulted
    farm spends in each regime.
    """
    from .resilience import FarmFaultScenario

    return [
        FarmFaultScenario("nominal", servers_up=servers, weight=0.70),
        FarmFaultScenario(
            "surge", servers_up=servers, arrival_factor=1.5,
            weight=0.15,
        ),
        FarmFaultScenario(
            "degraded", servers_up=max(1, servers // 2),
            service_availability=0.95, weight=0.10,
        ),
        FarmFaultScenario(
            "critical", servers_up=1, service_availability=0.90,
            weight=0.05,
        ),
    ]


def run_policy_comparison(
    arrival_rate: float = 100.0,
    service_rate: float = 100.0,
    servers: int = 4,
    buffer: int = 10,
    engine=None,
    policies=None,
    scenarios=None,
):
    """The ``repro policies`` comparison grid with CLI-default axes."""
    from .resilience import compare_client_policies

    if policies is None:
        policies = default_client_policies()
    if scenarios is None:
        scenarios = default_farm_scenarios(servers)
    return compare_client_policies(
        policies,
        scenarios,
        arrival_rate=arrival_rate,
        service_rate=service_rate,
        capacity=buffer,
        engine=engine,
    )


def policy_comparison_text(report) -> str:
    """The stdout rendering of a policy comparison (table + verdict)."""
    from .resilience import format_policy_comparison

    best = report.best
    return (
        format_policy_comparison(report)
        + f"\n\nbest policy: {best.policy} "
        f"(weighted mean {best.mean_availability:.9g})"
    )


# -- cloud deployment comparison ---------------------------------------

def default_cloud_scenarios(
    arrival_rate: float = 100.0,
    service_rate: float = 100.0,
    zone_availability: float = 0.9995,
):
    """The deployment alternatives ranked by ``repro cloud``.

    Five placements of the same Travel Agency — one to three zones,
    relaxed vs strict database quorums, and an overprovisioned two-zone
    farm — all serving the same traffic, so the ranking isolates the
    availability effect of the deployment shape.
    """
    from .bayes import CloudDeployment, CloudScenario

    shared = dict(
        arrival_rate=arrival_rate,
        service_rate=service_rate,
        zone_availability=zone_availability,
    )
    return [
        CloudScenario("single-zone", CloudDeployment(
            zones=1, web_servers_per_zone=4, db_replicas=2, db_quorum=1,
            **shared,
        )),
        CloudScenario("two-zone", CloudDeployment(
            zones=2, web_servers_per_zone=2, db_replicas=2, db_quorum=1,
            **shared,
        )),
        CloudScenario("two-zone-overprovisioned", CloudDeployment(
            zones=2, web_servers_per_zone=4, db_replicas=4, db_quorum=2,
            **shared,
        )),
        CloudScenario("three-zone", CloudDeployment(
            zones=3, web_servers_per_zone=2, db_replicas=3, db_quorum=2,
            **shared,
        )),
        CloudScenario("three-zone-strict-quorum", CloudDeployment(
            zones=3, web_servers_per_zone=2, db_replicas=3, db_quorum=3,
            **shared,
        )),
    ]


def run_cloud_comparison(
    arrival_rate: float = 100.0,
    service_rate: float = 100.0,
    zone_availability: float = 0.9995,
    engine=None,
    scenarios=None,
):
    """The ``repro cloud`` comparison grid with CLI-default scenarios."""
    from .bayes import compare_cloud_scenarios

    if scenarios is None:
        scenarios = default_cloud_scenarios(
            arrival_rate=arrival_rate,
            service_rate=service_rate,
            zone_availability=zone_availability,
        )
    return compare_cloud_scenarios(scenarios, engine=engine)


def cloud_comparison_text(
    report, arrival_rate: float, zone_availability: float
) -> str:
    """The stdout rendering of a cloud comparison (table + verdict)."""
    from .bayes import format_cloud_comparison
    from .reporting import format_downtime

    best = report.best
    return (
        format_cloud_comparison(
            report,
            title=(
                f"Cloud Travel Agency — alpha = {arrival_rate:g}/s, "
                f"zone availability {zone_availability:g}"
            ),
        )
        + f"\n\nbest deployment: {best.scenario} "
        f"(mean availability {best.mean:.9g}, "
        f"{format_downtime(best.mean)})"
    )
