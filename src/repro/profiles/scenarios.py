"""Scenario types: visited-function sets and their probabilities.

A *user scenario* in the paper's sense is characterized by the set of
functions a session invokes (Table 1): cycles such as {Home-Browse}* are
collapsed because repeat invocations do not change which services must be
available for the session to succeed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Tuple

from .._validation import check_probability
from ..errors import ValidationError

__all__ = ["Scenario", "ScenarioDistribution"]


@dataclass(frozen=True)
class Scenario:
    """One user scenario: a set of invoked functions and its probability.

    Attributes
    ----------
    functions:
        The set of functions invoked at least once in the session; empty
        for sessions that bounce straight from Start to Exit.
    probability:
        Activation probability ``pi`` of the scenario.
    """

    functions: FrozenSet[str]
    probability: float

    def __post_init__(self):
        check_probability(self.probability, "probability")
        object.__setattr__(self, "functions", frozenset(self.functions))

    def involves(self, function: str) -> bool:
        """True when the scenario invokes *function*."""
        return function in self.functions

    def label(self, order: Iterable[str] = ()) -> str:
        """Readable label such as ``"{home, search}"``.

        Parameters
        ----------
        order:
            Preferred ordering of function names; unknown names sort last
            alphabetically.
        """
        ordering = {name: i for i, name in enumerate(order)}
        names = sorted(
            self.functions, key=lambda f: (ordering.get(f, len(ordering)), f)
        )
        return "{" + ", ".join(names) + "}"


class ScenarioDistribution:
    """A probability distribution over user scenarios.

    Parameters
    ----------
    scenarios:
        Scenarios with distinct function sets; probabilities must sum to
        one within a small tolerance.

    Examples
    --------
    >>> dist = ScenarioDistribution([
    ...     Scenario(frozenset({"home"}), 0.6),
    ...     Scenario(frozenset({"home", "search"}), 0.4),
    ... ])
    >>> dist.probability_of({"home"})
    0.6
    >>> round(dist.activation_probability("search"), 4)
    0.4
    """

    def __init__(self, scenarios: Iterable[Scenario], tol: float = 1e-9):
        by_set: Dict[FrozenSet[str], float] = {}
        for scenario in scenarios:
            if scenario.functions in by_set:
                raise ValidationError(
                    f"duplicate scenario for functions {set(scenario.functions)!r}"
                )
            by_set[scenario.functions] = scenario.probability
        total = sum(by_set.values())
        if abs(total - 1.0) > tol:
            raise ValidationError(
                f"scenario probabilities sum to {total}, expected 1"
            )
        self._scenarios: Tuple[Scenario, ...] = tuple(
            Scenario(fs, p)
            for fs, p in sorted(
                by_set.items(), key=lambda kv: (len(kv[0]), sorted(kv[0]))
            )
        )

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self._scenarios)

    def __len__(self) -> int:
        return len(self._scenarios)

    def __repr__(self) -> str:
        return f"ScenarioDistribution(scenarios={len(self._scenarios)})"

    @property
    def scenarios(self) -> Tuple[Scenario, ...]:
        """All scenarios, smallest function sets first."""
        return self._scenarios

    def probability_of(self, functions: Iterable[str]) -> float:
        """Probability of the scenario with exactly this function set."""
        wanted = frozenset(functions)
        for scenario in self._scenarios:
            if scenario.functions == wanted:
                return scenario.probability
        return 0.0

    def activation_probability(self, function: str) -> float:
        """Probability that a session invokes *function* at least once."""
        return sum(
            s.probability for s in self._scenarios if s.involves(function)
        )

    def group_by(
        self, classifier: Callable[[Scenario], str]
    ) -> Dict[str, float]:
        """Total probability per category assigned by *classifier*.

        Used for the paper's SC1-SC4 grouping (Fig. 13): scenarios are
        bucketed by the "deepest" function they reach.
        """
        groups: Dict[str, float] = {}
        for scenario in self._scenarios:
            key = classifier(scenario)
            groups[key] = groups.get(key, 0.0) + scenario.probability
        return groups

    def restricted_to(self, predicate: Callable[[Scenario], bool]) -> "ScenarioDistribution":
        """Conditional distribution over scenarios satisfying *predicate*."""
        kept = [s for s in self._scenarios if predicate(s)]
        total = sum(s.probability for s in kept)
        if total <= 0.0:
            raise ValidationError("no scenario satisfies the predicate")
        return ScenarioDistribution(
            [Scenario(s.functions, s.probability / total) for s in kept]
        )

    def total_variation_distance(self, other: "ScenarioDistribution") -> float:
        """Total-variation distance to another scenario distribution."""
        sets = {s.functions for s in self._scenarios} | {
            s.functions for s in other._scenarios
        }
        return 0.5 * sum(
            abs(self.probability_of(fs) - other.probability_of(fs)) for fs in sets
        )
