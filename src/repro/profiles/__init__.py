"""User operational profiles (the paper's *user level*).

An operational profile describes how users traverse a web site: a session
graph with a Start node, an Exit node and one node per site function,
with transition probabilities ``p_ij`` (Fig. 2 of the paper).  The
*scenario distribution* — the probability that a session invokes exactly
a given set of functions, Table 1 of the paper — is computed exactly by
tracking the visited-function set alongside the current node, which
handles the cycles ({Home-Browse}*, {Search-Book}*) that make naive path
enumeration impossible.

:mod:`repro.profiles.calibrate` solves the inverse problem: fitting the
transition probabilities to observed scenario frequencies, which is how a
profile graph is recovered from web-server logs that only record which
functions each session touched.
"""

from .graph import OperationalProfile
from .scenarios import Scenario, ScenarioDistribution
from .classes import UserClass
from .calibrate import calibrate_profile, CalibrationResult

__all__ = [
    "OperationalProfile",
    "Scenario",
    "ScenarioDistribution",
    "UserClass",
    "calibrate_profile",
    "CalibrationResult",
]
