"""User classes: named operational profiles given as scenario mixes.

The paper's Table 1 publishes, for two customer populations (class A,
information seekers; class B, buyers), the probability of each user
scenario rather than the underlying transition graph.  :class:`UserClass`
captures exactly that data and is the input the user-level availability
evaluation consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

from ..errors import ValidationError
from .scenarios import Scenario, ScenarioDistribution

__all__ = ["UserClass"]


@dataclass(frozen=True)
class UserClass:
    """A named user population with a scenario distribution.

    Parameters
    ----------
    name:
        Display name (e.g. ``"class A"``).
    distribution:
        The scenario mix observed for (or assumed of) this population.

    Examples
    --------
    >>> mix = ScenarioDistribution([
    ...     Scenario(frozenset({"home"}), 0.7),
    ...     Scenario(frozenset({"home", "pay"}), 0.3),
    ... ])
    >>> buyers = UserClass("buyers", mix)
    >>> round(buyers.buying_intent("pay"), 2)
    0.3
    """

    name: str
    distribution: ScenarioDistribution

    def __post_init__(self):
        if not self.name:
            raise ValidationError("user class name must be non-empty")

    @classmethod
    def from_probabilities(
        cls,
        name: str,
        scenario_probabilities: Mapping[FrozenSet[str], float],
        normalize: bool = False,
    ) -> "UserClass":
        """Build from a ``{function set: probability}`` mapping.

        Parameters
        ----------
        normalize:
            Rescale probabilities to sum to one — convenient for data
            published in rounded percent (the paper's Table 1).
        """
        items = {
            frozenset(fs): float(p) for fs, p in scenario_probabilities.items()
        }
        total = sum(items.values())
        if normalize:
            if total <= 0:
                raise ValidationError("probabilities must have a positive sum")
            items = {fs: p / total for fs, p in items.items()}
        scenarios = [Scenario(fs, p) for fs, p in items.items()]
        return cls(name, ScenarioDistribution(scenarios))

    @property
    def scenarios(self) -> Tuple[Scenario, ...]:
        """The scenarios of this class's distribution."""
        return self.distribution.scenarios

    def buying_intent(self, pay_function: str = "pay") -> float:
        """Share of sessions that reach the payment function.

        The paper uses this to contrast class A (~7.5%) with class B
        (~20%).
        """
        return self.distribution.activation_probability(pay_function)
