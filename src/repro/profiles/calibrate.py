"""Calibration of a profile graph from observed scenario frequencies.

Web-server logs usually yield *which functions each session touched*
(scenario frequencies, Table 1 of the paper) rather than click-level
transition probabilities ``p_ij``.  :func:`calibrate_profile` inverts the
scenario computation: given an allowed transition structure and a target
scenario distribution, it fits transition probabilities by nonlinear
least squares over a softmax parametrization (which keeps every
candidate a valid probability graph during the search).

The fit is generally over-determined — a graph with ``d`` free
probabilities is asked to match more than ``d`` scenario frequencies —
so a perfect match is not guaranteed; the achieved total-variation
distance is reported so callers can judge the fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np
from scipy import optimize

from ..errors import CalibrationError, ValidationError
from .graph import OperationalProfile
from .scenarios import ScenarioDistribution

__all__ = ["calibrate_profile", "CalibrationResult"]


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a profile calibration.

    Attributes
    ----------
    profile:
        The fitted operational profile.
    total_variation_distance:
        Distance between the fitted and target scenario distributions
        (0 = perfect fit).
    iterations:
        Number of objective evaluations used by the optimizer.
    """

    profile: OperationalProfile
    total_variation_distance: float
    iterations: int


def _group_edges(
    edges: Sequence[Tuple[str, str]]
) -> List[Tuple[str, List[str]]]:
    grouped: Dict[str, List[str]] = {}
    order: List[str] = []
    for src, dst in edges:
        if src not in grouped:
            grouped[src] = []
            order.append(src)
        if dst in grouped[src]:
            raise ValidationError(f"duplicate edge ({src!r}, {dst!r})")
        grouped[src].append(dst)
    return [(src, grouped[src]) for src in order]


def _profile_from_params(
    groups: List[Tuple[str, List[str]]], params: np.ndarray
) -> OperationalProfile:
    transitions: Dict[Tuple[str, str], float] = {}
    cursor = 0
    for src, dsts in groups:
        k = len(dsts)
        if k == 1:
            transitions[(src, dsts[0])] = 1.0
            continue
        logits = np.concatenate([[0.0], params[cursor : cursor + k - 1]])
        cursor += k - 1
        logits = logits - logits.max()
        probs = np.exp(logits)
        probs /= probs.sum()
        for dst, p in zip(dsts, probs):
            transitions[(src, dst)] = float(p)
    return OperationalProfile(transitions)


def calibrate_profile(
    edges: Iterable[Tuple[str, str]],
    target: ScenarioDistribution,
    initial_profile: OperationalProfile = None,
    max_evaluations: int = 2000,
) -> CalibrationResult:
    """Fit transition probabilities to a target scenario distribution.

    Parameters
    ----------
    edges:
        Allowed transitions ``(src, dst)``; ``src`` may be ``"Start"``,
        ``dst`` may be ``"Exit"``.  Every function reachable in the graph
        must be able to reach Exit.
    target:
        Observed scenario distribution to match.
    initial_profile:
        Optional starting point; defaults to uniform branching.
    max_evaluations:
        Cap on objective evaluations.

    Returns
    -------
    CalibrationResult

    Raises
    ------
    CalibrationError
        If the optimizer fails outright (an imperfect but valid fit is
        *not* an error — check ``total_variation_distance``).
    """
    groups = _group_edges(list(edges))
    n_params = sum(len(dsts) - 1 for _, dsts in groups)

    target_sets = sorted(
        {s.functions for s in target.scenarios}, key=lambda fs: (len(fs), sorted(fs))
    )

    def residuals(params: np.ndarray) -> np.ndarray:
        profile = _profile_from_params(groups, params)
        dist = profile.scenario_distribution()
        model_sets = {s.functions for s in dist.scenarios}
        all_sets = target_sets + sorted(
            model_sets - set(target_sets), key=lambda fs: (len(fs), sorted(fs))
        )
        return np.array(
            [dist.probability_of(fs) - target.probability_of(fs) for fs in all_sets]
        )

    if initial_profile is not None:
        x0 = _params_from_profile(groups, initial_profile)
    else:
        x0 = np.zeros(n_params)

    if n_params == 0:
        profile = _profile_from_params(groups, x0)
        dist = profile.scenario_distribution()
        return CalibrationResult(
            profile=profile,
            total_variation_distance=dist.total_variation_distance(target),
            iterations=1,
        )

    try:
        result = optimize.least_squares(
            residuals, x0, max_nfev=max_evaluations, xtol=1e-12, ftol=1e-12
        )
    except Exception as exc:  # scipy raises plain ValueError on bad shapes
        raise CalibrationError(f"profile calibration failed: {exc}") from exc

    profile = _profile_from_params(groups, result.x)
    dist = profile.scenario_distribution()
    return CalibrationResult(
        profile=profile,
        total_variation_distance=dist.total_variation_distance(target),
        iterations=int(result.nfev),
    )


def _params_from_profile(
    groups: List[Tuple[str, List[str]]], profile: OperationalProfile
) -> np.ndarray:
    params: List[float] = []
    floor = 1e-9
    for src, dsts in groups:
        if len(dsts) == 1:
            continue
        probs = np.array([max(profile.probability(src, d), floor) for d in dsts])
        logits = np.log(probs / probs[0])
        params.extend(logits[1:].tolist())
    return np.array(params)
