"""Session graphs: the operational-profile model of Fig. 2."""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from .._validation import check_probability
from ..errors import ModelStructureError, ValidationError
from ..markov import DTMC
from .scenarios import Scenario, ScenarioDistribution

__all__ = ["OperationalProfile"]

START = "Start"
EXIT = "Exit"


class OperationalProfile:
    """A user session graph with probabilistic transitions.

    Sessions begin at the reserved ``"Start"`` node, move between
    function nodes according to the transition probabilities, and finish
    at the reserved ``"Exit"`` node.

    Parameters
    ----------
    transitions:
        ``{(src, dst): probability}``.  ``src`` is ``"Start"`` or a
        function name; ``dst`` is a function name or ``"Exit"``.
        Outgoing probabilities of Start and of every function must sum
        to one.

    Examples
    --------
    A two-function site where users always look at the home page and
    then leave or search once:

    >>> profile = OperationalProfile({
    ...     ("Start", "home"): 1.0,
    ...     ("home", "search"): 0.4,
    ...     ("home", "Exit"): 0.6,
    ...     ("search", "Exit"): 1.0,
    ... })
    >>> sorted(profile.functions)
    ['home', 'search']
    """

    def __init__(self, transitions: Mapping[Tuple[str, str], float]):
        self._transitions: Dict[Tuple[str, str], float] = {}
        functions: List[str] = []
        for (src, dst), prob in transitions.items():
            prob = check_probability(prob, f"p({src!r}->{dst!r})")
            if src == EXIT:
                raise ModelStructureError("Exit must have no outgoing transitions")
            if dst == START:
                raise ModelStructureError("Start must have no incoming transitions")
            if prob == 0.0:
                continue
            self._transitions[(src, dst)] = self._transitions.get((src, dst), 0.0) + prob
            for node in (src, dst):
                if node not in (START, EXIT) and node not in functions:
                    functions.append(node)
        if not self._transitions:
            raise ModelStructureError("profile has no transitions")
        self._functions: Tuple[str, ...] = tuple(functions)
        self._validate()

    def _validate(self) -> None:
        outgoing: Dict[str, float] = {}
        for (src, _), prob in self._transitions.items():
            outgoing[src] = outgoing.get(src, 0.0) + prob
        if START not in outgoing:
            raise ModelStructureError("profile must define transitions out of Start")
        for node in (START, *self._functions):
            total = outgoing.get(node, 0.0)
            if abs(total - 1.0) > 1e-9:
                raise ModelStructureError(
                    f"outgoing probabilities of {node!r} sum to {total}, expected 1"
                )
        # Every session must be able to terminate.
        chain = self.to_dtmc()
        if not chain.is_absorbing_chain():
            raise ModelStructureError(
                "some function cannot reach Exit: sessions could last forever"
            )

    # ------------------------------------------------------------------
    @property
    def functions(self) -> Tuple[str, ...]:
        """Function nodes, in first-seen order."""
        return self._functions

    @property
    def transitions(self) -> Dict[Tuple[str, str], float]:
        """Transition probabilities (copy)."""
        return dict(self._transitions)

    def probability(self, src: str, dst: str) -> float:
        """Transition probability from *src* to *dst* (0 when absent)."""
        return self._transitions.get((src, dst), 0.0)

    def to_dtmc(self) -> DTMC:
        """The session DTMC with Exit absorbing."""
        states = (START, *self._functions, EXIT)
        edges = dict(self._transitions)
        edges[(EXIT, EXIT)] = 1.0
        return DTMC.from_edges(edges, states=states)

    def __repr__(self) -> str:
        return (
            f"OperationalProfile(functions={list(self._functions)}, "
            f"transitions={len(self._transitions)})"
        )

    # ------------------------------------------------------------------
    # Session statistics
    # ------------------------------------------------------------------
    def expected_visits(self, function: str) -> float:
        """Expected number of invocations of *function* per session."""
        if function not in self._functions:
            raise ValidationError(f"unknown function {function!r}")
        analysis = self.to_dtmc().absorption_analysis()
        return analysis.expected_visits(START, function)

    def expected_session_length(self) -> float:
        """Expected number of function invocations per session.

        The Start and Exit pseudo-nodes are not counted.
        """
        analysis = self.to_dtmc().absorption_analysis()
        return sum(
            analysis.expected_visits(START, f) for f in self._functions
        )

    def activation_probability(self, function: str) -> float:
        """Probability that a session invokes *function* at least once."""
        if function not in self._functions:
            raise ValidationError(f"unknown function {function!r}")
        return self.to_dtmc().hitting_probability(START, [function])

    # ------------------------------------------------------------------
    # Scenario distribution (Table 1)
    # ------------------------------------------------------------------
    def scenario_distribution(self) -> ScenarioDistribution:
        """Exact distribution of the set of functions a session invokes.

        The computation runs the session chain on an enlarged state space
        ``(current node, set of functions visited so far)`` and reads the
        distribution of the visited set at absorption.  Cycles in the
        profile graph (repeat visits) are handled exactly: revisiting a
        function does not change the visited set, so the enlarged chain
        remains finite and absorbing.

        Returns
        -------
        ScenarioDistribution
            One :class:`Scenario` per visited set with positive
            probability.
        """
        functions = self._functions
        f_index = {f: i for i, f in enumerate(functions)}

        # Enlarged states: ("at", node, visited_mask) plus absorbing
        # ("done", visited_mask).
        edges: Dict[Tuple, float] = {}
        seen: set = set()
        frontier: List[Tuple[str, int]] = [(START, 0)]
        seen.add((START, 0))
        while frontier:
            node, mask = frontier.pop()
            src = ("at", node, mask)
            for (u, v), prob in self._transitions.items():
                if u != node:
                    continue
                if v == EXIT:
                    dst: Tuple = ("done", mask)
                else:
                    new_mask = mask | (1 << f_index[v])
                    dst = ("at", v, new_mask)
                    if (v, new_mask) not in seen:
                        seen.add((v, new_mask))
                        frontier.append((v, new_mask))
                edges[(src, dst)] = edges.get((src, dst), 0.0) + prob

        chain = DTMC.from_edges(edges)
        analysis = chain.absorption_analysis()
        start = ("at", START, 0)
        scenarios = []
        for done_state in analysis.absorbing_states:
            mask = done_state[1]
            prob = analysis.absorption_probability(start, done_state)
            if prob <= 0.0:
                continue
            visited = frozenset(
                f for f, i in f_index.items() if mask & (1 << i)
            )
            scenarios.append(Scenario(functions=visited, probability=prob))
        return ScenarioDistribution(scenarios)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def sample_session(self, rng: np.random.Generator) -> Tuple[str, ...]:
        """Sample one session: the sequence of functions invoked."""
        path = self.to_dtmc().sample_path(START, rng, stop_states=[EXIT])
        return tuple(node for node in path if node not in (START, EXIT))
