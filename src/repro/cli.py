"""Command-line interface.

Three subcommands cover the common workflows without writing Python:

``repro ta``
    Evaluate the paper's Travel Agency: user availability per class,
    function availabilities, Table 8 sweeps.

``repro web``
    Evaluate a web-server farm's composite availability (the Table 5
    models), optionally under a latency deadline.

``repro evaluate``
    Evaluate a custom model from a JSON specification file
    (see :mod:`repro.spec`).

Run ``python -m repro <command> --help`` for the options of each.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .reporting import format_downtime, format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "User-perceived availability evaluation of web-based "
            "applications (DSN 2003 travel-agency framework)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    ta = commands.add_parser(
        "ta", help="evaluate the paper's Travel Agency case study"
    )
    ta.add_argument(
        "--architecture", choices=("basic", "redundant"), default="redundant",
        help="Fig. 7 (basic) or Fig. 8 (redundant) architecture",
    )
    ta.add_argument(
        "--user-class", choices=("A", "B", "both"), default="both",
        help="which Table 1 user class to evaluate",
    )
    ta.add_argument(
        "--reservations", type=int, default=None, metavar="N",
        help="set N_F = N_H = N_C (defaults to the paper's 5)",
    )
    ta.add_argument(
        "--sweep", action="store_true",
        help="print the Table 8 sweep over N in {1,2,3,4,5,10}",
    )
    ta.add_argument(
        "--categories", action="store_true",
        help="print the Fig. 13 SC1-SC4 breakdown",
    )
    ta.add_argument(
        "--report", action="store_true",
        help="print the full five-section availability report",
    )

    web = commands.add_parser(
        "web", help="evaluate a web-server farm (Table 5 models)"
    )
    web.add_argument("--servers", type=int, default=4)
    web.add_argument("--arrival-rate", type=float, default=100.0,
                     help="requests per second")
    web.add_argument("--service-rate", type=float, default=100.0,
                     help="requests per second per server")
    web.add_argument("--buffer", type=int, default=10,
                     help="total capacity K")
    web.add_argument("--failure-rate", type=float, default=1e-4,
                     help="per-server failures per hour")
    web.add_argument("--repair-rate", type=float, default=1.0,
                     help="repairs per hour (shared facility)")
    web.add_argument("--coverage", type=float, default=None,
                     help="failure coverage c (omit for perfect coverage)")
    web.add_argument("--reconfiguration-rate", type=float, default=12.0,
                     help="manual reconfigurations per hour")
    web.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                     help="also report availability under a latency SLO")

    evaluate = commands.add_parser(
        "evaluate", help="evaluate a custom model from a JSON spec file"
    )
    evaluate.add_argument("spec", help="path to the JSON model specification")
    evaluate.add_argument(
        "--user-class", default=None,
        help="evaluate one declared user class (default: all)",
    )
    return parser


def _cmd_ta(args) -> int:
    from .ta import CLASS_A, CLASS_B, TAParameters, TravelAgencyModel

    params = TAParameters()
    if args.reservations is not None:
        params = params.with_reservation_systems(args.reservations)
    model = TravelAgencyModel(params, architecture=args.architecture)

    classes = {"A": [CLASS_A], "B": [CLASS_B], "both": [CLASS_A, CLASS_B]}[
        args.user_class
    ]

    if args.report:
        from .ta.report import availability_report

        print(availability_report(model, classes))
        return 0

    print(f"Travel Agency — {args.architecture} architecture, "
          f"N_F = N_H = N_C = {params.n_flight}")
    print(f"A(Web service) = {model.web_service_availability():.9f}")
    print()

    rows = []
    for users in classes:
        result = model.user_availability(users)
        rows.append([
            users.name,
            f"{result.availability:.5f}",
            format_downtime(result.availability),
        ])
    print(format_table(["user class", "A(user)", "downtime"], rows))

    if args.sweep:
        print()
        counts = (1, 2, 3, 4, 5, 10)
        header = ["N"] + [users.name for users in classes]
        sweeps = [dict(model.reservation_sweep(u, counts)) for u in classes]
        print(format_table(
            header,
            [[n] + [f"{s[n]:.5f}" for s in sweeps] for n in counts],
            title="Table 8 sweep",
        ))

    if args.categories:
        print()
        rows = []
        for users in classes:
            breakdown = model.category_breakdown(users)
            for category in ("SC1", "SC2", "SC3", "SC4"):
                rows.append([
                    users.name, category,
                    f"{breakdown[category] * 8760.0:.1f}",
                ])
        print(format_table(
            ["user class", "category", "hours/year"],
            rows,
            title="Fig. 13 scenario-category breakdown",
        ))
    return 0


def _cmd_web(args) -> int:
    from .availability import WebServiceModel

    model = WebServiceModel(
        servers=args.servers,
        arrival_rate=args.arrival_rate,
        service_rate=args.service_rate,
        buffer_capacity=args.buffer,
        failure_rate=args.failure_rate,
        repair_rate=args.repair_rate,
        coverage=args.coverage,
        reconfiguration_rate=(
            args.reconfiguration_rate
            if args.coverage is not None and args.coverage < 1.0
            else None
        ),
    )
    breakdown = model.loss_breakdown()
    print(f"{model!r}")
    print(f"A(Web service)          = {breakdown.availability:.9f} "
          f"({format_downtime(breakdown.availability)})")
    print(f"  buffer-full loss      = {breakdown.buffer_full:.3e}")
    print(f"  all servers down      = {breakdown.all_servers_down:.3e}")
    print(f"  manual reconfiguration= {breakdown.manual_reconfiguration:.3e}")
    if args.deadline is not None:
        value = model.deadline_availability(args.deadline)
        print(f"A(served within {args.deadline:g}s) = {value:.9f} "
              f"({format_downtime(value)})")
    return 0


def _cmd_evaluate(args) -> int:
    from .spec import load_model

    model, user_classes = load_model(args.spec)

    print("Services:")
    for name, value in sorted(
        model.service_availabilities().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {name:20s} {value:.9f}")
    print("Functions:")
    for name in model.functions:
        value = model.function_availability(name)
        print(f"  {name:20s} {value:.9f}  ({format_downtime(value)})")

    if args.user_class is not None:
        if args.user_class not in user_classes:
            print(
                f"error: user class {args.user_class!r} is not declared in "
                f"{args.spec} (available: {sorted(user_classes)})",
                file=sys.stderr,
            )
            return 2
        selected = {args.user_class: user_classes[args.user_class]}
    else:
        selected = user_classes

    if selected:
        print("User classes:")
        for name, users in selected.items():
            result = model.user_availability(users)
            print(f"  {name:20s} {result.availability:.6f}  "
                  f"({format_downtime(result.availability)})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {"ta": _cmd_ta, "web": _cmd_web, "evaluate": _cmd_evaluate}
    from .errors import ReproError

    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
