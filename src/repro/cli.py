"""Command-line interface.

Sixteen subcommands cover the common workflows without writing Python:

``repro ta``
    Evaluate the paper's Travel Agency: user availability per class,
    function availabilities, Table 8 sweeps.

``repro web``
    Evaluate a web-server farm's composite availability (the Table 5
    models), optionally under a latency deadline.

``repro evaluate``
    Evaluate a custom model from a JSON specification file
    (see :mod:`repro.spec`).

``repro inject``
    Run a fault-injection campaign against the Travel Agency: simulated
    user-perceived availability under scripted/stochastic faults,
    compared with the analytic eq.-(10) value.

``repro retries``
    Retry-adjusted user-perceived availability — the closed-form
    extension of eq. (10) with bounded user retries, optionally
    cross-validated by discrete-event simulation.

``repro resume``
    Resume an interrupted ``repro inject --journal`` campaign from its
    journal; completed replications are restored, only missing ones are
    simulated, and the final result is bit-identical to an
    uninterrupted run.

``repro sweep``
    Regenerate a Fig. 11/12 sensitivity grid (unavailability vs number
    of web servers, one curve per failure rate) through the batch
    evaluation engine: ``--workers N`` parallelizes the cells with
    bit-identical output, ``--cache-dir`` memoizes them across runs,
    and ``--journal`` makes an interrupted sweep resumable.

``repro policies``
    Rank client-side resilience policies — retry, circuit breaker,
    request timeout, hedged requests — by user-perceived availability
    across a grid of farm fault scenarios, evaluated through the same
    engine (``--workers``/``--cache-dir``) with bit-identical output.

``repro cloud``
    Rank cloud deployments of the Travel Agency — multi-zone placement
    with common-cause zonal failures, database quorums, and an
    autoscaling M/M/c/K web farm — by user-perceived availability
    (exact Bayesian-network inference, see :mod:`repro.bayes`),
    evaluated through the engine with bit-identical output.

``repro chaos``
    Run a Fig. 11/12 sweep under deterministic fault injection — worker
    kills, transient task faults, cache corruption, or a torn journal —
    and verify the recovery contract: stdout must be byte-identical to
    the undisturbed serial run, with the recovery visible in the
    ``--metrics`` counters (``engine_worker_respawns``,
    ``engine_task_retries``, ``engine_cache_corruptions``).

``repro stats``
    Merge and render metrics snapshots written by ``--metrics`` — as a
    sorted table (default), OpenMetrics text, or JSON.

``repro slo``
    Watch the user-perceived availability as an SLO: stream a simulated
    fault-injection campaign through a multi-window burn-rate monitor
    per user class (objective defaults to the analytic eq.-(10) value)
    and report observed availability, Wilson confidence interval,
    error-budget consumption, and the burn-rate alert log.

``repro diff``
    Compare two observability artifacts: metrics snapshots (series-by-
    series deltas/ratios, histogram-aware) or ``BENCH_*.json`` records
    (guarded overhead statistics against the committed baseline; a
    regression beyond the guard threshold exits with code 1).

``repro trace-report``
    Analyze a ``--trace`` Chrome trace JSONL: critical path, self time
    by category, top spans, and per-worker utilization.

``repro serve``
    Run the evaluation server (:mod:`repro.server`): an asyncio HTTP
    job API over the same workloads (sweeps, policy comparisons,
    campaigns), with SSE streaming, an OpenMetrics ``/metrics``
    endpoint, and an M/M/c/K admission controller that models the
    server itself (``GET /v1/self``).

``repro profile``
    Run another subcommand under performance attribution
    (:mod:`repro.obs.perf`): per-event-type kernel accounting, an
    engine phase/idle :class:`~repro.obs.AttributionReport` (compute
    vs serialization vs IPC vs idle vs cache), and a deterministic
    counter-triggered flamegraph.  Stdout stays byte-identical to the
    unwrapped run; the artifacts land in ``--out``.

Long runs are bounded and interruptible: ``inject`` and ``retries``
take ``--deadline SECONDS`` (wall clock; exceeding it exits with code 2
and, with ``--journal``, leaves a resumable journal) and ``--progress``
(heartbeat lines on stderr).

Long runs are also observable: ``sweep``/``inject``/``retries``/
``resume`` take ``--metrics PATH`` (a :mod:`repro.obs` registry
snapshot, rendered by ``repro stats``) and ``--trace PATH`` (a Chrome
trace-event JSONL span timeline), plus ``--profile DIR`` (performance-
attribution artifacts, also reachable as ``repro profile <command>``);
all files are written even when a deadline aborts the run.
Instrumentation never changes stdout — a ``--metrics``/``--trace``/
``--profile`` run prints byte-identical results.

Run ``python -m repro <command> --help`` for the options of each.
Errors are reported as a one-line message with exit code 2; pass
``--debug`` (before the subcommand) to get the full traceback instead.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import List, Optional

from .reporting import format_downtime, format_table
from .workloads import FAULT_SCENARIOS, SWEEP_FAILURE_RATES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "User-perceived availability evaluation of web-based "
            "applications (DSN 2003 travel-agency framework)."
        ),
    )
    parser.add_argument(
        "--debug", action="store_true",
        help="print full tracebacks instead of one-line error messages",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    ta = commands.add_parser(
        "ta", help="evaluate the paper's Travel Agency case study"
    )
    ta.add_argument(
        "--architecture", choices=("basic", "redundant"), default="redundant",
        help="Fig. 7 (basic) or Fig. 8 (redundant) architecture",
    )
    ta.add_argument(
        "--user-class", choices=("A", "B", "both"), default="both",
        help="which Table 1 user class to evaluate",
    )
    ta.add_argument(
        "--reservations", type=int, default=None, metavar="N",
        help="set N_F = N_H = N_C (defaults to the paper's 5)",
    )
    ta.add_argument(
        "--sweep", action="store_true",
        help="print the Table 8 sweep over N in {1,2,3,4,5,10}",
    )
    ta.add_argument(
        "--categories", action="store_true",
        help="print the Fig. 13 SC1-SC4 breakdown",
    )
    ta.add_argument(
        "--report", action="store_true",
        help="print the full five-section availability report",
    )

    web = commands.add_parser(
        "web", help="evaluate a web-server farm (Table 5 models)"
    )
    web.add_argument("--servers", type=int, default=4)
    web.add_argument("--arrival-rate", type=float, default=100.0,
                     help="requests per second")
    web.add_argument("--service-rate", type=float, default=100.0,
                     help="requests per second per server")
    web.add_argument("--buffer", type=int, default=10,
                     help="total capacity K")
    web.add_argument("--failure-rate", type=float, default=1e-4,
                     help="per-server failures per hour")
    web.add_argument("--repair-rate", type=float, default=1.0,
                     help="repairs per hour (shared facility)")
    web.add_argument("--coverage", type=float, default=None,
                     help="failure coverage c (omit for perfect coverage)")
    web.add_argument("--reconfiguration-rate", type=float, default=12.0,
                     help="manual reconfigurations per hour")
    web.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                     help="also report availability under a latency SLO")

    evaluate = commands.add_parser(
        "evaluate", help="evaluate a custom model from a JSON spec file"
    )
    evaluate.add_argument("spec", help="path to the JSON model specification")
    evaluate.add_argument(
        "--user-class", default=None,
        help="evaluate one declared user class (default: all)",
    )

    inject = commands.add_parser(
        "inject",
        help="run a fault-injection campaign against the Travel Agency",
    )
    inject.add_argument(
        "--scenario", choices=sorted(FAULT_SCENARIOS), default="null",
        help="fault scenario to inject (null = calibration campaign)",
    )
    inject.add_argument(
        "--architecture", choices=("basic", "redundant"), default="redundant",
    )
    inject.add_argument(
        "--user-class", choices=("A", "B", "both"), default="both",
    )
    inject.add_argument(
        "--horizon", type=float, default=5000.0,
        help="simulated hours per replication",
    )
    inject.add_argument(
        "--replications", type=int, default=6,
        help="independent replications per campaign",
    )
    inject.add_argument("--seed", type=int, default=0)
    inject.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for replications; output is bit-identical "
             "for any count",
    )
    _add_runtime_flags(inject, journal_help=(
        "journal per-replication results to this JSONL file "
        "(crash-consistent; resumable via `repro resume`); "
        "requires --user-class A or B"
    ))

    retries = commands.add_parser(
        "retries",
        help="retry-adjusted user-perceived availability (eq. 10 + retries)",
    )
    retries.add_argument(
        "--architecture", choices=("basic", "redundant"), default="redundant",
    )
    retries.add_argument(
        "--user-class", choices=("A", "B", "both"), default="both",
    )
    retries.add_argument(
        "--max-retries", type=int, default=3,
        help="retry budget k (0 reproduces the paper's measure)",
    )
    retries.add_argument(
        "--persistence", type=float, default=1.0,
        help="probability the user retries after each failure",
    )
    retries.add_argument(
        "--sweep", action="store_true",
        help="print Table 8 with a retry-adjusted column",
    )
    retries.add_argument(
        "--simulate", type=int, default=None, metavar="SESSIONS",
        help="cross-validate with a discrete-event retry simulation",
    )
    retries.add_argument("--seed", type=int, default=0)
    retries.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the --simulate cross-validation; "
             "output is bit-identical for any count",
    )
    _add_runtime_flags(retries, journal_help=(
        "append per-class retry results to this JSONL journal"
    ))

    resume = commands.add_parser(
        "resume",
        help="resume an interrupted `repro inject --journal` campaign",
    )
    resume.add_argument("journal", help="path to the campaign journal")
    _add_runtime_flags(resume, journal=False)

    sweep = commands.add_parser(
        "sweep",
        help="regenerate a Fig. 11/12 grid through the evaluation engine",
    )
    sweep.add_argument(
        "--figure", choices=("11", "12"), default="11",
        help="11 = perfect coverage, 12 = coverage 0.98 with manual "
             "reconfiguration at 12/h",
    )
    sweep.add_argument(
        "--arrival-rate", type=float, default=100.0,
        help="requests per second (the paper plots 50, 100 and 150)",
    )
    sweep.add_argument(
        "--servers-max", type=int, default=10, metavar="N",
        help="sweep NW over 1..N",
    )
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; output is bit-identical for any count",
    )
    sweep.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="on-disk memo cache; a warm rerun recomputes nothing",
    )
    _add_runtime_flags(sweep, journal_help=(
        "journal per-cell results to this JSONL file; re-running the "
        "same sweep over it resumes instead of recomputing"
    ))

    policies = commands.add_parser(
        "policies",
        help=(
            "rank client-side resilience policies (retry, circuit "
            "breaker, timeout, hedge) across farm fault scenarios"
        ),
    )
    policies.add_argument(
        "--arrival-rate", type=float, default=100.0,
        help="nominal requests per second offered to the farm",
    )
    policies.add_argument(
        "--service-rate", type=float, default=100.0,
        help="per-server service rate (requests per second)",
    )
    policies.add_argument(
        "--servers", type=int, default=4,
        help="web servers in the nominal farm (paper: NW = 4)",
    )
    policies.add_argument(
        "--buffer", type=int, default=10,
        help="total buffer capacity K of the farm queue",
    )
    policies.add_argument(
        "--timeout", type=float, default=0.05, metavar="SECONDS",
        help="request timeout of the timeout and hedge policies",
    )
    policies.add_argument(
        "--hedge-delay", type=float, default=0.02, metavar="SECONDS",
        help="delay before the hedge policy issues its spare request",
    )
    policies.add_argument(
        "--max-retries", type=int, default=3,
        help="retry budget of the retry policy",
    )
    policies.add_argument(
        "--persistence", type=float, default=1.0,
        help="per-failure retry probability of the retry policy",
    )
    policies.add_argument(
        "--breaker-threshold", type=int, default=3,
        help="consecutive failures that trip the circuit breaker",
    )
    policies.add_argument(
        "--breaker-reset", type=float, default=30.0, metavar="SECONDS",
        help="mean open-state dwell before a recovery probe",
    )
    policies.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; output is bit-identical for any count",
    )
    policies.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="on-disk memo cache; a warm rerun recomputes nothing",
    )
    _add_runtime_flags(policies, journal=False)

    cloud = commands.add_parser(
        "cloud",
        help=(
            "rank cloud deployments of the Travel Agency (multi-zone "
            "replica sets, zonal common-cause failures, autoscaling "
            "M/M/c/K farm) by user-perceived availability"
        ),
    )
    cloud.add_argument(
        "--arrival-rate", type=float, default=100.0,
        help="requests per second offered to the web farm",
    )
    cloud.add_argument(
        "--service-rate", type=float, default=100.0,
        help="per-server service rate (requests per second)",
    )
    cloud.add_argument(
        "--zone-availability", type=float, default=0.9995,
        help="availability of each zone (the common-cause root nodes)",
    )
    cloud.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; output is bit-identical for any count",
    )
    cloud.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="on-disk memo cache; a warm rerun recomputes nothing",
    )
    _add_runtime_flags(cloud, journal=False)

    chaos = commands.add_parser(
        "chaos",
        help=(
            "run a Fig. 11/12 sweep under deterministic fault injection "
            "and verify byte-identical recovery"
        ),
    )
    chaos.add_argument(
        "--injector", required=True,
        choices=("kill-worker", "transient", "corrupt-cache",
                 "truncate-journal"),
        help=(
            "fault class to inject: kill pool workers mid-task, raise "
            "transient task faults, corrupt on-disk cache entries, or "
            "tear the tail off a resume journal"
        ),
    )
    chaos.add_argument(
        "--figure", choices=("11", "12"), default="11",
        help="the sensitivity grid to run under injection",
    )
    chaos.add_argument(
        "--arrival-rate", type=float, default=100.0,
        help="requests per second (matches `repro sweep`)",
    )
    chaos.add_argument(
        "--servers-max", type=int, default=10, metavar="N",
        help="sweep NW over 1..N",
    )
    chaos.add_argument(
        "--workers", type=int, default=2,
        help="worker processes (kill-worker needs >= 2)",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="seed choosing the injection sites")
    chaos.add_argument(
        "--faults", type=int, default=2,
        help="planned injections (kills, transient faults, corrupted "
             "cache entries, or torn journal records)",
    )
    _add_runtime_flags(chaos, journal=False)

    stats = commands.add_parser(
        "stats",
        help="merge and render metrics files written by --metrics",
    )
    stats.add_argument(
        "files", nargs="+", metavar="METRICS",
        help="one or more --metrics JSON snapshots (merged by name)",
    )
    stats.add_argument(
        "--format", choices=("table", "openmetrics", "json"),
        default="table",
        help="output format (default: a sorted fixed-width table)",
    )

    slo = commands.add_parser(
        "slo",
        help=(
            "monitor the user-perceived availability SLO over a "
            "simulated campaign (multi-window burn-rate alerting)"
        ),
    )
    slo.add_argument(
        "--scenario", choices=sorted(FAULT_SCENARIOS), default="null",
        help="fault scenario to inject while monitoring",
    )
    slo.add_argument(
        "--architecture", choices=("basic", "redundant"), default="redundant",
    )
    slo.add_argument(
        "--user-class", choices=("A", "B", "both"), default="both",
    )
    slo.add_argument(
        "--horizon", type=float, default=5000.0,
        help="simulated hours per replication",
    )
    slo.add_argument(
        "--replications", type=int, default=4,
        help="replications streamed back to back onto one timeline",
    )
    slo.add_argument("--seed", type=int, default=0)
    slo.add_argument(
        "--session-rate", type=float, default=1.0,
        help="user sessions per simulated hour (Poisson sampling)",
    )
    slo.add_argument(
        "--objective", type=float, default=None,
        help=(
            "availability objective in (0, 1); default is the analytic "
            "eq.-(10) value of each user class"
        ),
    )
    slo.add_argument(
        "--short-window", type=float, default=50.0, metavar="HOURS",
        help="short burn-rate window (also clears active alerts)",
    )
    slo.add_argument(
        "--long-window", type=float, default=500.0, metavar="HOURS",
        help="long burn-rate window (suppresses blips)",
    )
    slo.add_argument(
        "--burn-threshold", type=float, default=5.0,
        help="alert when every window burns at or above this rate",
    )

    diff = commands.add_parser(
        "diff",
        help=(
            "diff two metrics snapshots or BENCH_*.json records "
            "(bench regressions exit with code 1)"
        ),
    )
    diff.add_argument("old", help="baseline artifact (JSON)")
    diff.add_argument("new", help="current artifact (JSON)")
    diff.add_argument(
        "--include-unchanged", action="store_true",
        help="metrics mode: also list series that did not move",
    )
    diff.add_argument(
        "--threshold", type=float, default=None,
        help=(
            "bench mode: override the records' own guard_threshold for "
            "the regression verdict"
        ),
    )

    trace_report = commands.add_parser(
        "trace-report",
        help="analyze a --trace Chrome trace JSONL file",
    )
    # dest must not be "trace": _setup_instrumentation reads args.trace
    # as the ambient --trace output path and would truncate the input.
    trace_report.add_argument(
        "trace_file", metavar="trace", help="path to the trace JSONL"
    )
    trace_report.add_argument(
        "--top", type=int, default=10, metavar="K",
        help="number of spans in the top-spans table",
    )

    serve = commands.add_parser(
        "serve",
        help=(
            "run the evaluation server (HTTP job API, SSE streaming, "
            "OpenMetrics /metrics, M/M/c/K self-modeling admission)"
        ),
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: loopback only)",
    )
    serve.add_argument(
        "--port", type=int, default=8033,
        help="TCP port; 0 picks an ephemeral port",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="concurrent evaluation slots c (the M/M/c/K servers)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=8,
        help=(
            "admission capacity K: running + queued jobs; a submission "
            "finding K jobs in the system is rejected with 503"
        ),
    )
    serve.add_argument(
        "--journal", default=None, metavar="PATH",
        help=(
            "journal job submissions/results to this JSONL file; a "
            "restart restores results and re-runs interrupted jobs"
        ),
    )
    serve.add_argument(
        "--slo-objective", type=float, default=0.999,
        help="admission availability objective watched by the SLO monitor",
    )
    serve.add_argument(
        "--port-file", default=None, metavar="PATH",
        help=(
            "write the bound port to this file once listening (for "
            "scripts using --port 0)"
        ),
    )

    profile = commands.add_parser(
        "profile",
        help=(
            "run another subcommand under performance attribution "
            "(kernel accounting, phase/idle timelines, flamegraph); "
            "stdout stays byte-identical, artifacts land in --out"
        ),
    )
    profile.add_argument(
        "--out", default="profile-artifacts", metavar="DIR",
        help=(
            "directory for attribution.json/.txt, profile.collapsed, "
            "and profile.speedscope.json (default: %(default)s)"
        ),
    )
    profile.add_argument(
        "wrapped", nargs=argparse.REMAINDER, metavar="COMMAND ...",
        help=(
            "the subcommand to profile, with its own flags "
            "(e.g. `repro profile sweep --figure 11 --workers 2`)"
        ),
    )
    return parser


def _add_runtime_flags(parser, journal: bool = True, journal_help: str = ""):
    """The shared fault-tolerant-execution flags (see repro.runtime)."""
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help=(
            "wall-clock budget; exceeding it aborts cleanly with exit "
            "code 2 (journaled work is preserved)"
        ),
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print heartbeat/liveness lines to stderr",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help=(
            "write a metrics snapshot (JSON) of the run; render it with "
            "`repro stats`"
        ),
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help=(
            "write a span timeline as Chrome trace-event JSONL "
            "(chrome://tracing / Perfetto compatible)"
        ),
    )
    parser.add_argument(
        "--profile", default=None, metavar="DIR",
        help=(
            "write performance-attribution artifacts (attribution "
            "report, kernel accounting, flamegraph) to this directory; "
            "stdout stays byte-identical"
        ),
    )
    if journal:
        parser.add_argument(
            "--journal", default=None, metavar="PATH", help=journal_help
        )


def _check_int_flag(
    value: int,
    flag: str,
    minimum: int = 1,
    maximum: Optional[int] = None,
) -> int:
    """Validate an integer CLI flag, naming the flag on failure.

    Every integer flag goes through this helper so bad values fail the
    same way: one line naming the flag (``error: --workers must be >=
    1, got 0``), exit code 2.
    """
    from .errors import ValidationError

    bad = (
        not isinstance(value, int)
        or isinstance(value, bool)
        or value < minimum
        or (maximum is not None and value > maximum)
    )
    if bad:
        expected = (
            f"in {minimum}..{maximum}"
            if maximum is not None
            else f">= {minimum}"
        )
        raise ValidationError(f"--{flag} must be {expected}, got {value}")
    return value


def _check_float_flag(
    value: float,
    flag: str,
    low: Optional[float] = 0.0,
    high: Optional[float] = None,
    low_inclusive: bool = False,
    high_inclusive: bool = True,
) -> float:
    """Validate a float CLI flag, naming the flag on failure.

    The float counterpart of :func:`_check_int_flag`: every float flag
    of every subcommand goes through this helper so bad values fail the
    same way — one line naming the flag (``error: --arrival-rate must
    be > 0, got -1``), exit code 2.  ``argparse``'s ``type=float``
    happily parses ``nan`` and ``inf``; both are rejected here, where
    the message can still name the flag.  ``low=None`` skips the range
    check (any finite number is accepted).
    """
    import math

    from .errors import ValidationError

    if low is None and high is None:
        expected = "a finite number"
    elif high is None:
        expected = f"{'>=' if low_inclusive else '>'} {low:g}"
    else:
        expected = (
            f"in {'[' if low_inclusive else '('}{low:g}, "
            f"{high:g}{']' if high_inclusive else ')'}"
        )

    def fail() -> None:
        raise ValidationError(f"--{flag} must be {expected}, got {value}")

    if not isinstance(value, (int, float)) or isinstance(value, bool):
        fail()
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        fail()
    if low is not None and (
        value < low or (value == low and not low_inclusive)
    ):
        fail()
    if high is not None and (
        value > high or (value == high and not high_inclusive)
    ):
        fail()
    return value


def _check_workers(value: int) -> int:
    """Validate a ``--workers`` flag value, naming the flag on failure."""
    return _check_int_flag(value, "workers")


def _fault_scenarios():
    """Named fault scenarios for ``repro inject`` (built lazily)."""
    from .workloads import fault_scenario_factories

    return fault_scenario_factories()


def _cmd_ta(args) -> int:
    from .ta import CLASS_A, CLASS_B, TAParameters, TravelAgencyModel

    params = TAParameters()
    if args.reservations is not None:
        _check_int_flag(args.reservations, "reservations")
        params = params.with_reservation_systems(args.reservations)
    model = TravelAgencyModel(params, architecture=args.architecture)

    classes = {"A": [CLASS_A], "B": [CLASS_B], "both": [CLASS_A, CLASS_B]}[
        args.user_class
    ]

    if args.report:
        from .ta.report import availability_report

        print(availability_report(model, classes))
        return 0

    print(f"Travel Agency — {args.architecture} architecture, "
          f"N_F = N_H = N_C = {params.n_flight}")
    print(f"A(Web service) = {model.web_service_availability():.9f}")
    print()

    rows = []
    for users in classes:
        result = model.user_availability(users)
        rows.append([
            users.name,
            f"{result.availability:.5f}",
            format_downtime(result.availability),
        ])
    print(format_table(["user class", "A(user)", "downtime"], rows))

    if args.sweep:
        print()
        counts = (1, 2, 3, 4, 5, 10)
        header = ["N"] + [users.name for users in classes]
        sweeps = [dict(model.reservation_sweep(u, counts)) for u in classes]
        print(format_table(
            header,
            [[n] + [f"{s[n]:.5f}" for s in sweeps] for n in counts],
            title="Table 8 sweep",
        ))

    if args.categories:
        print()
        rows = []
        for users in classes:
            breakdown = model.category_breakdown(users)
            for category in ("SC1", "SC2", "SC3", "SC4"):
                rows.append([
                    users.name, category,
                    f"{breakdown[category] * 8760.0:.1f}",
                ])
        print(format_table(
            ["user class", "category", "hours/year"],
            rows,
            title="Fig. 13 scenario-category breakdown",
        ))
    return 0


def _cmd_web(args) -> int:
    from .availability import WebServiceModel

    _check_int_flag(args.servers, "servers")
    _check_int_flag(args.buffer, "buffer", minimum=0)
    _check_float_flag(args.arrival_rate, "arrival-rate")
    _check_float_flag(args.service_rate, "service-rate")
    _check_float_flag(args.failure_rate, "failure-rate")
    _check_float_flag(args.repair_rate, "repair-rate")
    if args.coverage is not None:
        _check_float_flag(
            args.coverage, "coverage", low=0.0, high=1.0, low_inclusive=True
        )
    _check_float_flag(args.reconfiguration_rate, "reconfiguration-rate")
    if args.deadline is not None:
        _check_float_flag(args.deadline, "deadline")
    model = WebServiceModel(
        servers=args.servers,
        arrival_rate=args.arrival_rate,
        service_rate=args.service_rate,
        buffer_capacity=args.buffer,
        failure_rate=args.failure_rate,
        repair_rate=args.repair_rate,
        coverage=args.coverage,
        reconfiguration_rate=(
            args.reconfiguration_rate
            if args.coverage is not None and args.coverage < 1.0
            else None
        ),
    )
    breakdown = model.loss_breakdown()
    print(f"{model!r}")
    print(f"A(Web service)          = {breakdown.availability:.9f} "
          f"({format_downtime(breakdown.availability)})")
    print(f"  buffer-full loss      = {breakdown.buffer_full:.3e}")
    print(f"  all servers down      = {breakdown.all_servers_down:.3e}")
    print(f"  manual reconfiguration= {breakdown.manual_reconfiguration:.3e}")
    if args.deadline is not None:
        value = model.deadline_availability(args.deadline)
        print(f"A(served within {args.deadline:g}s) = {value:.9f} "
              f"({format_downtime(value)})")
    return 0


def _cmd_evaluate(args) -> int:
    from .spec import load_model

    model, user_classes = load_model(args.spec)

    print("Services:")
    for name, value in sorted(
        model.service_availabilities().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {name:20s} {value:.9f}")
    print("Functions:")
    for name in model.functions:
        value = model.function_availability(name)
        print(f"  {name:20s} {value:.9f}  ({format_downtime(value)})")

    if args.user_class is not None:
        if args.user_class not in user_classes:
            print(
                f"error: user class {args.user_class!r} is not declared in "
                f"{args.spec} (available: {sorted(user_classes)})",
                file=sys.stderr,
            )
            return 2
        selected = {args.user_class: user_classes[args.user_class]}
    else:
        selected = user_classes

    if selected:
        print("User classes:")
        for name, users in selected.items():
            result = model.user_availability(users)
            print(f"  {name:20s} {result.availability:.6f}  "
                  f"({format_downtime(result.availability)})")
    return 0


def _selected_classes(spec: str):
    from .workloads import selected_classes

    return selected_classes(spec)


def _runtime_context(args):
    """(cancellation, heartbeat) from the shared --deadline/--progress flags."""
    from .runtime import Budget, ConsoleHeartbeat

    cancellation = None
    if args.deadline is not None:
        _check_float_flag(args.deadline, "deadline")
        cancellation = Budget(wall_clock=args.deadline).start()
    heartbeat = ConsoleHeartbeat() if args.progress else None
    return cancellation, heartbeat


def _cmd_inject(args) -> int:
    from .errors import ValidationError
    from .resilience import run_campaign, run_campaigns
    from .ta import TravelAgencyModel
    from .workloads import campaign_text

    _check_workers(args.workers)
    _check_int_flag(args.replications, "replications")
    _check_int_flag(args.seed, "seed", minimum=0)
    _check_float_flag(args.horizon, "horizon")
    cancellation, heartbeat = _runtime_context(args)
    model = TravelAgencyModel(architecture=args.architecture)
    scenario = _fault_scenarios()[args.scenario](model.hierarchical_model)
    if args.journal is not None:
        if args.user_class == "both":
            raise ValidationError(
                "--journal records a single campaign; pick --user-class A "
                "or B (run two journaled campaigns for both classes)"
            )
        results = [run_campaign(
            model.hierarchical_model,
            _selected_classes(args.user_class)[0],
            scenario,
            horizon=args.horizon,
            replications=args.replications,
            seed=args.seed,
            workers=args.workers,
            cancellation=cancellation,
            heartbeat=heartbeat,
            journal=args.journal,
            journal_meta={
                "cli": "inject",
                "architecture": args.architecture,
                "scenario": args.scenario,
                "user_class": args.user_class,
            },
        )]
    else:
        results = run_campaigns(
            model.hierarchical_model,
            _selected_classes(args.user_class),
            [scenario],
            horizon=args.horizon,
            replications=args.replications,
            seed=args.seed,
            workers=args.workers,
            cancellation=cancellation,
            heartbeat=heartbeat,
        )
    text, calibrated = campaign_text(
        results, args.scenario, args.horizon, args.replications, args.seed
    )
    print(text)
    if calibrated is not None:
        return 0 if calibrated else 1
    return 0


def _cmd_resume(args) -> int:
    from .errors import ResumeError
    from .resilience import resume_campaign
    from .runtime import read_journal
    from .ta import TravelAgencyModel
    from .workloads import campaign_text

    cancellation, heartbeat = _runtime_context(args)
    records = read_journal(args.journal)
    start = next(
        (r for r in records if r.get("kind") == "campaign_start"), None
    )
    if start is None:
        raise ResumeError(
            f"journal {args.journal!r} holds no campaign_start record; "
            "was the run interrupted before its first durable write?"
        )
    meta = start.get("meta") or {}
    if meta.get("cli") != "inject":
        raise ResumeError(
            f"journal {args.journal!r} was not written by `repro inject "
            "--journal`; resume it with repro.resilience.resume_campaign()"
        )
    model = TravelAgencyModel(architecture=meta["architecture"])
    scenario = _fault_scenarios()[meta["scenario"]](model.hierarchical_model)
    user_class = _selected_classes(meta["user_class"])[0]
    result = resume_campaign(
        args.journal,
        model.hierarchical_model,
        user_class,
        scenario,
        cancellation=cancellation,
        heartbeat=heartbeat,
    )
    text, calibrated = campaign_text(
        [result],
        meta["scenario"],
        start["horizon"],
        start["replications"],
        start["seed"],
        title_prefix="Resumed fault-injection campaign",
    )
    print(text)
    if calibrated is not None:
        return 0 if calibrated else 1
    return 0


def _retry_sim_cell(spec):
    """One retry DES cross-validation cell (module-level: picklable)."""
    import numpy as np

    from .resilience import RetryPolicy
    from .sim import estimate_user_availability_with_retries
    from .ta import TravelAgencyModel

    architecture, class_name, max_retries, persistence, sessions, seed = spec
    model = TravelAgencyModel(architecture=architecture)
    users = next(
        u
        for u in _selected_classes("both")
        if u.name == class_name
    )
    sim = estimate_user_availability_with_retries(
        model.hierarchical_model,
        users,
        RetryPolicy(max_retries=max_retries, persistence=persistence),
        sessions,
        np.random.default_rng(seed),
    )
    return sim.served_fraction, sim.mean_attempts


def _cmd_retries(args) -> int:
    from .resilience import RetryPolicy, format_retry_table

    _check_workers(args.workers)
    _check_int_flag(args.max_retries, "max-retries", minimum=0)
    _check_int_flag(args.seed, "seed", minimum=0)
    _check_float_flag(
        args.persistence, "persistence", low=0.0, high=1.0,
        low_inclusive=True,
    )
    if args.simulate is not None:
        _check_int_flag(args.simulate, "simulate")
    policy = RetryPolicy(
        max_retries=args.max_retries, persistence=args.persistence
    )
    from .ta import TravelAgencyModel

    cancellation, _heartbeat = _runtime_context(args)
    journal = None
    if args.journal is not None:
        from .runtime import Journal

        journal = Journal(args.journal)
    model = TravelAgencyModel(architecture=args.architecture)
    classes = _selected_classes(args.user_class)

    results = [
        model.retry_adjusted_availability(users, policy) for users in classes
    ]
    print(format_retry_table(results))
    if journal is not None:
        for users, result in zip(classes, results):
            journal.append(
                "retry_result",
                user_class=users.name,
                architecture=args.architecture,
                max_retries=args.max_retries,
                persistence=args.persistence,
                base_availability=result.availability,
                adjusted_availability=result.adjusted_availability,
            )

    if args.sweep:
        print()
        counts = (1, 2, 3, 4, 5, 10)
        header = ["N"]
        columns = []
        for users in classes:
            header += [f"{users.name} (eq. 10)", f"{users.name} (retries)"]
            sweep = model.reservation_sweep_with_retries(users, counts, policy)
            columns.append({n: (base, adj) for n, base, adj in sweep})
        rows = []
        for n in counts:
            row = [n]
            for column in columns:
                base, adjusted = column[n]
                row += [f"{base:.5f}", f"{adjusted:.7f}"]
            rows.append(row)
        print(format_table(header, rows, title="Table 8 with retries"))

    if args.simulate is not None:
        import numpy as np

        from .sim import estimate_user_availability_with_retries

        print()
        if args.workers > 1:
            # Parallelize the per-class simulations through the engine;
            # each cell re-seeds its own rng, so outputs are
            # bit-identical to the serial loop below.
            from .engine import EvaluationEngine

            specs = [
                (args.architecture, users.name, args.max_retries,
                 args.persistence, args.simulate, args.seed)
                for users in classes
            ]
            sims = EvaluationEngine(
                workers=args.workers, cancellation=cancellation
            ).map(_retry_sim_cell, specs, phase="retry DES").outputs
        else:
            sims = []
            for users in classes:
                sim = estimate_user_availability_with_retries(
                    model.hierarchical_model,
                    users,
                    policy,
                    args.simulate,
                    np.random.default_rng(args.seed),
                    cancellation=cancellation,
                )
                sims.append((sim.served_fraction, sim.mean_attempts))
        rows = []
        for users, analytic, (served, attempts) in zip(
            classes, results, sims
        ):
            if journal is not None:
                journal.append(
                    "retry_simulation",
                    user_class=users.name,
                    sessions=args.simulate,
                    seed=args.seed,
                    served_fraction=served,
                    mean_attempts=attempts,
                )
            rows.append([
                users.name,
                f"{analytic.adjusted_availability:.6f}",
                f"{served:.6f}",
                f"{attempts:.4f}",
            ])
        print(format_table(
            ["class", "closed form", "simulated", "attempts"],
            rows,
            title=f"DES cross-validation ({args.simulate} sessions)",
        ))
    if journal is not None:
        journal.close()
    return 0


def _sweep_grid(args, engine, journal=None):
    """The Fig. 11/12 grid for the parsed CLI flags (see repro.workloads)."""
    from .workloads import run_fig_sweep

    return run_fig_sweep(
        args.figure,
        args.arrival_rate,
        args.servers_max,
        engine=engine,
        journal=journal,
    )


def _sweep_series_text(args, grid) -> str:
    """The stdout rendering of one Fig. 11/12 grid (sweep and chaos)."""
    from .workloads import fig_sweep_text

    return fig_sweep_text(args.figure, args.arrival_rate, args.servers_max, grid)


def _cmd_sweep(args) -> int:
    import time

    from .engine import EvaluationEngine

    _check_workers(args.workers)
    _check_int_flag(args.servers_max, "servers-max")
    _check_float_flag(args.arrival_rate, "arrival-rate")
    cancellation, heartbeat = _runtime_context(args)
    engine = EvaluationEngine(
        workers=args.workers,
        cache_dir=args.cache_dir,
        cancellation=cancellation,
        heartbeat=heartbeat,
    )
    started = time.monotonic()
    grid = _sweep_grid(args, engine, journal=args.journal)
    elapsed = time.monotonic() - started
    print(_sweep_series_text(args, grid))
    cells = len(SWEEP_FAILURE_RATES) * args.servers_max
    stats = engine.cache.stats
    rate = f"{stats.hit_rate:.1%}" if stats.lookups else "n/a"
    print(
        f"engine: workers={args.workers}, {cells} cells in "
        f"{elapsed:.2f}s; cache hits={stats.hits} misses={stats.misses} "
        f"hit-rate={rate}",
        file=sys.stderr,
    )
    return 0


def _cmd_chaos(args) -> int:
    import shutil
    import tempfile
    from pathlib import Path

    from .chaos import (
        corrupt_cache_entries,
        plan_transient_faults,
        plan_worker_kills,
        truncate_journal_tail,
    )
    from .engine import EvaluationEngine, TaskRetryPolicy
    from .errors import ValidationError
    from .obs import MetricsRegistry
    from .obs.context import active_metrics
    from .runtime import read_journal

    _check_workers(args.workers)
    _check_int_flag(args.servers_max, "servers-max")
    _check_float_flag(args.arrival_rate, "arrival-rate")
    _check_int_flag(args.faults, "faults")
    _check_int_flag(args.seed, "seed", minimum=0)
    if args.injector == "kill-worker" and args.workers < 2:
        raise ValidationError(
            "--injector kill-worker terminates pool workers; it needs "
            f"--workers >= 2, got {args.workers}"
        )

    # Counters land in the ambient --metrics registry when one is
    # active, so the recovery evidence survives in the artifact.
    registry = active_metrics()
    if registry is None:
        registry = MetricsRegistry()

    def engine_for(**extra):
        return EvaluationEngine(
            workers=args.workers, metrics=registry, **extra
        )

    n_tasks = len(SWEEP_FAILURE_RATES) * args.servers_max
    reference = _sweep_series_text(args, _sweep_grid(args, engine=None))
    workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    evidence = ""
    try:
        if args.injector == "kill-worker":
            plan = plan_worker_kills(
                n_tasks, args.seed, args.faults, str(workdir / "state")
            )
            disturbed = _sweep_series_text(
                args, _sweep_grid(args, engine_for(chaos=plan))
            )
            fired = plan.fired()
            respawns = registry.value("engine_worker_respawns")
            recovered = fired >= 1 and respawns >= 1
            evidence = (
                f"killed {fired} worker(s) at task indices "
                f"{plan.kill_tasks}; {respawns:g} pool respawn(s)"
            )
        elif args.injector == "transient":
            plan = plan_transient_faults(
                n_tasks, args.seed, args.faults, str(workdir / "state")
            )
            disturbed = _sweep_series_text(
                args,
                _sweep_grid(
                    args, engine_for(chaos=plan, retry=TaskRetryPolicy())
                ),
            )
            fired = plan.fired()
            retries = registry.value("engine_task_retries")
            recovered = fired >= 1 and retries >= 1
            evidence = (
                f"injected {fired} transient fault(s) at task indices "
                f"{plan.transient_tasks}; {retries:g} task retry(ies)"
            )
        elif args.injector == "corrupt-cache":
            cache_dir = workdir / "cache"
            # Cold run seeds the on-disk cache, then damage it and make
            # a fresh engine read through the corruption.
            _sweep_grid(args, engine_for(cache_dir=str(cache_dir)))
            corrupted = corrupt_cache_entries(
                cache_dir, args.seed, args.faults
            )
            disturbed = _sweep_series_text(
                args, _sweep_grid(args, engine_for(cache_dir=str(cache_dir)))
            )
            corruptions = registry.value("engine_cache_corruptions")
            quarantined = len(list((cache_dir / "quarantine").glob("*.pkl")))
            recovered = corruptions >= len(corrupted) >= 1
            evidence = (
                f"corrupted {len(corrupted)} cache entry(ies); "
                f"{corruptions:g} detected, {quarantined} quarantined, "
                "recomputed"
            )
        else:  # truncate-journal
            journal_path = workdir / "sweep.jsonl"
            _sweep_grid(args, engine_for(), journal=str(journal_path))
            # +1: the tear must reach past the batch_end marker to cost
            # actual task results.
            truncate_journal_tail(
                journal_path, args.seed, records=args.faults + 1
            )
            surviving = sum(
                1 for r in read_journal(journal_path, missing_ok=True)
                if r.get("kind") == "task_result"
            )
            disturbed = _sweep_series_text(
                args,
                _sweep_grid(args, engine_for(), journal=str(journal_path)),
            )
            recomputed = n_tasks - surviving
            recovered = surviving >= 1 and recomputed >= 1
            evidence = (
                f"tore {recomputed} record(s) off the journal; resume "
                f"restored {surviving}, recomputed {recomputed}"
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    identical = disturbed == reference
    print(disturbed)
    print(
        f"chaos: injector={args.injector}, seed={args.seed}; {evidence}; "
        f"output {'IDENTICAL' if identical else 'DIFFERS'} vs "
        "undisturbed serial run",
        file=sys.stderr,
    )
    return 0 if identical and recovered else 1


def _cmd_policies(args) -> int:
    import time

    from .engine import EvaluationEngine
    from .workloads import (
        default_client_policies,
        default_farm_scenarios,
        policy_comparison_text,
        run_policy_comparison,
    )

    _check_workers(args.workers)
    _check_float_flag(args.arrival_rate, "arrival-rate")
    _check_float_flag(args.service_rate, "service-rate")
    _check_float_flag(args.timeout, "timeout")
    _check_float_flag(args.hedge_delay, "hedge-delay")
    _check_float_flag(
        args.persistence, "persistence", low=0.0, high=1.0,
        low_inclusive=True,
    )
    _check_float_flag(args.breaker_reset, "breaker-reset")
    _check_int_flag(args.servers, "servers")
    _check_int_flag(args.buffer, "buffer")
    _check_int_flag(args.max_retries, "max-retries", minimum=0)
    _check_int_flag(args.breaker_threshold, "breaker-threshold")
    cancellation, heartbeat = _runtime_context(args)
    engine = EvaluationEngine(
        workers=args.workers,
        cache_dir=args.cache_dir,
        cancellation=cancellation,
        heartbeat=heartbeat,
    )
    policies = default_client_policies(
        max_retries=args.max_retries,
        persistence=args.persistence,
        breaker_threshold=args.breaker_threshold,
        breaker_reset=args.breaker_reset,
        timeout=args.timeout,
        hedge_delay=args.hedge_delay,
    )
    scenarios = default_farm_scenarios(args.servers)
    started = time.monotonic()
    report = run_policy_comparison(
        arrival_rate=args.arrival_rate,
        service_rate=args.service_rate,
        servers=args.servers,
        buffer=args.buffer,
        engine=engine,
        policies=policies,
        scenarios=scenarios,
    )
    elapsed = time.monotonic() - started
    print(policy_comparison_text(report))
    stats = engine.cache.stats
    rate = f"{stats.hit_rate:.1%}" if stats.lookups else "n/a"
    print(
        f"engine: workers={args.workers}, {len(report.cells)} cells in "
        f"{elapsed:.2f}s; cache hits={stats.hits} misses={stats.misses} "
        f"hit-rate={rate}",
        file=sys.stderr,
    )
    return 0


def _cmd_cloud(args) -> int:
    import time

    from .engine import EvaluationEngine
    from .workloads import cloud_comparison_text, run_cloud_comparison

    _check_workers(args.workers)
    _check_float_flag(args.arrival_rate, "arrival-rate")
    _check_float_flag(args.service_rate, "service-rate")
    _check_float_flag(args.zone_availability, "zone-availability", high=1.0)
    cancellation, heartbeat = _runtime_context(args)
    engine = EvaluationEngine(
        workers=args.workers,
        cache_dir=args.cache_dir,
        cancellation=cancellation,
        heartbeat=heartbeat,
    )
    started = time.monotonic()
    report = run_cloud_comparison(
        arrival_rate=args.arrival_rate,
        service_rate=args.service_rate,
        zone_availability=args.zone_availability,
        engine=engine,
    )
    elapsed = time.monotonic() - started
    print(cloud_comparison_text(
        report, args.arrival_rate, args.zone_availability
    ))
    stats = engine.cache.stats
    rate = f"{stats.hit_rate:.1%}" if stats.lookups else "n/a"
    print(
        f"engine: workers={args.workers}, {len(report.cells)} cells in "
        f"{elapsed:.2f}s; cache hits={stats.hits} misses={stats.misses} "
        f"hit-rate={rate}",
        file=sys.stderr,
    )
    return 0


def _cmd_stats(args) -> int:
    import json

    from .obs import MetricsRegistry, merge_registries

    merged = merge_registries(
        MetricsRegistry.load(path) for path in args.files
    )
    if args.format == "openmetrics":
        print(merged.render_openmetrics())
        return 0
    if args.format == "json":
        print(json.dumps(merged.to_dict(), indent=2))
        return 0
    rows = []
    for metric in merged:
        labels = ",".join(f"{k}={v}" for k, v in metric.labels)
        if metric.kind == "histogram":
            mean = f"{metric.mean:.6g}" if metric.count else "n/a"
            value = f"count={metric.count} sum={metric.sum:.6g} mean={mean}"
        else:
            value = f"{metric.value:g}"
        rows.append([metric.name, labels, metric.kind, value])
    print(format_table(
        ["metric", "labels", "kind", "value"],
        rows,
        title=(
            f"{len(args.files)} metrics file(s), {len(merged)} series"
        ),
    ))
    return 0


def _cmd_slo(args) -> int:
    import numpy as np

    from .obs import PoissonSessionSampler, SLOMonitor, format_slo_report
    from .resilience import run_campaign
    from .ta import TravelAgencyModel

    _check_float_flag(args.session_rate, "session-rate")
    _check_float_flag(args.horizon, "horizon")
    if args.objective is not None:
        _check_float_flag(
            args.objective, "objective", low=0.0, high=1.0,
            high_inclusive=False,
        )
    _check_float_flag(args.short_window, "short-window")
    _check_float_flag(args.long_window, "long-window")
    _check_float_flag(args.burn_threshold, "burn-threshold")
    _check_int_flag(args.replications, "replications")
    _check_int_flag(args.seed, "seed", minimum=0)
    model = TravelAgencyModel(architecture=args.architecture)
    scenario = _fault_scenarios()[args.scenario](model.hierarchical_model)

    summaries = []
    alert_log = []
    for user_class in _selected_classes(args.user_class):
        objective = (
            args.objective
            if args.objective is not None
            else model.hierarchical_model.user_availability(
                user_class
            ).availability
        )
        monitor = SLOMonitor(
            objective=objective,
            windows=(args.short_window, args.long_window),
            burn_threshold=args.burn_threshold,
            name=user_class.name,
        )
        sampler = PoissonSessionSampler(
            monitor,
            rate=args.session_rate,
            rng=np.random.default_rng(args.seed),
        )
        run_campaign(
            model.hierarchical_model,
            user_class,
            scenario,
            horizon=args.horizon,
            replications=args.replications,
            seed=args.seed,
            observer=sampler,
        )
        summaries.append(monitor.summary())
        alert_log.extend((monitor.name, alert) for alert in monitor.alerts)

    total = args.replications * args.horizon
    print(format_slo_report(
        summaries,
        alerts=sorted(alert_log, key=lambda pair: pair[1].time),
        title=(
            f"SLO report — scenario {args.scenario!r}, {total:g} h "
            f"simulated, ~{args.session_rate:g} sessions/h, "
            f"windows {args.short_window:g}/{args.long_window:g} h, "
            f"burn threshold {args.burn_threshold:g}x"
        ),
    ))
    return 0


def _cmd_diff(args) -> int:
    import json

    from .errors import ObservabilityError
    from .obs import (
        MetricsRegistry,
        compare_bench_records,
        diff_registries,
        format_bench_comparison,
        format_diff_table,
    )
    from .obs.metrics import SNAPSHOT_SCHEMA

    def load(path):
        try:
            with open(path) as handle:
                return json.load(handle)
        except (OSError, ValueError) as exc:
            raise ObservabilityError(f"cannot read {path!r}: {exc}")

    if args.threshold is not None:
        # Guard thresholds may legitimately be zero or negative (a
        # "must be at least this much faster" bench), so only reject
        # non-finite values here.
        _check_float_flag(args.threshold, "threshold", low=None)
    old, new = load(args.old), load(args.new)
    bench_sides = [
        isinstance(doc, dict) and "benchmark" in doc for doc in (old, new)
    ]
    if all(bench_sides):
        comparison = compare_bench_records(
            old, new, threshold=args.threshold
        )
        print(format_bench_comparison(comparison))
        return 0 if comparison.ok else 1
    if any(bench_sides):
        raise ObservabilityError(
            "cannot diff a bench record against a metrics snapshot: "
            f"{args.old!r} and {args.new!r} are different kinds of artifact"
        )
    diff = diff_registries(
        MetricsRegistry.from_dict(old), MetricsRegistry.from_dict(new)
    )
    print(format_diff_table(diff, include_unchanged=args.include_unchanged))
    return 0


def _cmd_trace_report(args) -> int:
    from .obs.analysis import TraceAnalysis, format_trace_report

    _check_int_flag(args.top, "top")
    analysis = TraceAnalysis.from_file(args.trace_file)
    print(format_trace_report(analysis, top=args.top))
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .errors import ValidationError
    from .server import ReproServer

    _check_int_flag(args.port, "port", minimum=0, maximum=65535)
    _check_int_flag(args.workers, "workers")
    _check_int_flag(args.queue_limit, "queue-limit")
    _check_float_flag(
        args.slo_objective, "slo-objective", low=0.0, high=1.0,
        high_inclusive=False,
    )
    if args.queue_limit < args.workers:
        raise ValidationError(
            "--queue-limit is the admission capacity K (running + queued "
            f"jobs) and must be >= --workers, got {args.queue_limit} < "
            f"{args.workers}"
        )
    server = ReproServer(
        host=args.host,
        port=args.port,
        slots=args.workers,
        queue_limit=args.queue_limit,
        journal=args.journal,
        slo_objective=args.slo_objective,
    )

    async def _run_server() -> int:
        import signal

        await server.start()
        print(
            f"serving on http://{server.host}:{server.port} "
            f"(c={args.workers} slots, K={args.queue_limit} capacity)",
            file=sys.stderr,
        )
        if args.port_file is not None:
            with open(args.port_file, "w") as handle:
                handle.write(f"{server.port}\n")
        serving = asyncio.ensure_future(server.serve_forever())
        loop = asyncio.get_running_loop()
        try:
            # SIGINT arrives as KeyboardInterrupt; SIGTERM needs an
            # explicit handler for graceful shutdown under supervisors
            # (and shells that start background jobs with SIGINT
            # ignored).
            loop.add_signal_handler(signal.SIGTERM, serving.cancel)
        except (NotImplementedError, RuntimeError):
            pass
        try:
            await serving
        except asyncio.CancelledError:
            pass
        finally:
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.remove_signal_handler(signal.SIGTERM)
            await server.stop()
        return 0

    try:
        return asyncio.run(_run_server())
    except KeyboardInterrupt:
        print("interrupted; server stopped", file=sys.stderr)
        return 0


#: Subcommands `repro profile` can wrap — exactly those that take the
#: runtime/artifact flags (--metrics/--trace/--profile).
PROFILEABLE_COMMANDS = (
    "sweep", "policies", "cloud", "inject", "retries", "resume", "chaos",
)


def _cmd_profile(args) -> int:
    from .errors import ValidationError

    wrapped = list(args.wrapped)
    # argparse.REMAINDER keeps a leading "--" separator if one was used
    # to fence off the wrapped command's flags.
    if wrapped and wrapped[0] == "--":
        wrapped = wrapped[1:]
    if not wrapped:
        raise ValidationError(
            "profile needs a subcommand to wrap, e.g. "
            "`repro profile sweep --figure 11`"
        )
    command = wrapped[0]
    if command not in PROFILEABLE_COMMANDS:
        raise ValidationError(
            f"cannot profile {command!r}; profileable subcommands are: "
            + ", ".join(PROFILEABLE_COMMANDS)
        )
    # Inject --profile right after the subcommand so an explicit
    # --profile in the wrapped flags still wins (argparse last-wins).
    argv = [command, "--profile", args.out] + wrapped[1:]
    if args.debug:
        argv.insert(0, "--debug")
    return main(argv)


def _setup_instrumentation(args):
    """Activate ambient metrics/tracing/perf per --metrics/--trace/--profile.

    Returns a finalizer that deactivates and writes the requested files.
    ``main`` runs it in a ``finally`` so a deadline abort (exit 2) still
    lands the partial metrics/trace/profile on disk — the observability
    analogue of the journal's crash-consistency contract.
    """
    metrics_path = getattr(args, "metrics", None)
    trace_path = getattr(args, "trace", None)
    profile_dir = getattr(args, "profile", None)
    if metrics_path is None and trace_path is None and profile_dir is None:
        return lambda: None

    from .obs import (
        Instrumentation,
        MetricsRegistry,
        PerfRecorder,
        Tracer,
        activate,
        deactivate,
    )

    registry = MetricsRegistry() if metrics_path is not None else None
    tracer = Tracer() if trace_path is not None else None
    recorder = PerfRecorder() if profile_dir is not None else None
    activate(Instrumentation(metrics=registry, tracer=tracer, perf=recorder))

    def finalize() -> None:
        deactivate()
        if registry is not None:
            registry.save(metrics_path)
        if tracer is not None:
            tracer.export(trace_path)
        if recorder is not None:
            recorder.write_artifacts(profile_dir)

    return finalize


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "ta": _cmd_ta,
        "web": _cmd_web,
        "evaluate": _cmd_evaluate,
        "inject": _cmd_inject,
        "retries": _cmd_retries,
        "resume": _cmd_resume,
        "sweep": _cmd_sweep,
        "policies": _cmd_policies,
        "cloud": _cmd_cloud,
        "chaos": _cmd_chaos,
        "stats": _cmd_stats,
        "slo": _cmd_slo,
        "diff": _cmd_diff,
        "trace-report": _cmd_trace_report,
        "serve": _cmd_serve,
        "profile": _cmd_profile,
    }
    from .errors import ReproError

    finalize = _setup_instrumentation(args)
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        if args.debug:
            raise
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        finalize()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
