"""Streaming SLO monitoring of user-perceived availability.

The paper's headline measure — the eq.-(10) user-perceived availability
per user class — is, operationally, a *service-level objective*: a
target fraction of user sessions that must succeed.  This module watches
that objective **online**, as a discrete-event simulation or a
fault-injection campaign streams its timeline, instead of judging one
number after the run:

* :class:`SLOMonitor` consumes two kinds of evidence on the simulated
  timeline — *intervals* (a span of time with a known conditional
  session-success probability, as produced by the end-to-end simulator)
  and *session outcomes* (individual served/failed sessions, as produced
  by the session simulators) — and maintains

  - the cumulative time-weighted availability and its session-based
    Wilson confidence interval (reusing
    :func:`repro.measurement.estimators.availability_confidence_interval`),
  - one :class:`BurnRateWindow` per configured window length: a sliding
    window over the timeline whose **burn rate** is the observed
    unavailability divided by the objective's error budget
    ``1 - objective`` (burn rate 1 = exactly spending the budget),
  - **error-budget accounting**: the fraction of the budget the run has
    consumed so far, pro-rated to the observed timeline,
  - an alert log: a :class:`SLOAlert` *fire* event when **every**
    window's burn rate reaches the threshold (the long window proves the
    budget spend is real, the short window proves it is current), and a
    *clear* event as soon as the **shortest** window recovers — the
    standard multi-window burn-rate policy, which both catches an
    injected outage quickly and stops alerting soon after restore.

* :class:`PoissonSessionSampler` adapts an interval stream into session
  outcomes: sessions arrive as a Poisson process at a configured rate
  and succeed with the interval's conditional probability, which gives
  the monitor a statistically honest trial count for its confidence
  interval without simulating individual sessions in the kernel.

Monitors plug into :func:`repro.sim.endtoend.simulate_user_availability_over_time`
(and, through it, :func:`repro.resilience.campaign.run_campaign`) via the
``observer`` hook: any object with ``interval(start, end, availability)``
and optionally ``fault(time, event)`` methods.  Both classes here
implement that protocol.  The hook costs one ``is not None`` check per
simulated transition when unused, and ``benchmarks/bench_slo_overhead.py``
guards the *enabled* monitor's overhead on the DES hot path at <= 3%.

Everything is pure Python over the simulated clock — no wall-clock,
threads, or I/O — so monitored runs stay deterministic and the monitor
is equally usable against recorded timelines.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

from .._validation import check_positive
from ..errors import ObservabilityError

__all__ = [
    "SLOAlert",
    "BurnRateWindow",
    "SLOMonitor",
    "SLOSummary",
    "PoissonSessionSampler",
    "format_slo_report",
]


@dataclass(frozen=True)
class SLOAlert:
    """One alert transition of an :class:`SLOMonitor`.

    Attributes
    ----------
    time:
        Simulated time of the transition.
    kind:
        ``"fire"`` when every window's burn rate reached the threshold,
        ``"clear"`` when the shortest window recovered below it.
    burn_rates:
        Burn rate of each window at the transition, in the monitor's
        window order (shortest first).
    threshold:
        The burn-rate threshold the transition was judged against.
    """

    time: float
    kind: str
    burn_rates: Tuple[float, ...]
    threshold: float


class BurnRateWindow:
    """A sliding window of availability evidence over simulated time.

    Evidence arrives as ``(time, good, total)`` contributions — for an
    interval observation ``good = availability * dt`` and ``total = dt``;
    for session outcomes ``good = successes`` and ``total = trials``.  A
    contribution is evicted once the window has slid ``length`` past its
    timestamp, so the window's availability is the ratio of the evidence
    recorded in the trailing ``length`` of timeline.

    Updates are O(1) amortized: running sums plus a deque of
    contributions evicted from the front.
    """

    __slots__ = ("length", "_entries", "_good", "_total")

    def __init__(self, length: float):
        self.length = check_positive(length, "window length")
        self._entries: Deque[Tuple[float, float, float]] = deque()
        self._good = 0.0
        self._total = 0.0

    def add(self, time: float, good: float, total: float) -> None:
        """Record a contribution at *time* and evict what slid out."""
        self._entries.append((time, good, total))
        self._good += good
        self._total += total
        self.advance(time)

    def advance(self, time: float) -> None:
        """Evict contributions older than ``time - length``."""
        horizon = time - self.length
        entries = self._entries
        while entries and entries[0][0] <= horizon:
            _, good, total = entries.popleft()
            self._good -= good
            self._total -= total

    @property
    def total(self) -> float:
        """Evidence mass currently inside the window."""
        return self._total

    def availability(self) -> float:
        """Availability over the window (1.0 while the window is empty)."""
        if self._total <= 0.0:
            return 1.0
        # Clamp: float eviction drift can push the ratio an ulp outside
        # [0, 1] after millions of updates.
        return min(1.0, max(0.0, self._good / self._total))

    def burn_rate(self, objective: float) -> float:
        """Observed unavailability over the budget ``1 - objective``.

        1.0 means the window is spending its error budget exactly as
        fast as the objective allows; an outage drives it far above.
        """
        budget = 1.0 - objective
        if budget <= 0.0:
            return 0.0 if self.availability() >= 1.0 else float("inf")
        return (1.0 - self.availability()) / budget


@dataclass(frozen=True)
class SLOSummary:
    """Point-in-time summary of an :class:`SLOMonitor`.

    Attributes
    ----------
    name:
        The monitor's label (typically the user-class name).
    objective:
        The availability objective being watched.
    elapsed:
        Timeline observed so far (interval evidence only).
    availability:
        Cumulative time-weighted availability over the intervals, or the
        session success fraction when only sessions were recorded
        (``nan`` before any evidence).
    sessions / served:
        Session-outcome totals (0 when only intervals were recorded).
    confidence_interval:
        Wilson interval on the session outcomes, or ``None`` without
        sessions.
    budget_consumed:
        Error budget consumed, as a fraction of the budget the objective
        allows for the observed timeline (1.0 = the whole pro-rated
        budget; >1 = the objective is being missed).
    burn_rates:
        Current burn rate per window, shortest window first.
    alerts_fired:
        Number of fire events so far.
    alert_active:
        Whether an alert is currently firing.
    """

    name: str
    objective: float
    elapsed: float
    availability: float
    sessions: int
    served: int
    confidence_interval: Optional[Tuple[float, float]]
    budget_consumed: float
    burn_rates: Tuple[float, ...]
    alerts_fired: int
    alert_active: bool


class SLOMonitor:
    """Streaming monitor of one availability objective.

    Parameters
    ----------
    objective:
        The availability target in ``(0, 1)`` — typically the analytic
        eq.-(10) value of the user class being watched, so burn rate 1
        means "failing exactly as often as the model predicts".
    windows:
        Sliding-window lengths on the simulated clock, any order; they
        are kept sorted ascending.  The classic pairing is a short
        window (alert currency) plus a long one (budget significance).
    burn_threshold:
        Burn rate at which every window must arrive for an alert to
        fire; the alert clears when the shortest window drops back
        below it.
    name:
        Label used in summaries and reports.
    resolution:
        Evaluation granularity on the simulated clock, defaulting to a
        1/16 of the shortest window.  The end-to-end simulator emits one
        ``interval()`` per resource transition — far finer than any
        alerting window can resolve — so the monitor *coalesces*:
        ``interval()`` only accumulates pending evidence (a few float
        operations, the property ``bench_slo_overhead.py`` guards), and
        the windows and alert logic advance once per resolution step.
        Burn rates and alert timestamps are therefore quantized to the
        resolution; every accessor drains pending evidence first, so
        cumulative numbers (availability, budget, summary) are always
        exact regardless of resolution.

    Examples
    --------
    >>> monitor = SLOMonitor(objective=0.99, windows=(10.0, 100.0),
    ...                      burn_threshold=5.0)
    >>> for t in range(200):          # healthy: availability 1.0
    ...     monitor.interval(float(t), float(t + 1), 1.0)
    >>> for t in range(200, 240):     # a 40-time-unit total outage
    ...     monitor.interval(float(t), float(t + 1), 0.0)
    >>> [a.kind for a in monitor.alerts]
    ['fire']
    >>> for t in range(240, 400):     # restored
    ...     monitor.interval(float(t), float(t + 1), 1.0)
    >>> [a.kind for a in monitor.alerts]
    ['fire', 'clear']
    """

    def __init__(
        self,
        objective: float,
        windows: Sequence[float] = (50.0, 500.0),
        burn_threshold: float = 5.0,
        name: str = "",
        resolution: Optional[float] = None,
    ):
        if not 0.0 < objective < 1.0:
            raise ObservabilityError(
                f"SLO objective must be in (0, 1), got {objective!r} — an "
                "objective of exactly 1 leaves no error budget to burn"
            )
        if not windows:
            raise ObservabilityError(
                "SLOMonitor needs at least one window length"
            )
        check_positive(burn_threshold, "burn_threshold")
        self.objective = float(objective)
        self.burn_threshold = float(burn_threshold)
        self.name = name
        self.windows = tuple(
            BurnRateWindow(length) for length in sorted(set(windows))
        )
        if resolution is None:
            resolution = self.windows[0].length / 16.0
        self.resolution = check_positive(resolution, "resolution")
        self.alerts: List[SLOAlert] = []
        self.alert_active = False
        self._time = 0.0
        self._up_time = 0.0
        self._sessions = 0
        self._served = 0
        self._fault_times: List[Tuple[float, str]] = []
        # Coalescing state: evidence accumulated since the last flush.
        self._pending_good = 0.0
        self._pending_dt = 0.0
        self._last_end = 0.0
        self._next_flush = float("-inf")

    # -- observer protocol (sim.endtoend / campaign hook) ---------------
    def interval(self, start: float, end: float, availability: float) -> None:
        """Record a timeline interval with conditional availability.

        The hot path: called once per simulated transition, so it only
        accumulates; windows and alerting advance in :meth:`_flush`
        once per resolution step.
        """
        dt = end - start
        if dt <= 0.0:
            return
        self._pending_good += availability * dt
        self._pending_dt += dt
        self._last_end = end
        if end >= self._next_flush:
            self._flush(end)

    def _flush(self, time: float) -> None:
        """Fold pending evidence into the windows and evaluate alerts."""
        dt = self._pending_dt
        if dt > 0.0:
            good = self._pending_good
            self._pending_good = 0.0
            self._pending_dt = 0.0
            self._time += dt
            self._up_time += good
            for window in self.windows:
                window.add(time, good, dt)
            self._evaluate(time)
        self._next_flush = time + self.resolution

    def _drain(self) -> None:
        """Make every cumulative accessor exact despite coalescing."""
        if self._pending_dt > 0.0:
            self._flush(self._last_end)

    def fault(self, time: float, event: object) -> None:
        """Note an injected fault/restore event (annotation only)."""
        self._fault_times.append((time, repr(event)))

    # -- session evidence ------------------------------------------------
    def session(self, time: float, success: bool) -> None:
        """Record one session outcome at *time*."""
        self.sessions_at(time, int(bool(success)), 1)

    def sessions_at(self, time: float, successes: int, trials: int) -> None:
        """Record a batch of session outcomes at one timestamp."""
        if trials < 0 or successes < 0 or successes > trials:
            raise ObservabilityError(
                f"session batch needs 0 <= successes <= trials, got "
                f"{successes}/{trials}"
            )
        if trials == 0:
            return
        self._drain()
        self._sessions += trials
        self._served += successes
        for window in self.windows:
            window.add(time, float(successes), float(trials))
        self._evaluate(time)

    # -- alert evaluation ------------------------------------------------
    def _evaluate(self, time: float) -> None:
        rates = self.burn_rates()
        if not self.alert_active:
            if all(rate >= self.burn_threshold for rate in rates):
                self.alert_active = True
                self.alerts.append(SLOAlert(
                    time=time, kind="fire", burn_rates=rates,
                    threshold=self.burn_threshold,
                ))
        elif rates[0] < self.burn_threshold:
            self.alert_active = False
            self.alerts.append(SLOAlert(
                time=time, kind="clear", burn_rates=rates,
                threshold=self.burn_threshold,
            ))

    # -- accessors -------------------------------------------------------
    @property
    def elapsed(self) -> float:
        """Timeline covered by interval evidence so far."""
        self._drain()
        return self._time

    @property
    def sessions(self) -> int:
        """Session outcomes recorded so far."""
        return self._sessions

    @property
    def served(self) -> int:
        """Successful sessions recorded so far."""
        return self._served

    def availability(self) -> float:
        """Cumulative availability: time-weighted when intervals were
        recorded, else the session success fraction, ``nan`` before any
        evidence."""
        self._drain()
        if self._time > 0.0:
            return self._up_time / self._time
        if self._sessions:
            return self._served / self._sessions
        return float("nan")

    def burn_rates(self) -> Tuple[float, ...]:
        """Current burn rate of each window, shortest first."""
        self._drain()
        return tuple(
            window.burn_rate(self.objective) for window in self.windows
        )

    def budget_consumed(self) -> float:
        """Error budget consumed, pro-rated to the observed timeline.

        1.0 means the run has spent exactly the downtime the objective
        allows for the time observed so far; values above 1 mean the
        objective is currently being missed.
        """
        availability = self.availability()
        if availability != availability:  # NaN: no evidence yet
            return 0.0
        return (1.0 - availability) / (1.0 - self.objective)

    def confidence_interval(
        self, confidence: float = 0.95
    ) -> Optional[Tuple[float, float]]:
        """Wilson interval on the recorded session outcomes.

        ``None`` when no sessions were recorded — interval evidence
        carries no independent trial count to build an interval from.
        """
        if not self._sessions:
            return None
        from ..measurement.estimators import availability_confidence_interval

        return availability_confidence_interval(
            self._served, self._sessions, confidence
        )

    def summary(self) -> SLOSummary:
        """The current :class:`SLOSummary`."""
        return SLOSummary(
            name=self.name,
            objective=self.objective,
            elapsed=self._time,
            availability=self.availability(),
            sessions=self._sessions,
            served=self._served,
            confidence_interval=self.confidence_interval(),
            budget_consumed=self.budget_consumed(),
            burn_rates=self.burn_rates(),
            alerts_fired=sum(1 for a in self.alerts if a.kind == "fire"),
            alert_active=self.alert_active,
        )


class PoissonSessionSampler:
    """Adapts an interval stream into session outcomes for a monitor.

    Sessions arrive as a Poisson process at *rate* per unit of simulated
    time; each session drawn inside an interval succeeds with the
    interval's conditional availability.  Both the interval itself and
    the sampled outcomes are forwarded to the wrapped
    :class:`SLOMonitor`, so the monitor gets burn-rate evidence *and* an
    honest Bernoulli trial count for its Wilson interval from one
    stream.

    Implements the same observer protocol as the monitor, so it can be
    passed directly as the end-to-end simulator's ``observer``.
    """

    def __init__(self, monitor: SLOMonitor, rate: float, rng):
        self.monitor = monitor
        self.rate = check_positive(rate, "session rate")
        self._rng = rng

    def interval(self, start: float, end: float, availability: float) -> None:
        self.monitor.interval(start, end, availability)
        dt = end - start
        if dt <= 0.0:
            return
        trials = int(self._rng.poisson(self.rate * dt))
        if not trials:
            return
        if availability <= 0.0:
            successes = 0
        elif availability >= 1.0:
            successes = trials
        else:
            successes = int(self._rng.binomial(trials, availability))
        self.monitor.sessions_at(end, successes, trials)

    def fault(self, time: float, event: object) -> None:
        self.monitor.fault(time, event)


def format_slo_report(
    summaries: Sequence[SLOSummary],
    alerts: Sequence[Tuple[str, SLOAlert]] = (),
    title: str = "SLO report",
) -> str:
    """Render monitor summaries (and an optional alert log) as text.

    ``alerts`` pairs each alert with the name of the monitor that raised
    it, so one report can interleave several monitors' logs.
    """
    from ..reporting import format_table

    rows = []
    for s in summaries:
        if s.confidence_interval is not None:
            low, high = s.confidence_interval
            ci = f"[{low:.6f}, {high:.6f}]"
        else:
            ci = "n/a"
        observed = "n/a" if s.availability != s.availability else (
            f"{s.availability:.6f}"
        )
        rows.append([
            s.name or "-",
            f"{s.objective:.6f}",
            observed,
            f"{s.served}/{s.sessions}" if s.sessions else "n/a",
            ci,
            f"{s.budget_consumed:.2f}x",
            "/".join(f"{rate:.2f}" for rate in s.burn_rates),
            f"{s.alerts_fired}{' (active)' if s.alert_active else ''}",
        ])
    text = format_table(
        ["class", "objective", "observed", "sessions", "95% CI",
         "budget", "burn", "alerts"],
        rows,
        title=title,
    )
    if alerts:
        lines = [text, "", "alert log:"]
        for name, alert in alerts:
            rates = ", ".join(f"{rate:.2f}" for rate in alert.burn_rates)
            lines.append(
                f"  t={alert.time:10.1f}  {alert.kind.upper():5s} "
                f"{name}  burn [{rates}] vs threshold "
                f"{alert.threshold:g}"
            )
        text = "\n".join(lines)
    return text
