"""Observability: metrics, span tracing, and profiling instrumentation.

The evaluation pipeline produces one headline number (the eq.-(10)
user-perceived availability); this package makes the pipeline itself
observable — *why* is a run slow, *where* does a campaign spend its
failures — without changing a single output bit:

* :mod:`~repro.obs.metrics` — :class:`MetricsRegistry` holding
  counters, gauges, and fixed-bucket histograms; lock-free per process,
  mergeable across engine workers by name, exported as OpenMetrics text
  or JSON snapshots (rendered by ``repro stats``);
* :mod:`~repro.obs.tracing` — :class:`Tracer`/:class:`Span` with
  monotonic-clock timing, parent/child nesting, per-span attributes,
  JSONL export in Chrome trace-event format, and
  :class:`SpanContext`-based propagation across the engine's
  process-pool boundary so worker spans reattach under the submitting
  task's span;
* :mod:`~repro.obs.clock` — the one monotonic clock source shared by
  heartbeats and spans;
* :mod:`~repro.obs.context` — ambient activation with a **no-op
  default**: with nothing activated, every instrumentation site in the
  hot layers reduces to one ``is not None`` check
  (``benchmarks/bench_obs_overhead.py`` guards the disabled-mode cost
  at <= 3%);
* :mod:`~repro.obs.perf` — performance attribution: per-event-type
  kernel accounting, engine phase/idle timelines rolled into an
  :class:`AttributionReport` (compute vs serialization vs IPC vs idle
  vs cache), and a deterministic counter-triggered sampling profiler
  with collapsed-stack / speedscope flamegraph export (``repro profile``,
  ``--profile DIR``; guarded by ``benchmarks/bench_perf_attribution.py``);
* :mod:`~repro.obs.profiling` — a :mod:`cProfile` harness for hot-path
  investigations;
* :mod:`~repro.obs.slo` — the *consume* side for availability:
  :class:`SLOMonitor`, a streaming multi-window burn-rate monitor of
  the user-perceived availability SLO with error-budget accounting and
  Wilson confidence intervals (rendered by ``repro slo``);
* :mod:`~repro.obs.analysis` — trace analytics over exported Chrome
  traces (:class:`TraceAnalysis`: critical path, per-category self
  time, per-worker utilization; ``repro trace-report``) and
  histogram-aware registry diffing (:func:`diff_registries`;
  ``repro diff``);
* :mod:`~repro.obs.regression` — the noise-robust paired-ratio overhead
  statistic shared by every ``bench_*_overhead`` guard, plus
  ``BENCH_*.json`` baseline comparison.

Instrumented layers: the DES kernel (events, queue depths, per-event-type
timing), the CTMC steady-state solvers (solve wall-time, strategy
fallbacks, power iterations), the vectorized queueing kernels, the
evaluation engine (task latencies, cache hit/miss/eviction counters),
fault-injection campaigns (per-scenario failure/repair event counts),
and the runtime journal (records/fsyncs).  The CLI wires it up via
``--metrics PATH`` / ``--trace PATH`` on ``sweep``/``inject``/
``retries``/``resume`` and renders metrics files with ``repro stats``.
See ``docs/OBSERVABILITY.md`` for the full model.
"""

from .clock import monotonic, walltime
from .context import (
    Instrumentation,
    activate,
    active,
    active_metrics,
    active_perf,
    active_tracer,
    deactivate,
    instrumented,
)
from .metrics import (
    DEFAULT_DEPTH_BOUNDS,
    DEFAULT_ITERATION_BOUNDS,
    DEFAULT_TIME_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_registries,
)
from .analysis import (
    RegistryDiff,
    SeriesDiff,
    TraceAnalysis,
    diff_registries,
    format_diff_table,
    format_trace_report,
)
from .perf import (
    AttributionReport,
    BatchPerf,
    CounterProfiler,
    KernelAccounting,
    PerfRecorder,
    WorkerTimeline,
    format_attribution,
    format_kernel_accounting,
    speedscope_document,
)
from .profiling import profiled, render_profile
from .regression import (
    BenchComparison,
    compare_bench_records,
    format_bench_comparison,
    paired_ratio_overhead,
    time_variants,
)
from .slo import (
    PoissonSessionSampler,
    SLOAlert,
    SLOMonitor,
    SLOSummary,
    format_slo_report,
)
from .tracing import (
    Span,
    SpanContext,
    Tracer,
    chrome_trace_document,
    read_trace,
    write_chrome_trace,
)

__all__ = [
    "monotonic",
    "walltime",
    "Instrumentation",
    "activate",
    "active",
    "active_metrics",
    "active_perf",
    "active_tracer",
    "deactivate",
    "instrumented",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_registries",
    "DEFAULT_TIME_BOUNDS",
    "DEFAULT_DEPTH_BOUNDS",
    "DEFAULT_ITERATION_BOUNDS",
    "AttributionReport",
    "BatchPerf",
    "CounterProfiler",
    "KernelAccounting",
    "PerfRecorder",
    "WorkerTimeline",
    "format_attribution",
    "format_kernel_accounting",
    "speedscope_document",
    "profiled",
    "render_profile",
    "Span",
    "SpanContext",
    "Tracer",
    "chrome_trace_document",
    "read_trace",
    "write_chrome_trace",
    "SLOMonitor",
    "SLOAlert",
    "SLOSummary",
    "PoissonSessionSampler",
    "format_slo_report",
    "TraceAnalysis",
    "format_trace_report",
    "SeriesDiff",
    "RegistryDiff",
    "diff_registries",
    "format_diff_table",
    "BenchComparison",
    "compare_bench_records",
    "format_bench_comparison",
    "paired_ratio_overhead",
    "time_variants",
]
