"""Span-based tracing with Chrome trace-event JSONL export.

A :class:`Tracer` records :class:`Span`\\ s — named, nested, attributed
time intervals measured on the shared monotonic clock
(:mod:`repro.obs.clock`).  Finished spans are stored as Chrome
trace-event dicts (``"ph": "X"`` complete events, microsecond ``ts`` /
``dur``), so :meth:`Tracer.export` writes a JSONL file that
:func:`read_trace` validates and :func:`chrome_trace_document` wraps
into the ``{"traceEvents": [...]}`` object ``chrome://tracing`` and
Perfetto load directly.

Cross-process propagation
-------------------------
Worker processes cannot share the parent's tracer, and their monotonic
clocks have unrelated epochs.  The protocol used by the evaluation
engine:

1. the parent calls :meth:`Tracer.context` inside the submitting task's
   span and ships the resulting :class:`SpanContext` (parent span id +
   the parent trace's wall-clock anchor) to the worker;
2. the worker builds its own ``Tracer(context=ctx)`` — every worker
   root span is parented under the submitting span id;
3. the worker returns :meth:`Tracer.payload` with its results, and the
   parent calls :meth:`Tracer.absorb`, which re-bases the worker's
   timestamps onto the parent timeline using the two wall-clock anchors
   (same machine, so the anchors agree to well under a millisecond).

Span identity travels in ``args``: every event carries ``span_id`` and
``parent_id`` (pid-qualified, unique across processes), which is what
lets tests assert that worker spans reattach under their submitting
tasks.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from ..errors import ObservabilityError
from .clock import monotonic, walltime

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "read_trace",
    "chrome_trace_document",
    "write_chrome_trace",
]

PathLike = Union[str, Path]

#: Keys every exported trace event must carry (the schema tests check).
EVENT_REQUIRED_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args")


@dataclass(frozen=True)
class SpanContext:
    """What a worker needs to parent its spans under a remote span.

    Attributes
    ----------
    parent_id:
        Span id the worker's root spans attach under.
    wall_anchor:
        Wall-clock reading at the *parent* trace's timestamp origin;
        lets :meth:`Tracer.absorb` re-base worker timestamps.
    """

    parent_id: str
    wall_anchor: float

    def as_dict(self) -> Dict[str, Any]:
        return {"parent_id": self.parent_id, "wall_anchor": self.wall_anchor}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanContext":
        return cls(
            parent_id=str(data["parent_id"]),
            wall_anchor=float(data["wall_anchor"]),
        )


class Span:
    """One open span; finished spans live on as trace-event dicts.

    Obtained from :meth:`Tracer.span`; :meth:`set` attaches attributes
    that end up in the exported event's ``args``.
    """

    __slots__ = ("name", "category", "span_id", "parent_id", "_start", "attrs")

    def __init__(
        self,
        name: str,
        category: str,
        span_id: str,
        parent_id: Optional[str],
        start: float,
    ):
        self.name = name
        self.category = category
        self.span_id = span_id
        self.parent_id = parent_id
        self._start = start
        self.attrs: Dict[str, Any] = {}

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span; returns self for chaining."""
        self.attrs.update(attrs)
        return self


class Tracer:
    """Collects spans on the shared monotonic clock.

    Parameters
    ----------
    context:
        Optional :class:`SpanContext` from a submitting process; root
        spans of this tracer are parented under it, and exported
        timestamps stay re-basable onto the submitter's timeline.

    Examples
    --------
    >>> tracer = Tracer()
    >>> with tracer.span("solve", category="ctmc", states=12) as span:
    ...     _ = span.set(iterations=3)
    >>> event = tracer.events[0]
    >>> event["name"], event["ph"], event["args"]["iterations"]
    ('solve', 'X', 3)
    """

    def __init__(self, context: Optional[SpanContext] = None):
        self._origin = monotonic()
        # Wall-clock anchor of ts == 0, used only for cross-process
        # re-basing — never for durations.
        self.wall_anchor = walltime()
        self._root_parent = context.parent_id if context is not None else None
        self._pid = os.getpid()
        self._ids = itertools.count(1)
        self._stack: List[Span] = []
        self.events: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    def _now_us(self) -> float:
        return (monotonic() - self._origin) * 1e6

    @property
    def current_span(self) -> Optional[Span]:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, category: str = "", **attrs: Any) -> Iterator[Span]:
        """Open a span; it closes (and is recorded) when the block exits.

        Nested ``span()`` blocks parent under the enclosing one; initial
        *attrs* and any added via :meth:`Span.set` export as ``args``.
        """
        parent = (
            self._stack[-1].span_id if self._stack else self._root_parent
        )
        span = Span(
            name=name,
            category=category,
            span_id=f"{self._pid:x}-{next(self._ids):x}",
            parent_id=parent,
            start=self._now_us(),
        )
        span.attrs.update(attrs)
        self._stack.append(span)
        try:
            yield span
        finally:
            end = self._now_us()
            self._stack.pop()
            self.events.append(self._event(span, end))

    def _event(self, span: Span, end_us: float) -> Dict[str, Any]:
        args = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.attrs)
        return {
            "name": span.name,
            "cat": span.category or "repro",
            "ph": "X",
            "ts": round(span._start, 3),
            "dur": round(max(end_us - span._start, 0.0), 3),
            "pid": self._pid,
            "tid": threading.get_ident() % 2**31,
            "args": args,
        }

    # -- cross-process propagation --------------------------------------
    def context(self) -> SpanContext:
        """A :class:`SpanContext` for parenting remote spans here.

        Raises :class:`~repro.errors.ObservabilityError` when no span is
        open — remote work must attach under a concrete span.
        """
        if not self._stack:
            raise ObservabilityError(
                "Tracer.context() needs an open span to parent remote "
                "spans under"
            )
        return SpanContext(
            parent_id=self._stack[-1].span_id,
            wall_anchor=self.wall_anchor,
        )

    def payload(self) -> Dict[str, Any]:
        """The tracer's events plus its wall anchor, for shipping back."""
        return {"wall_anchor": self.wall_anchor, "events": self.events}

    def absorb(self, payload: Dict[str, Any]) -> None:
        """Merge a worker tracer's :meth:`payload` into this timeline.

        Worker timestamps are re-based using the wall-clock anchors of
        the two tracers; durations are untouched (both sides measured
        them monotonically).
        """
        try:
            shift_us = (float(payload["wall_anchor"]) - self.wall_anchor) * 1e6
            events = payload["events"]
        except (TypeError, KeyError) as exc:
            raise ObservabilityError(
                "malformed trace payload: expected {'wall_anchor', 'events'}"
            ) from exc
        for event in events:
            moved = dict(event)
            moved["ts"] = round(event["ts"] + shift_us, 3)
            self.events.append(moved)

    # -- export ---------------------------------------------------------
    def export(self, path: PathLike) -> None:
        """Write the trace as JSONL, one Chrome trace event per line.

        Events are sorted by timestamp so the file reads chronologically
        regardless of when worker payloads were absorbed.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        ordered = sorted(self.events, key=lambda e: (e["ts"], e["pid"]))
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for event in ordered:
                handle.write(json.dumps(event, separators=(",", ":")) + "\n")
        tmp.replace(path)


def read_trace(path: PathLike) -> List[Dict[str, Any]]:
    """Read and schema-validate a JSONL trace written by :meth:`Tracer.export`.

    Raises
    ------
    ObservabilityError
        When the file is unreadable or not UTF-8, a line is truncated or
        not a JSON object, or an event is missing or mistypes the
        required trace-event keys.  The message always names the file
        and (for per-event defects) the line number, so ``repro
        trace-report`` can fail with one actionable line instead of a
        traceback.
    """
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ObservabilityError(f"cannot read trace file {path}: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise ObservabilityError(
            f"trace file {path} is not UTF-8 text ({exc}); is it really a "
            "JSONL trace?"
        ) from exc
    events: List[Dict[str, Any]] = []
    for lineno, line in enumerate(raw.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"trace file {path} line {lineno} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(event, dict):
            raise ObservabilityError(
                f"trace file {path} line {lineno} is not a JSON object"
            )
        missing = [key for key in EVENT_REQUIRED_KEYS if key not in event]
        if missing:
            raise ObservabilityError(
                f"trace file {path} line {lineno} is missing trace-event "
                f"keys {missing}"
            )
        if event["ph"] != "X":
            raise ObservabilityError(
                f"trace file {path} line {lineno} has phase {event['ph']!r}; "
                "this library emits complete ('X') events only"
            )
        for key in ("ts", "dur"):
            if not isinstance(event[key], (int, float)) or isinstance(
                event[key], bool
            ):
                raise ObservabilityError(
                    f"trace file {path} line {lineno} has non-numeric "
                    f"{key!r}: {event[key]!r}"
                )
        for key in ("pid", "tid"):
            if not isinstance(event[key], int) or isinstance(event[key], bool):
                raise ObservabilityError(
                    f"trace file {path} line {lineno} has non-integer "
                    f"{key!r}: {event[key]!r}"
                )
        if not isinstance(event["args"], dict):
            raise ObservabilityError(
                f"trace file {path} line {lineno} has non-object 'args': "
                f"{event['args']!r}"
            )
        events.append(event)
    return events


def chrome_trace_document(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Wrap events into the JSON object ``chrome://tracing`` loads."""
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(jsonl_path: PathLike, out_path: PathLike) -> int:
    """Convert a JSONL trace into a ``chrome://tracing``-loadable file.

    Returns the number of events written.
    """
    events = read_trace(jsonl_path)
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(
        json.dumps(chrome_trace_document(events)) + "\n", encoding="utf-8"
    )
    return len(events)
