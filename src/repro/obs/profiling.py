"""Deterministic-profiler harness for hot-path investigations.

Metrics answer *how much*, spans answer *when/where in the run* — the
profiler answers *which lines*.  :func:`profiled` wraps a block in
:mod:`cProfile` and lands the result wherever the caller wants it: a
binary stats dump (for ``snakeviz``/``pstats``), a rendered text report,
or both.  It is a developer tool, not run-time instrumentation: nothing
here is touched unless explicitly invoked, so it adds zero overhead to
normal runs.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, TextIO, Union

__all__ = ["profiled", "render_profile"]

PathLike = Union[str, Path]


@contextmanager
def profiled(
    path: Optional[PathLike] = None,
    stream: Optional[TextIO] = None,
    sort: str = "cumulative",
    limit: int = 30,
) -> Iterator[cProfile.Profile]:
    """Profile the block with :mod:`cProfile`.

    Parameters
    ----------
    path:
        Optional file for the binary stats dump
        (``python -m pstats``-loadable).
    stream:
        Optional text stream; a sorted, truncated report is printed to
        it when the block exits.
    sort / limit:
        Report ordering (any :mod:`pstats` sort key) and row cap.

    Examples
    --------
    >>> import io
    >>> out = io.StringIO()
    >>> with profiled(stream=out):
    ...     _ = sum(range(1000))
    >>> "function calls" in out.getvalue()
    True
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        if path is not None:
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            profiler.dump_stats(str(path))
        if stream is not None:
            stats = pstats.Stats(profiler, stream=stream)
            stats.sort_stats(sort).print_stats(limit)


def render_profile(
    path: PathLike, sort: str = "cumulative", limit: int = 30
) -> str:
    """The text report of a stats dump written by :func:`profiled`."""
    out = io.StringIO()
    stats = pstats.Stats(str(path), stream=out)
    stats.sort_stats(sort).print_stats(limit)
    return out.getvalue()
