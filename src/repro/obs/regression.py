"""Noise-robust performance-regression statistics and bench comparison.

The repository's overhead guards (``benchmarks/bench_obs_overhead.py``,
``benchmarks/bench_slo_overhead.py``) all reduce to one statistic: how
much slower is a variant than its baseline, measured so that a single
noisy round cannot fail CI while a genuine regression cannot hide.  This
module is that statistic, factored out so every bench (and the ``repro
diff`` CLI, when pointed at two ``BENCH_*.json`` records) shares one
implementation:

* :func:`time_variants` runs the variants in **interleaved rounds**
  (baseline, variant A, variant B, baseline, ...) rather than timing
  each in a block, which cancels slow machine-state drift — CPU
  frequency, cache temperature — that would otherwise masquerade as
  overhead at the few-percent scale the guards operate at;
* :func:`paired_ratio_overhead` is the guarded number: the **minimum
  per-round ratio** of variant over baseline, minus one.  A genuine
  regression slows *every* round, so it survives the minimum; one
  unlucky round cannot fail the guard (and one lucky baseline round can
  push the statistic slightly negative — that is expected and fine);
* :func:`compare_bench_records` aligns two bench JSON records (a fresh
  ``benchmarks/artifacts/BENCH_*.json`` against the committed baseline)
  and reports every shared numeric field's movement, flagging the
  guarded ``*_overhead`` statistics that exceed the record's own
  ``guard_threshold``.  Absolute seconds are reported but never judged —
  they belong to the machine that measured them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .._validation import check_positive_int
from ..errors import ObservabilityError

__all__ = [
    "VariantTiming",
    "paired_ratio_overhead",
    "time_variants",
    "BenchFieldDelta",
    "BenchComparison",
    "compare_bench_records",
    "format_bench_comparison",
]


def paired_ratio_overhead(
    baseline_rounds: Sequence[float], variant_rounds: Sequence[float]
) -> float:
    """Minimum per-round variant/baseline ratio, minus one.

    Rounds must be paired — measured back to back in the same
    interleaved pass — for the pairing to cancel drift.

    Examples
    --------
    >>> round(paired_ratio_overhead([1.0, 1.0, 1.2], [1.05, 1.5, 1.26]), 3)
    0.05
    """
    if len(baseline_rounds) != len(variant_rounds) or not baseline_rounds:
        raise ObservabilityError(
            "paired_ratio_overhead needs equally many (and at least one) "
            f"baseline and variant rounds, got {len(baseline_rounds)} "
            f"vs {len(variant_rounds)}"
        )
    if any(value <= 0.0 for value in baseline_rounds):
        raise ObservabilityError(
            "paired_ratio_overhead needs positive baseline timings"
        )
    return min(
        variant / baseline
        for baseline, variant in zip(baseline_rounds, variant_rounds)
    ) - 1.0


@dataclass(frozen=True)
class VariantTiming:
    """Outcome of :func:`time_variants`.

    Attributes
    ----------
    rounds:
        Raw per-round seconds for every variant, in measurement order.
    best:
        Best-of-rounds seconds per variant (informational).
    overhead:
        The guarded statistic per non-baseline variant:
        :func:`paired_ratio_overhead` against the first variant.
    """

    rounds: Dict[str, Tuple[float, ...]]
    best: Dict[str, float]
    overhead: Dict[str, float]

    def overhead_of_best(self, name: str, baseline: str) -> float:
        """Ratio of best-of-rounds times, minus one (informational)."""
        return self.best[name] / self.best[baseline] - 1.0


def time_variants(
    variants: Sequence[Tuple[str, Callable[[], float]]],
    repeats: int,
) -> VariantTiming:
    """Time variants in interleaved rounds; first variant is baseline.

    Each variant is a ``(name, run)`` pair whose ``run()`` performs one
    full round of work and returns its wall-clock seconds (the caller
    owns the timing boundary, so setup cost can be excluded).  One round
    runs every variant once, in order; *repeats* rounds are taken.
    """
    if len(variants) < 2:
        raise ObservabilityError(
            "time_variants needs a baseline plus at least one variant"
        )
    names = [name for name, _ in variants]
    if len(set(names)) != len(names):
        raise ObservabilityError(
            f"variant names must be unique, got {names}"
        )
    repeats = check_positive_int(repeats, "repeats")
    rounds: Dict[str, List[float]] = {name: [] for name in names}
    for _ in range(repeats):
        for name, run in variants:
            rounds[name].append(run())
    baseline = names[0]
    return VariantTiming(
        rounds={name: tuple(values) for name, values in rounds.items()},
        best={name: min(values) for name, values in rounds.items()},
        overhead={
            name: paired_ratio_overhead(rounds[baseline], rounds[name])
            for name in names[1:]
        },
    )


# ---------------------------------------------------------------------------
# Bench-record comparison (BENCH_*.json vs committed baseline)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BenchFieldDelta:
    """One numeric field of a bench record compared across two runs."""

    key: str
    baseline: float
    current: float
    guarded: bool

    @property
    def delta(self) -> float:
        return self.current - self.baseline


@dataclass(frozen=True)
class BenchComparison:
    """A bench artifact aligned against its committed baseline.

    ``regressions`` lists one finding per guarded statistic of the
    current record that exceeds the guard threshold — the same condition
    the bench itself asserts under ``REPRO_OBS_GUARD``.
    """

    benchmark: str
    guard_threshold: float
    fields: Tuple[BenchFieldDelta, ...]
    regressions: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _numeric_fields(record: Mapping[str, Any], prefix: str = "") -> Dict[str, float]:
    """Flatten a bench record's numeric fields (one nesting level)."""
    fields: Dict[str, float] = {}
    for key, value in record.items():
        name = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            fields[name] = float(value)
        elif isinstance(value, Mapping) and not prefix:
            fields.update(_numeric_fields(value, prefix=f"{name}."))
    return fields


def _guarded_predicate(
    baseline: Mapping[str, Any], current: Mapping[str, Any]
) -> Callable[[str], bool]:
    """Which fields the records' own guard would assert on.

    A record may carry an explicit ``"guarded": [...]`` list of field
    names (``bench_obs_overhead`` guards only ``disabled_overhead`` —
    enabled-mode cost is reported, never asserted).  Records written
    before that key existed fall back to the ``*_overhead`` suffix
    (excluding the informational ``*_overhead_of_best`` ratios).
    """
    declared = current.get("guarded", baseline.get("guarded"))
    if declared is not None:
        names = frozenset(str(name) for name in declared)
        return lambda key: key in names
    return lambda key: (
        key.endswith("_overhead") and not key.endswith("_overhead_of_best")
    )


def compare_bench_records(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    threshold: Optional[float] = None,
) -> BenchComparison:
    """Compare a fresh bench record against its committed baseline.

    Both records must be for the same ``benchmark``.  Every numeric
    field present in both is reported; the guarded ``*_overhead``
    statistics of the *current* record are additionally judged against
    *threshold* (default: the records' own ``guard_threshold``), and a
    breach becomes a regression finding.

    Raises
    ------
    ObservabilityError
        When the records name different benchmarks, carry no
        ``benchmark`` field, or no threshold is available.
    """
    for name, record in (("baseline", baseline), ("current", current)):
        if not isinstance(record, Mapping) or "benchmark" not in record:
            raise ObservabilityError(
                f"{name} bench record has no 'benchmark' field; is this a "
                "BENCH_*.json file?"
            )
    if baseline["benchmark"] != current["benchmark"]:
        raise ObservabilityError(
            f"bench records disagree: baseline is "
            f"{baseline['benchmark']!r}, current is "
            f"{current['benchmark']!r}"
        )
    if threshold is None:
        threshold = current.get(
            "guard_threshold", baseline.get("guard_threshold")
        )
    if threshold is None:
        raise ObservabilityError(
            "neither bench record carries a guard_threshold; pass one "
            "explicitly"
        )
    threshold = float(threshold)
    is_guarded = _guarded_predicate(baseline, current)
    base_fields = _numeric_fields(baseline)
    current_fields = _numeric_fields(current)
    fields = tuple(
        BenchFieldDelta(
            key=key,
            baseline=base_fields[key],
            current=current_fields[key],
            guarded=is_guarded(key),
        )
        for key in sorted(set(base_fields) & set(current_fields))
    )
    regressions = tuple(
        f"{field.key} = {field.current:.4f} exceeds the "
        f"{threshold:.0%} guard (baseline recorded "
        f"{field.baseline:.4f})"
        for field in fields
        if field.guarded and field.current > threshold
    )
    return BenchComparison(
        benchmark=str(current["benchmark"]),
        guard_threshold=threshold,
        fields=fields,
        regressions=regressions,
    )


def format_bench_comparison(comparison: BenchComparison) -> str:
    """Render a :class:`BenchComparison` as a fixed-width table."""
    from ..reporting import format_table

    rows = []
    for field in comparison.fields:
        rows.append([
            field.key,
            f"{field.baseline:g}",
            f"{field.current:g}",
            f"{field.delta:+g}",
            "guarded" if field.guarded else "",
        ])
    verdict = (
        "ok"
        if comparison.ok
        else f"{len(comparison.regressions)} regression(s)"
    )
    text = format_table(
        ["field", "baseline", "current", "delta", ""],
        rows,
        title=(
            f"{comparison.benchmark} vs baseline — guard "
            f"{comparison.guard_threshold:.0%} — {verdict}"
        ),
    )
    if comparison.regressions:
        text += "\n\nregressions:\n" + "\n".join(
            f"  {finding}" for finding in comparison.regressions
        )
    return text
