"""Counters, gauges, and fixed-bucket histograms, mergeable by name.

A :class:`MetricsRegistry` is a per-process bag of named instruments:

* :class:`Counter` — a monotonically increasing total (events processed,
  cache hits); merges across registries by **summation**;
* :class:`Gauge` — a high-water mark (max queue depth); merges by
  **maximum**, which keeps merging order-free;
* :class:`Histogram` — fixed-bucket distribution (task latencies, queue
  depths) with cumulative bucket counts, a sum, and a count; merges
  bucketwise.  Two histograms merge only when their bucket bounds are
  identical.

Instruments are identified by ``(name, labels)``; the same name must
keep one type (and, for histograms, one set of bounds) everywhere, which
is what makes registries from different worker processes mergeable by
name.  Updates are plain attribute arithmetic — no locks — so the hot
path costs one add; per-process registries merged at a join point are
the concurrency model (the evaluation engine ships one snapshot per
worker task back to the parent).

Exports: :meth:`MetricsRegistry.render_openmetrics` produces OpenMetrics
text exposition, :meth:`MetricsRegistry.save` a JSON snapshot that
:meth:`MetricsRegistry.load` restores and ``repro stats`` renders.
:func:`merge_registries` merges any number of snapshots with
order-canonicalized float summation, so merging worker registries in
*any* order yields bit-identical output.
"""

from __future__ import annotations

import json
import re
from bisect import bisect_left
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_registries",
    "DEFAULT_TIME_BOUNDS",
    "DEFAULT_DEPTH_BOUNDS",
    "DEFAULT_ITERATION_BOUNDS",
]

#: Log-spaced latency buckets (seconds): microseconds to ten minutes.
DEFAULT_TIME_BOUNDS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 60.0, 600.0,
)

#: Power-of-two depth/size buckets for queue depths and batch sizes.
DEFAULT_DEPTH_BOUNDS: Tuple[float, ...] = (
    0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0, 4096.0,
)

#: Log-spaced iteration-count buckets for iterative solvers.
DEFAULT_ITERATION_BOUNDS: Tuple[float, ...] = (
    1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1e3, 3e3, 1e4, 3e4, 1e5,
)

#: JSON snapshot schema tag; bumped on incompatible layout changes.
SNAPSHOT_SCHEMA = "repro.obs.metrics/1"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

Labels = Tuple[Tuple[str, str], ...]
PathLike = Union[str, Path]


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ObservabilityError(
            f"invalid metric name {name!r}: must match "
            "[a-zA-Z_:][a-zA-Z0-9_:]*"
        )
    return name


def _canonical_labels(labels: Dict[str, Any]) -> Labels:
    items = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise ObservabilityError(
                f"invalid label name {key!r}: must match [a-zA-Z_][a-zA-Z0-9_]*"
            )
        items.append((key, str(labels[key])))
    return tuple(items)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Labels, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in pairs
    )
    return "{" + body + "}"


def _render_value(value: float) -> str:
    """Shortest-round-trip rendering: ints as ints, floats via repr."""
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing total.  Merge rule: sum."""

    __slots__ = ("name", "help", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Labels = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be non-negative) to the running total."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc({amount!r}))"
            )
        self.value += amount

    def _merge(self, other: "Counter") -> None:
        self.value += other.value

    def _to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "name": self.name,
            "help": self.help,
            "labels": dict(self.labels),
            "value": self.value,
        }

    def _samples(self) -> List[str]:
        return [
            f"{self.name}_total{_render_labels(self.labels)} "
            f"{_render_value(self.value)}"
        ]


class Gauge:
    """A high-water mark.  Merge rule: maximum (order-free)."""

    __slots__ = ("name", "help", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Labels = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the current value."""
        self.value = float(value)

    def set_max(self, value: float) -> None:
        """Raise the value to *value* if it is higher (high-water mark)."""
        if value > self.value:
            self.value = float(value)

    def _merge(self, other: "Gauge") -> None:
        self.set_max(other.value)

    def _to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "name": self.name,
            "help": self.help,
            "labels": dict(self.labels),
            "value": self.value,
        }

    def _samples(self) -> List[str]:
        return [
            f"{self.name}{_render_labels(self.labels)} "
            f"{_render_value(self.value)}"
        ]


class Histogram:
    """Fixed-bucket distribution.  Merge rule: bucketwise sum.

    ``bounds`` are strictly increasing upper bucket edges; an implicit
    ``+Inf`` bucket catches everything above the last edge.  Exposition
    follows the OpenMetrics histogram convention (cumulative ``le``
    buckets plus ``_sum`` and ``_count`` samples).
    """

    __slots__ = ("name", "help", "labels", "bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        bounds: Sequence[float],
        help: str = "",
        labels: Labels = (),
    ):
        edges = tuple(float(b) for b in bounds)
        if not edges or any(
            later <= earlier for earlier, later in zip(edges, edges[1:])
        ):
            raise ObservabilityError(
                f"histogram {name!r} bounds must be non-empty and strictly "
                f"increasing, got {edges}"
            )
        self.name = name
        self.help = help
        self.labels = labels
        self.bounds = edges
        self.counts = [0] * (len(edges) + 1)  # last bucket = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Mean of the observations (NaN before the first one)."""
        return self.sum / self.count if self.count else float("nan")

    def _merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ObservabilityError(
                f"cannot merge histogram {self.name!r}: bucket bounds differ "
                f"({self.bounds} vs {other.bounds})"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.sum += other.sum
        self.count += other.count

    def _to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "name": self.name,
            "help": self.help,
            "labels": dict(self.labels),
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def _samples(self) -> List[str]:
        lines = []
        cumulative = 0
        for bound, count in zip(self.bounds, self.counts):
            cumulative += count
            extra = (("le", _render_value(bound)),)
            lines.append(
                f"{self.name}_bucket{_render_labels(self.labels, extra)} "
                f"{cumulative}"
            )
        cumulative += self.counts[-1]
        lines.append(
            f"{self.name}_bucket{_render_labels(self.labels, (('le', '+Inf'),))} "
            f"{cumulative}"
        )
        lines.append(
            f"{self.name}_count{_render_labels(self.labels)} {self.count}"
        )
        lines.append(
            f"{self.name}_sum{_render_labels(self.labels)} "
            f"{_render_value(self.sum)}"
        )
        return lines


Metric = Union[Counter, Gauge, Histogram]
_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class MetricsRegistry:
    """A per-process bag of named instruments.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.counter("events", help="events processed").inc()
    >>> registry.counter("events").inc(2)
    >>> registry.counter("events").value
    3.0
    >>> print(registry.render_openmetrics())
    # HELP events events processed
    # TYPE events counter
    events_total 3
    # EOF
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, Labels], Metric] = {}
        self._kinds: Dict[str, str] = {}
        self._bounds: Dict[str, Tuple[float, ...]] = {}
        self._render_cache: Optional[Tuple[Any, str]] = None

    # -- instrument accessors (get-or-create) --------------------------
    def _get(self, cls, name: str, help: str, labels: Dict[str, Any], **kwargs):
        _check_name(name)
        key = (name, _canonical_labels(labels))
        metric = self._metrics.get(key)
        if metric is not None:
            if metric.kind != cls.kind:
                raise ObservabilityError(
                    f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
                )
            return metric
        declared = self._kinds.get(name)
        if declared is not None and declared != cls.kind:
            raise ObservabilityError(
                f"metric name {name!r} is already declared as a {declared}"
            )
        metric = cls(name, help=help, labels=key[1], **kwargs)
        if cls.kind == "histogram":
            bounds = self._bounds.setdefault(name, metric.bounds)
            if bounds != metric.bounds:
                raise ObservabilityError(
                    f"histogram {name!r} was declared with bounds {bounds}; "
                    f"all label sets must share them (got {metric.bounds})"
                )
        self._metrics[key] = metric
        self._kinds[name] = cls.kind
        return metric

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        """The counter ``(name, labels)``, created on first use."""
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        """The gauge ``(name, labels)``, created on first use."""
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_TIME_BOUNDS,
        help: str = "",
        **labels: Any,
    ) -> Histogram:
        """The histogram ``(name, labels)``, created on first use.

        Every label set of one name must share the same *bounds*.
        """
        return self._get(Histogram, name, help, labels, bounds=bounds)

    # -- introspection --------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        """Metrics in canonical (name, labels) order."""
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def get(self, name: str, **labels: Any) -> Optional[Metric]:
        """The instrument at ``(name, labels)``, or None."""
        return self._metrics.get((name, _canonical_labels(labels)))

    def value(self, name: str, default: float = 0.0, **labels: Any) -> float:
        """Counter/gauge value at ``(name, labels)``; *default* if absent."""
        metric = self.get(name, **labels)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            raise ObservabilityError(
                f"{name!r} is a histogram; read .count/.sum/.mean instead"
            )
        return metric.value

    # -- snapshots ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot in canonical metric order."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "metrics": [metric._to_dict() for metric in self],
        }

    @classmethod
    def from_dict(cls, snapshot: Dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`to_dict` snapshot."""
        if not isinstance(snapshot, dict) or "metrics" not in snapshot:
            raise ObservabilityError(
                "metrics snapshot must be an object with a 'metrics' list"
            )
        schema = snapshot.get("schema")
        if schema != SNAPSHOT_SCHEMA:
            raise ObservabilityError(
                f"metrics snapshot has schema {schema!r}; this reader "
                f"understands {SNAPSHOT_SCHEMA!r}"
            )
        registry = cls()
        registry.merge_snapshot(snapshot)
        return registry

    def save(self, path: PathLike) -> None:
        """Write the JSON snapshot atomically (write-then-rename)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
        tmp.replace(path)

    @classmethod
    def load(cls, path: PathLike) -> "MetricsRegistry":
        """Read a snapshot written by :meth:`save`."""
        path = Path(path)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ObservabilityError(
                f"cannot read metrics file {path}: {exc}"
            ) from exc
        try:
            snapshot = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"metrics file {path} is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(snapshot)

    # -- merging --------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Merge *other* into this registry in place; returns self.

        Counters sum, gauges take the maximum, histograms add
        bucketwise.  Integer-valued counters and bucket counts merge
        exactly in any order; float sums merge in call order (use
        :func:`merge_registries` when bit-identical permutation
        invariance matters).
        """
        for metric in other:
            self._adopt(metric._to_dict())
        return self

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> "MetricsRegistry":
        """Merge a :meth:`to_dict` snapshot into this registry in place."""
        metrics = snapshot.get("metrics")
        if not isinstance(metrics, list):
            raise ObservabilityError(
                "metrics snapshot must carry a 'metrics' list"
            )
        for entry in metrics:
            self._adopt(entry)
        return self

    def _adopt(self, entry: Dict[str, Any]) -> None:
        try:
            kind = entry["type"]
            name = entry["name"]
            labels = entry.get("labels", {})
        except (TypeError, KeyError) as exc:
            raise ObservabilityError(
                f"malformed metrics snapshot entry: {entry!r}"
            ) from exc
        if kind not in _KINDS:
            raise ObservabilityError(
                f"unknown metric type {kind!r} in snapshot entry {name!r}"
            )
        help = entry.get("help", "")
        if kind == "counter":
            incoming: Metric = Counter(name, help=help)
            incoming.value = float(entry["value"])
            self.counter(name, help=help, **labels)._merge(incoming)
        elif kind == "gauge":
            incoming = Gauge(name, help=help)
            incoming.value = float(entry["value"])
            self.gauge(name, help=help, **labels)._merge(incoming)
        else:
            bounds = tuple(float(b) for b in entry["bounds"])
            incoming = Histogram(name, bounds, help=help)
            counts = [int(c) for c in entry["counts"]]
            if len(counts) != len(incoming.counts):
                raise ObservabilityError(
                    f"histogram {name!r} snapshot has {len(counts)} bucket "
                    f"counts for {len(bounds)} bounds"
                )
            incoming.counts = counts
            incoming.sum = float(entry["sum"])
            incoming.count = int(entry["count"])
            self.histogram(name, bounds=bounds, help=help, **labels)._merge(
                incoming
            )

    # -- exposition -----------------------------------------------------
    def _snapshot_fingerprint(self) -> Tuple:
        """The exposition-relevant state, cheap to compare.

        Instruments mutate without going through the registry
        (``counter.inc()`` touches the instrument directly), so the
        exposition cache cannot be invalidated eagerly; instead every
        render re-derives this fingerprint — no string formatting, just
        tuples over the live values — and compares it to the cached one.
        """
        parts = []
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            if metric.kind == "histogram":
                state: Any = (tuple(metric.counts), metric.count, metric.sum)
            else:
                state = metric.value
            parts.append((key, metric.kind, metric.help, state))
        return tuple(parts)

    def render_openmetrics(self) -> str:
        """OpenMetrics text exposition, in canonical metric order.

        Families are emitted sorted by name, samples sorted by labels,
        so any two registries holding the same data render byte-identical
        text regardless of insertion or merge order.

        Consecutive renders of an unchanged registry are a snapshot-hash
        fast path: the second call returns the *identical* string object
        without re-rendering (a server scrapes ``/metrics`` far more
        often than values change).
        """
        fingerprint = self._snapshot_fingerprint()
        if (
            self._render_cache is not None
            and self._render_cache[0] == fingerprint
        ):
            return self._render_cache[1]
        lines: List[str] = []
        seen_family: set = set()
        for metric in self:
            if metric.name not in seen_family:
                seen_family.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric._samples())
        lines.append("# EOF")
        text = "\n".join(lines)
        self._render_cache = (fingerprint, text)
        return text


def merge_registries(registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
    """Merge registries with order-canonicalized float summation.

    Contributions to each counter value and histogram sum are added in
    sorted order of their float values, so merging the same registries
    in **any** permutation produces bit-identical results — the property
    the cross-worker merge tests rely on.  (Pairwise :meth:`~MetricsRegistry.merge`
    is exact for integer-valued data but sums floats in call order.)
    """
    registries = list(registries)
    if not registries:
        raise ObservabilityError(
            "merge_registries needs at least one registry; an empty merge "
            "has no schema to agree on"
        )
    merged = MetricsRegistry()
    contributions: Dict[Tuple[str, Labels], List[Dict[str, Any]]] = {}
    for registry in registries:
        for metric in registry:
            contributions.setdefault(
                (metric.name, metric.labels), []
            ).append(metric._to_dict())
    for key in sorted(contributions):
        entries = contributions[key]
        first = dict(entries[0])
        kind = first["type"]
        if kind == "counter":
            first["value"] = sum(sorted(float(e["value"]) for e in entries))
        elif kind == "gauge":
            first["value"] = max(float(e["value"]) for e in entries)
        else:
            bounds = tuple(first["bounds"])
            for entry in entries[1:]:
                if tuple(entry["bounds"]) != bounds:
                    raise ObservabilityError(
                        f"cannot merge histogram {first['name']!r}: bucket "
                        "bounds differ across registries"
                    )
            first["counts"] = [
                sum(int(e["counts"][i]) for e in entries)
                for i in range(len(first["counts"]))
            ]
            first["sum"] = sum(sorted(float(e["sum"]) for e in entries))
            first["count"] = sum(int(e["count"]) for e in entries)
        merged._adopt(first)
    return merged
