"""Performance attribution: where does batch wall-time actually go?

The metrics layer can say *how many* events and tasks ran; this module
says *where the time went*, in three coordinated pieces:

* :class:`KernelAccounting` — per-event-type counts and self-time,
  recorded by the DES kernel's construction-bound profiled step so a
  disabled kernel pays nothing (same zero-overhead idiom as the
  metrics binding, guarded by ``benchmarks/bench_perf_attribution.py``);
* :class:`BatchPerf` / :class:`AttributionReport` — the evaluation
  engine's per-batch timeline: worker execute windows, parent-side
  serialization and cache timing, queue-depth samples, rolled into an
  exact decomposition of ``workers x elapsed`` capacity into
  compute / serialization / IPC / idle / cache buckets.  The
  decomposition is an identity — per-worker busy + stall + trailing
  idle tiles the batch window — so coverage is ~100% by construction
  and the buckets *explain* results like the 0.06x workers=2 speedup
  in ``BENCH_engine.json`` instead of hand-waving at "overhead";
* :class:`CounterProfiler` — a deterministic sampling profiler that
  captures a stack every N kernel events / engine tasks.  Triggers are
  event *counts*, never wall-clock timers, so two runs of the same
  workload produce byte-identical flamegraphs (collapsed-stack and
  speedscope-JSON export, both stdlib-only).

Everything hangs off a :class:`PerfRecorder`, activated ambiently via
:func:`repro.obs.instrumented` (``perf=``) or passed explicitly to the
kernel/engine; ``repro profile <cmd>`` and ``--profile DIR`` wire it up
from the CLI, and ``repro.server`` attaches per-job profile documents.
"""

from __future__ import annotations

import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .clock import monotonic, walltime

__all__ = [
    "KernelAccounting",
    "CounterProfiler",
    "BatchPerf",
    "WorkerTimeline",
    "AttributionReport",
    "PerfRecorder",
    "format_attribution",
    "format_kernel_accounting",
    "speedscope_document",
]

# Bucket names, in presentation order.  The five of them tile the
# capacity window exactly (see AttributionReport).
BUCKETS = ("compute", "serialization", "ipc", "idle", "cache")

_MAX_STACK_DEPTH = 64


class KernelAccounting:
    """Per-event-type counts and self-time from the DES kernel.

    One instance aggregates across every kernel that ran under the same
    :class:`PerfRecorder` — including kernels inside engine worker
    processes, whose snapshots are merged back by event-type name.
    """

    __slots__ = ("counts", "seconds")

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.seconds: Dict[str, float] = {}

    def record(self, name: str, elapsed: float) -> None:
        """Account one executed event of type *name*."""
        self.counts[name] = self.counts.get(name, 0) + 1
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    @property
    def total_events(self) -> int:
        return sum(self.counts.values())

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def snapshot(self) -> Dict[str, List[float]]:
        """A mergeable ``{name: [count, seconds]}`` transport form."""
        return {
            name: [self.counts[name], self.seconds.get(name, 0.0)]
            for name in self.counts
        }

    def merge(self, snapshot: Mapping[str, Sequence[float]]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) in."""
        for name, (count, seconds) in snapshot.items():
            self.counts[name] = self.counts.get(name, 0) + int(count)
            self.seconds[name] = self.seconds.get(name, 0.0) + float(seconds)

    def to_dict(self) -> dict:
        events = {
            name: {
                "count": self.counts[name],
                "seconds": round(self.seconds.get(name, 0.0), 9),
            }
            for name in sorted(self.counts)
        }
        return {
            "total_events": self.total_events,
            "total_seconds": round(self.total_seconds, 9),
            "events": events,
        }


class CounterProfiler:
    """A deterministic counter-triggered sampling profiler.

    Every ``kernel_interval``-th DES event and every ``task_interval``-th
    engine task captures the current Python stack (via ``sys._getframe``,
    no tracing hooks, no signals).  Because the trigger is a counter, a
    repeated run of the same workload samples at the same points and the
    exported flamegraph is byte-identical — the caveat being that sample
    *weights* are trigger counts, not wall-time, so the graph shows where
    trigger points fire in the call graph rather than a statistical time
    profile (the time profile is :class:`KernelAccounting`'s job).

    The capture appends a synthetic leaf frame naming the event type or
    task phase about to run, so flamegraph leaves attribute to workload
    structure, not just the kernel loop.
    """

    __slots__ = (
        "kernel_interval",
        "task_interval",
        "_kernel_ticks",
        "_task_ticks",
        "samples",
    )

    def __init__(
        self, kernel_interval: int = 1000, task_interval: int = 1
    ) -> None:
        if kernel_interval < 1 or task_interval < 1:
            raise ValueError("profiler intervals must be >= 1")
        self.kernel_interval = kernel_interval
        self.task_interval = task_interval
        self._kernel_ticks = 0
        self._task_ticks = 0
        # folded stack (root -> leaf tuple of "module:function") -> count
        self.samples: Dict[Tuple[str, ...], int] = {}

    @property
    def kernel_ticks(self) -> int:
        return self._kernel_ticks

    @property
    def task_ticks(self) -> int:
        return self._task_ticks

    @property
    def sample_count(self) -> int:
        return sum(self.samples.values())

    def tick_kernel(self, leaf: Optional[str] = None) -> None:
        """One DES event executed; maybe capture a stack."""
        self._kernel_ticks += 1
        if self._kernel_ticks % self.kernel_interval == 0:
            self._capture(leaf)

    def tick_task(self, leaf: Optional[str] = None) -> None:
        """One engine task executed; maybe capture a stack."""
        self._task_ticks += 1
        if self._task_ticks % self.task_interval == 0:
            self._capture(leaf)

    def _capture(self, leaf: Optional[str]) -> None:
        # Skip _capture and the tick_* caller; start at the trigger site.
        frame = sys._getframe(2)
        stack: List[str] = []
        depth = 0
        while frame is not None and depth < _MAX_STACK_DEPTH:
            code = frame.f_code
            name = getattr(code, "co_qualname", None) or code.co_name
            module = frame.f_globals.get("__name__", "?")
            stack.append(f"{module}:{name}")
            frame = frame.f_back
            depth += 1
        stack.reverse()
        if leaf:
            stack.append(leaf)
        key = tuple(stack)
        self.samples[key] = self.samples.get(key, 0) + 1

    def folded(self) -> Dict[str, int]:
        """``{"a;b;c": count}`` transport form (worker -> parent)."""
        return {";".join(stack): count for stack, count in self.samples.items()}

    def merge_folded(self, folded: Mapping[str, int]) -> None:
        """Fold a :meth:`folded` mapping (e.g. from a worker) in."""
        for line, count in folded.items():
            key = tuple(line.split(";"))
            self.samples[key] = self.samples.get(key, 0) + int(count)

    def collapsed(self) -> str:
        """Brendan-Gregg collapsed-stack format (``a;b;c 42`` per line)."""
        lines = [
            f"{';'.join(stack)} {count}"
            for stack, count in sorted(self.samples.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def speedscope(self, name: str = "repro profile") -> dict:
        """A speedscope-JSON document (https://speedscope.app)."""
        return speedscope_document(self.samples, name=name)


def speedscope_document(
    samples: Mapping[Tuple[str, ...], int], name: str = "repro profile"
) -> dict:
    """Build a speedscope "sampled" profile from folded-stack counts.

    Deterministic: frames and samples are emitted in sorted stack order,
    and weights are the integer trigger counts.
    """
    frame_index: Dict[str, int] = {}
    frames: List[dict] = []
    sample_stacks: List[List[int]] = []
    weights: List[int] = []
    for stack, count in sorted(samples.items()):
        indexed = []
        for entry in stack:
            if entry not in frame_index:
                frame_index[entry] = len(frames)
                frames.append({"name": entry})
            indexed.append(frame_index[entry])
        sample_stacks.append(indexed)
        weights.append(int(count))
    total = sum(weights)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "exporter": "repro.obs.perf",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "none",
                "startValue": 0,
                "endValue": total,
                "samples": sample_stacks,
                "weights": weights,
            }
        ],
    }


@dataclass(frozen=True)
class WorkerTimeline:
    """One worker's share of a batch window.

    ``busy + stalled + trailing_idle == elapsed`` for the batch (up to
    float rounding): *busy* is the union of execute windows, *stalled*
    is time before/between executions (the worker existed but had no
    task in hand — dispatch, pickling, and IPC latency land here), and
    *trailing_idle* is the tail after its last task finished while the
    batch was still completing elsewhere.
    """

    pid: int
    tasks: int
    busy: float
    stalled: float
    trailing_idle: float

    def to_dict(self) -> dict:
        return {
            "pid": self.pid,
            "tasks": self.tasks,
            "busy": round(self.busy, 9),
            "stalled": round(self.stalled, 9),
            "trailing_idle": round(self.trailing_idle, 9),
        }


@dataclass(frozen=True)
class AttributionReport:
    """Where one engine batch's capacity (``slots x elapsed``) went.

    The five buckets tile capacity exactly:

    * ``compute`` — union of worker execute windows (the only part that
      scales with more workers);
    * ``serialization`` — parent-side argument pickling and journal
      encoding, carved out of worker stall time;
    * ``ipc`` — the rest of worker stall time: dispatch latency, pipe
      transfer, result unpickling, scheduling;
    * ``idle`` — trailing time after a worker's last task, plus whole
      windows of workers that never received a task;
    * ``cache`` — memo-cache lookups/puts on the parent, carved out of
      stall time like serialization.

    ``coverage`` is the bucket sum over capacity — ~1.0 by construction,
    and asserted >= 0.95 by ``bench_perf_attribution.py``.  The measured
    (unclamped) serialization/cache totals are reported alongside, so
    the carve-out is auditable.
    """

    phase: str
    workers: int
    slots: int
    tasks: int
    elapsed: float
    capacity: float
    compute: float
    serialization: float
    ipc: float
    idle: float
    cache: float
    serialization_measured: float
    cache_measured: float
    serialized_bytes: int
    queue_depth_samples: Tuple[int, ...]
    per_worker: Tuple[WorkerTimeline, ...]

    @property
    def accounted(self) -> float:
        return (
            self.compute + self.serialization + self.ipc
            + self.idle + self.cache
        )

    @property
    def coverage(self) -> float:
        """Fraction of capacity the five buckets account for."""
        if self.capacity <= 0.0:
            return 1.0
        return self.accounted / self.capacity

    @property
    def parallel_efficiency(self) -> float:
        """compute / capacity — the ceiling on parallel speedup."""
        if self.capacity <= 0.0:
            return 0.0
        return self.compute / self.capacity

    def share(self, bucket: str) -> float:
        value = getattr(self, bucket)
        return value / self.capacity if self.capacity > 0.0 else 0.0

    def to_dict(self) -> dict:
        return {
            "phase": self.phase,
            "workers": self.workers,
            "slots": self.slots,
            "tasks": self.tasks,
            "elapsed": round(self.elapsed, 9),
            "capacity": round(self.capacity, 9),
            "buckets": {
                name: round(getattr(self, name), 9) for name in BUCKETS
            },
            "shares": {
                name: round(self.share(name), 6) for name in BUCKETS
            },
            "coverage": round(self.coverage, 6),
            "parallel_efficiency": round(self.parallel_efficiency, 6),
            "serialization_measured": round(self.serialization_measured, 9),
            "cache_measured": round(self.cache_measured, 9),
            "serialized_bytes": self.serialized_bytes,
            "queue_depth": {
                "samples": len(self.queue_depth_samples),
                "max": max(self.queue_depth_samples, default=0),
                "mean": round(
                    sum(self.queue_depth_samples)
                    / len(self.queue_depth_samples),
                    3,
                ) if self.queue_depth_samples else 0.0,
            },
            "per_worker": [worker.to_dict() for worker in self.per_worker],
        }

    def headline(self) -> str:
        """One line: the decomposition as percentages of capacity."""
        shares = "  ".join(
            f"{name} {self.share(name):.1%}" for name in BUCKETS
        )
        return (
            f"{self.phase}: {self.tasks} task(s) on {self.slots} worker(s) "
            f"in {self.elapsed:.4f}s — {shares} "
            f"(coverage {self.coverage:.1%})"
        )


class BatchPerf:
    """Mutable builder for one batch's :class:`AttributionReport`.

    The engine creates one per ``map``/``run_graph`` batch, feeds it
    execute windows / serialization / cache timings as they happen, and
    calls :meth:`finish` once at the end.
    """

    def __init__(
        self,
        recorder: Optional["PerfRecorder"],
        phase: str,
        workers: int,
        tasks: int,
    ) -> None:
        self._recorder = recorder
        self.phase = phase
        self.workers = workers
        self.tasks = tasks
        self._wall_start = walltime()
        self._started = monotonic()
        # (pid, wall_start, duration) per executed task
        self._windows: List[Tuple[int, float, float]] = []
        self._task_count = 0
        self._serialization = 0.0
        self._serialized_bytes = 0
        self._cache = 0.0
        self._queue_depths: List[int] = []

    def add_serialization(self, seconds: float, nbytes: int = 0) -> None:
        self._serialization += seconds
        self._serialized_bytes += nbytes

    def add_cache(self, seconds: float) -> None:
        self._cache += seconds

    def sample_queue_depth(self, depth: int) -> None:
        self._queue_depths.append(depth)

    def task_executed(
        self, pid: int, wall_start: float, duration: float
    ) -> None:
        """Record one task's execute window on worker *pid*."""
        self._task_count += 1
        self._windows.append((pid, wall_start, duration))

    def finish(self) -> AttributionReport:
        """Close the batch window and compute the attribution identity."""
        elapsed = monotonic() - self._started
        window_start = self._wall_start
        window_end = self._wall_start + elapsed

        by_pid: Dict[int, List[Tuple[float, float]]] = {}
        for pid, start, duration in self._windows:
            # Clamp into the batch window: worker wall clocks are the
            # same machine but not the same reading as the parent's.
            start = min(max(start, window_start), window_end)
            end = min(max(start + max(duration, 0.0), window_start),
                      window_end)
            by_pid.setdefault(pid, []).append((start, end))

        timelines: List[WorkerTimeline] = []
        compute = 0.0
        stalled_total = 0.0
        idle = 0.0
        for pid in sorted(by_pid):
            windows = sorted(by_pid[pid])
            busy = 0.0
            stalled = 0.0
            cursor = window_start
            for start, end in windows:
                if start > cursor:
                    stalled += start - cursor
                busy += max(end - max(start, cursor), 0.0)
                cursor = max(cursor, end)
            trailing = max(window_end - cursor, 0.0)
            timelines.append(WorkerTimeline(
                pid=pid,
                tasks=len(windows),
                busy=busy,
                stalled=stalled,
                trailing_idle=trailing,
            ))
            compute += busy
            stalled_total += stalled
            idle += trailing

        # Workers that never executed a task still occupied a slot.
        slots = max(self.workers, len(by_pid), 1)
        idle += (slots - len(by_pid)) * elapsed
        capacity = slots * elapsed

        # Carve measured parent-side serialization and cache work out of
        # worker stall time; whatever stall remains is genuinely IPC /
        # dispatch.  min() keeps the five buckets an exact partition
        # even when parent work overlapped worker compute.
        serialization = min(self._serialization, stalled_total)
        cache = min(self._cache, stalled_total - serialization)
        ipc = stalled_total - serialization - cache

        report = AttributionReport(
            phase=self.phase,
            workers=self.workers,
            slots=slots,
            tasks=self._task_count,
            elapsed=elapsed,
            capacity=capacity,
            compute=compute,
            serialization=serialization,
            ipc=ipc,
            idle=idle,
            cache=cache,
            serialization_measured=self._serialization,
            cache_measured=self._cache,
            serialized_bytes=self._serialized_bytes,
            queue_depth_samples=tuple(self._queue_depths),
            per_worker=tuple(timelines),
        )
        if self._recorder is not None:
            self._recorder.add_report(report)
        return report


class PerfRecorder:
    """The performance-attribution bundle for one run.

    Holds the kernel accounting, the deterministic profiler, and every
    batch :class:`AttributionReport` produced while it was active.
    Activate ambiently (``instrumented(perf=recorder)``) or pass to
    :class:`~repro.sim.Simulator` / the evaluation engine explicitly.
    """

    def __init__(
        self, kernel_interval: int = 1000, task_interval: int = 1
    ) -> None:
        self.kernel = KernelAccounting()
        self.profiler = CounterProfiler(
            kernel_interval=kernel_interval, task_interval=task_interval
        )
        self.batches: List[AttributionReport] = []

    def start_batch(self, phase: str, workers: int, tasks: int) -> BatchPerf:
        """A builder that will append its report here on finish()."""
        return BatchPerf(self, phase, workers, tasks)

    def add_report(self, report: AttributionReport) -> None:
        self.batches.append(report)

    def merge_worker(self, record: Optional[Mapping[str, object]]) -> None:
        """Fold one engine-worker perf record (from ``_obs_call``) in."""
        if not record:
            return
        kernel = record.get("kernel")
        if kernel:
            self.kernel.merge(kernel)  # type: ignore[arg-type]
        samples = record.get("samples")
        if samples:
            self.profiler.merge_folded(samples)  # type: ignore[arg-type]

    def to_dict(self) -> dict:
        return {
            "batches": [report.to_dict() for report in self.batches],
            "kernel": self.kernel.to_dict(),
            "profile_samples": self.profiler.sample_count,
        }

    def write_artifacts(self, directory: Path) -> List[Path]:
        """Write the four profile artifacts; returns the paths written.

        ``attribution.json`` (machine-readable report + kernel
        accounting), ``attribution.txt`` (the human rendering),
        ``profile.collapsed`` (flamegraph.pl / speedscope importable),
        and ``profile.speedscope.json``.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written: List[Path] = []

        def _write(name: str, text: str) -> None:
            path = directory / name
            path.write_text(text, encoding="utf-8")
            written.append(path)

        _write(
            "attribution.json",
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
        )
        _write(
            "attribution.txt",
            format_attribution(self.batches)
            + "\n\n"
            + format_kernel_accounting(self.kernel)
            + "\n",
        )
        _write("profile.collapsed", self.profiler.collapsed())
        _write(
            "profile.speedscope.json",
            json.dumps(self.profiler.speedscope(), indent=2) + "\n",
        )
        return written


def _seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.3f}ms"
    return f"{value * 1e6:.1f}us"


def format_attribution(reports: Iterable[AttributionReport]) -> str:
    """Render attribution reports as an aligned text table."""
    reports = list(reports)
    if not reports:
        return "performance attribution — no engine batches recorded"
    lines = [f"performance attribution — {len(reports)} batch(es)", ""]
    header = (
        "phase", "workers", "tasks", "elapsed",
        *BUCKETS, "coverage",
    )
    rows = [header]
    for report in reports:
        rows.append((
            report.phase,
            str(report.slots),
            str(report.tasks),
            _seconds(report.elapsed),
            *(f"{report.share(name):.1%}" for name in BUCKETS),
            f"{report.coverage:.1%}",
        ))
    widths = [
        max(len(row[column]) for row in rows)
        for column in range(len(header))
    ]
    for index, row in enumerate(rows):
        lines.append("  ".join(
            cell.ljust(width) for cell, width in zip(row, widths)
        ).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    worst = min(reports, key=lambda report: report.parallel_efficiency)
    lines.append("")
    lines.append(
        f"parallel efficiency floor: {worst.parallel_efficiency:.1%} "
        f"({worst.phase}: compute {_seconds(worst.compute)} of "
        f"{_seconds(worst.capacity)} capacity)"
    )
    return "\n".join(lines)


def format_kernel_accounting(accounting: KernelAccounting, top: int = 20) -> str:
    """Render per-event-type kernel accounting as an aligned table."""
    if not accounting.counts:
        return "kernel event accounting — no events recorded"
    total_seconds = accounting.total_seconds
    lines = [
        f"kernel event accounting — {len(accounting.counts)} event type(s), "
        f"{accounting.total_events} event(s), "
        f"{_seconds(total_seconds)} self-time",
        "",
    ]
    ranked = sorted(
        accounting.counts,
        key=lambda name: (-accounting.seconds.get(name, 0.0), name),
    )[:top]
    rows = [("event type", "count", "self-time", "share")]
    for name in ranked:
        seconds = accounting.seconds.get(name, 0.0)
        share = seconds / total_seconds if total_seconds > 0.0 else 0.0
        rows.append((
            name,
            str(accounting.counts[name]),
            _seconds(seconds),
            f"{share:.1%}",
        ))
    widths = [
        max(len(row[column]) for row in rows) for column in range(4)
    ]
    for index, row in enumerate(rows):
        lines.append("  ".join(
            cell.ljust(width) for cell, width in zip(row, widths)
        ).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def worker_perf_record(
    recorder: PerfRecorder,
) -> Dict[str, object]:
    """The transport form an engine worker returns to the parent."""
    return {
        "pid": os.getpid(),
        "kernel": recorder.kernel.snapshot(),
        "samples": recorder.profiler.folded(),
    }
