"""Analytics over exported observability artifacts.

:mod:`repro.obs.metrics` and :mod:`repro.obs.tracing` are the *emit*
side of observability; this module is the *consume* side, operating on
the files those layers write:

* :class:`TraceAnalysis` reads a Chrome trace-event JSONL file (written
  by :meth:`~repro.obs.tracing.Tracer.export`) back into a span tree —
  via the ``span_id``/``parent_id`` identities every event carries —
  and answers the questions a timeline viewer answers visually:
  the **critical path** (the chain of ever-narrower spans that bounds
  the run's wall time), **per-category self time** (time inside spans
  of a category minus their children — where the time actually went),
  the **top-k spans** by duration, and **per-worker utilization**
  (busy fraction of each process that contributed spans — how well an
  ``--workers N`` engine run kept its pool fed);

* :func:`diff_registries` compares two
  :class:`~repro.obs.metrics.MetricsRegistry` snapshots series by
  series — histogram-aware (count/sum/mean movement, not just scalars)
  — which turns ``--metrics`` files from single-run curiosities into
  regression evidence: did this change do more solver fallbacks, fewer
  cache hits, slower engine tasks than the last run?

Both are pure functions of their inputs (no wall clock, no ambient
state), rendered as text by :func:`format_trace_report` and
:func:`format_diff_table` and surfaced as the ``repro trace-report``
and ``repro diff`` CLI subcommands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ObservabilityError
from .metrics import Histogram, MetricsRegistry
from .tracing import PathLike, read_trace

__all__ = [
    "SpanNode",
    "WorkerUtilization",
    "TraceAnalysis",
    "format_trace_report",
    "SeriesDiff",
    "RegistryDiff",
    "diff_registries",
    "format_diff_table",
]


# ---------------------------------------------------------------------------
# Trace analytics
# ---------------------------------------------------------------------------

@dataclass
class SpanNode:
    """One span of a reconstructed trace tree.

    Durations and timestamps are microseconds, as exported.
    ``self_time`` is the span's duration minus its children's — the time
    attributable to the span's own code rather than anything it called.
    """

    name: str
    category: str
    span_id: str
    parent_id: Optional[str]
    ts: float
    dur: float
    pid: int
    tid: int
    args: Dict[str, Any]
    children: List["SpanNode"] = field(default_factory=list)
    self_time: float = 0.0

    @property
    def end(self) -> float:
        return self.ts + self.dur


@dataclass(frozen=True)
class WorkerUtilization:
    """Busy summary of one process observed in a trace.

    ``busy`` is the union of the process's top-level span intervals
    (nested spans never double-count), ``utilization`` that busy time
    over the whole trace's wall span.
    """

    pid: int
    spans: int
    busy: float
    utilization: float


def _merged_length(intervals: List[Tuple[float, float]]) -> float:
    """Total length of a union of (start, end) intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    total = 0.0
    current_start, current_end = intervals[0]
    for start, end in intervals[1:]:
        if start > current_end:
            total += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    return total + (current_end - current_start)


class TraceAnalysis:
    """A span tree reconstructed from exported trace events.

    Build with :meth:`from_file` (validates the JSONL schema via
    :func:`~repro.obs.tracing.read_trace`) or :meth:`from_events` (a
    list already in memory, e.g. ``tracer.events``).

    Examples
    --------
    >>> from repro.obs import Tracer
    >>> tracer = Tracer()
    >>> with tracer.span("outer", category="engine"):
    ...     with tracer.span("inner", category="solver"):
    ...         pass
    >>> analysis = TraceAnalysis.from_events(tracer.events)
    >>> [node.name for node in analysis.critical_path()]
    ['outer', 'inner']
    """

    def __init__(self, spans: List[SpanNode]):
        self.spans = spans
        by_id = {node.span_id: node for node in spans}
        self.roots: List[SpanNode] = []
        for node in spans:
            parent = (
                by_id.get(node.parent_id)
                if node.parent_id is not None
                else None
            )
            if parent is None:
                self.roots.append(node)
            else:
                parent.children.append(node)
        for node in spans:
            child_time = sum(child.dur for child in node.children)
            node.self_time = max(node.dur - child_time, 0.0)

    @classmethod
    def from_events(cls, events: Sequence[Dict[str, Any]]) -> "TraceAnalysis":
        """Build from trace-event dicts (exported or in-memory)."""
        spans = []
        for event in events:
            try:
                args = dict(event.get("args") or {})
                spans.append(SpanNode(
                    name=str(event["name"]),
                    category=str(event.get("cat", "")),
                    span_id=str(args.get("span_id", id(event))),
                    parent_id=(
                        str(args["parent_id"]) if "parent_id" in args else None
                    ),
                    ts=float(event["ts"]),
                    dur=float(event["dur"]),
                    pid=int(event["pid"]),
                    tid=int(event["tid"]),
                    args=args,
                ))
            except (TypeError, KeyError, ValueError) as exc:
                raise ObservabilityError(
                    f"malformed trace event {event!r}: {exc}"
                ) from exc
        return cls(spans)

    @classmethod
    def from_file(cls, path: PathLike) -> "TraceAnalysis":
        """Read and analyze a JSONL trace written by ``Tracer.export``."""
        return cls.from_events(read_trace(path))

    # -- aggregate views -------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    @property
    def wall_span(self) -> Tuple[float, float]:
        """(first start, last end) over all spans; (0, 0) when empty."""
        if not self.spans:
            return (0.0, 0.0)
        return (
            min(node.ts for node in self.spans),
            max(node.end for node in self.spans),
        )

    def category_self_times(self) -> Dict[str, float]:
        """Total self time per category (microseconds), largest first."""
        totals: Dict[str, float] = {}
        for node in self.spans:
            totals[node.category] = (
                totals.get(node.category, 0.0) + node.self_time
            )
        return dict(
            sorted(totals.items(), key=lambda item: (-item[1], item[0]))
        )

    def name_aggregates(self) -> Dict[str, Tuple[int, float, float]]:
        """Per span name: (count, total duration, total self time)."""
        totals: Dict[str, Tuple[int, float, float]] = {}
        for node in self.spans:
            count, dur, self_time = totals.get(node.name, (0, 0.0, 0.0))
            totals[node.name] = (
                count + 1, dur + node.dur, self_time + node.self_time
            )
        return dict(
            sorted(totals.items(), key=lambda item: (-item[1][2], item[0]))
        )

    def top_spans(self, k: int = 10) -> List[SpanNode]:
        """The *k* individually longest spans, longest first."""
        return sorted(
            self.spans, key=lambda node: (-node.dur, node.ts)
        )[:max(k, 0)]

    def critical_path(self) -> List[SpanNode]:
        """The widest root and, level by level, its widest child.

        With nested complete spans, a parent's duration covers its
        children, so the chain of locally-longest spans is the path
        whose leaves bound the run's wall time — the place to look
        first when a run is slow.
        """
        if not self.roots:
            return []
        path = []
        node = max(self.roots, key=lambda n: (n.dur, -n.ts))
        while True:
            path.append(node)
            if not node.children:
                return path
            node = max(node.children, key=lambda n: (n.dur, -n.ts))

    def worker_utilization(self) -> List[WorkerUtilization]:
        """Busy fraction of each process seen in the trace.

        A span is *top-level for its process* when its parent is absent
        or lives in another process; the union of those intervals is the
        process's busy time, divided by the whole trace's wall span.
        Sorted by pid.
        """
        start, end = self.wall_span
        wall = end - start
        by_id = {node.span_id: node for node in self.spans}
        intervals: Dict[int, List[Tuple[float, float]]] = {}
        counts: Dict[int, int] = {}
        for node in self.spans:
            counts[node.pid] = counts.get(node.pid, 0) + 1
            parent = (
                by_id.get(node.parent_id)
                if node.parent_id is not None
                else None
            )
            if parent is None or parent.pid != node.pid:
                intervals.setdefault(node.pid, []).append(
                    (node.ts, node.end)
                )
        summaries = []
        for pid in sorted(counts):
            busy = _merged_length(intervals.get(pid, []))
            summaries.append(WorkerUtilization(
                pid=pid,
                spans=counts[pid],
                busy=busy,
                utilization=busy / wall if wall > 0.0 else 0.0,
            ))
        return summaries

    def wall_attribution(self) -> Dict[str, Any]:
        """Decompose trace capacity (wall x pids) into busy vs idle.

        The trace-side counterpart of the engine's
        :class:`~repro.obs.AttributionReport`: every process observed in
        the trace occupies one slot of the wall span; the union of its
        top-level spans is busy time, the rest idle.  Busy time is
        further attributed by span category (self time).  All values in
        microseconds.
        """
        start, end = self.wall_span
        wall = end - start
        workers = self.worker_utilization()
        slots = len(workers)
        capacity = wall * slots
        busy = sum(worker.busy for worker in workers)
        idle = max(capacity - busy, 0.0)
        return {
            "wall": wall,
            "pids": slots,
            "capacity": capacity,
            "busy": busy,
            "idle": idle,
            "busy_fraction": busy / capacity if capacity > 0.0 else 0.0,
            "categories": self.category_self_times(),
        }


def _us(value: float) -> str:
    """Microseconds rendered at a human scale."""
    if value >= 1e6:
        return f"{value / 1e6:.3f} s"
    if value >= 1e3:
        return f"{value / 1e3:.3f} ms"
    return f"{value:.1f} us"


def format_trace_report(analysis: TraceAnalysis, top: int = 10) -> str:
    """Render a :class:`TraceAnalysis` as a multi-section text report."""
    from ..reporting import format_table

    start, end = analysis.wall_span
    sections = [
        f"{len(analysis)} span(s), wall span {_us(end - start)}"
    ]

    path = analysis.critical_path()
    if path:
        rows = [
            [depth, node.name, node.category, _us(node.dur),
             _us(node.self_time)]
            for depth, node in enumerate(path)
        ]
        sections.append(format_table(
            ["depth", "span", "category", "duration", "self"],
            rows,
            title="critical path",
        ))

    categories = analysis.category_self_times()
    if categories:
        total = sum(categories.values()) or 1.0
        rows = [
            [category or "-", _us(self_time), f"{self_time / total:.1%}"]
            for category, self_time in categories.items()
        ]
        sections.append(format_table(
            ["category", "self time", "share"],
            rows,
            title="self time by category",
        ))

    spans = analysis.top_spans(top)
    if spans:
        rows = [
            [node.name, node.category, _us(node.dur), _us(node.self_time),
             str(node.pid)]
            for node in spans
        ]
        sections.append(format_table(
            ["span", "category", "duration", "self", "pid"],
            rows,
            title=f"top {len(spans)} spans by duration",
        ))

    workers = analysis.worker_utilization()
    if workers:
        rows = [
            [str(w.pid), str(w.spans), _us(w.busy), f"{w.utilization:.1%}"]
            for w in workers
        ]
        sections.append(format_table(
            ["pid", "spans", "busy", "utilization"],
            rows,
            title="per-worker utilization",
        ))

    attribution = analysis.wall_attribution()
    if attribution["capacity"] > 0.0:
        busy_share = attribution["busy_fraction"]
        lines = [
            "attribution",
            f"  wall {_us(attribution['wall'])} across "
            f"{attribution['pids']} pid(s) -> capacity "
            f"{_us(attribution['capacity'])}",
            f"  busy {_us(attribution['busy'])} ({busy_share:.1%}), "
            f"idle {_us(attribution['idle'])} ({1.0 - busy_share:.1%})",
        ]
        total_self = sum(attribution["categories"].values())
        if total_self > 0.0:
            shares = ", ".join(
                f"{category or '-'} {self_time / total_self:.1%}"
                for category, self_time in attribution["categories"].items()
            )
            lines.append(f"  busy self-time by category: {shares}")
        sections.append("\n".join(lines))

    return "\n\n".join(sections)


# ---------------------------------------------------------------------------
# Metrics diffing
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SeriesDiff:
    """One series compared across two registry snapshots.

    ``old``/``new`` are the scalar values for counters and gauges and
    the observation **means** for histograms; ``old_count``/``new_count``
    carry the histogram observation counts (0 for scalars).  ``status``
    is ``"changed"``, ``"unchanged"``, ``"added"``, or ``"removed"``.
    """

    name: str
    labels: Tuple[Tuple[str, str], ...]
    kind: str
    status: str
    old: float
    new: float

    old_count: int = 0
    new_count: int = 0

    @property
    def delta(self) -> float:
        return self.new - self.old

    @property
    def ratio(self) -> float:
        """new / old; ``inf`` from zero, ``nan`` when both sides are 0."""
        if self.old == 0.0:
            return float("nan") if self.new == 0.0 else float("inf")
        return self.new / self.old


@dataclass(frozen=True)
class RegistryDiff:
    """All series of two snapshots, aligned by ``(name, labels)``."""

    entries: Tuple[SeriesDiff, ...]

    @property
    def changed(self) -> Tuple[SeriesDiff, ...]:
        return tuple(e for e in self.entries if e.status == "changed")

    @property
    def added(self) -> Tuple[SeriesDiff, ...]:
        return tuple(e for e in self.entries if e.status == "added")

    @property
    def removed(self) -> Tuple[SeriesDiff, ...]:
        return tuple(e for e in self.entries if e.status == "removed")

    def __len__(self) -> int:
        return len(self.entries)


def _series_values(metric) -> Tuple[float, int]:
    """(comparison value, observation count) of one instrument."""
    if isinstance(metric, Histogram):
        mean = metric.mean if metric.count else 0.0
        return float(mean), int(metric.count)
    return float(metric.value), 0


def diff_registries(
    old: MetricsRegistry, new: MetricsRegistry
) -> RegistryDiff:
    """Compare two registry snapshots series by series.

    Counters and gauges compare their values; histograms compare their
    observation counts and means (a histogram is "changed" when either
    moved).  Series present on only one side are reported as ``added``
    (only in *new*) or ``removed`` (only in *old*).  Two histograms of
    one family declared with different bucket bounds are a hard error —
    the same condition :func:`~repro.obs.metrics.merge_registries`
    rejects — naming the offending family.

    Examples
    --------
    >>> before, after = MetricsRegistry(), MetricsRegistry()
    >>> before.counter("solves").inc(2)
    >>> after.counter("solves").inc(5)
    >>> diff = diff_registries(before, after)
    >>> diff.entries[0].delta
    3.0
    """
    old_series = {(m.name, m.labels): m for m in old}
    new_series = {(m.name, m.labels): m for m in new}
    entries: List[SeriesDiff] = []
    for key in sorted(set(old_series) | set(new_series)):
        name, labels = key
        before = old_series.get(key)
        after = new_series.get(key)
        metric = after if after is not None else before
        if (
            before is not None and after is not None
            and before.kind != after.kind
        ):
            raise ObservabilityError(
                f"cannot diff series {name!r}: it is a {before.kind} in the "
                f"old snapshot but a {after.kind} in the new one"
            )
        if (
            isinstance(before, Histogram) and isinstance(after, Histogram)
            and before.bounds != after.bounds
        ):
            raise ObservabilityError(
                f"cannot diff histogram {name!r}: bucket bounds differ "
                f"between snapshots ({before.bounds} vs {after.bounds})"
            )
        old_value, old_count = (
            _series_values(before) if before is not None else (0.0, 0)
        )
        new_value, new_count = (
            _series_values(after) if after is not None else (0.0, 0)
        )
        if before is None:
            status = "added"
        elif after is None:
            status = "removed"
        elif old_value != new_value or old_count != new_count:
            status = "changed"
        else:
            status = "unchanged"
        entries.append(SeriesDiff(
            name=name,
            labels=labels,
            kind=metric.kind,
            status=status,
            old=old_value,
            new=new_value,
            old_count=old_count,
            new_count=new_count,
        ))
    return RegistryDiff(entries=tuple(entries))


def format_diff_table(
    diff: RegistryDiff, include_unchanged: bool = False
) -> str:
    """Render a :class:`RegistryDiff` as a fixed-width table."""
    from ..reporting import format_table

    rows = []
    for entry in diff.entries:
        if entry.status == "unchanged" and not include_unchanged:
            continue
        labels = ",".join(f"{k}={v}" for k, v in entry.labels)
        if entry.kind == "histogram":
            old = f"n={entry.old_count} mean={entry.old:.6g}"
            new = f"n={entry.new_count} mean={entry.new:.6g}"
            delta = f"{entry.new_count - entry.old_count:+d} obs"
        else:
            old = f"{entry.old:g}"
            new = f"{entry.new:g}"
            delta = f"{entry.delta:+g}"
        ratio = entry.ratio
        ratio_text = "n/a" if ratio != ratio else (
            "inf" if ratio == float("inf") else f"{ratio:.3f}x"
        )
        rows.append([
            entry.name, labels, entry.kind, entry.status,
            old, new, delta, ratio_text,
        ])
    changed = len(diff.changed)
    title = (
        f"{changed} changed, {len(diff.added)} added, "
        f"{len(diff.removed)} removed, "
        f"{len(diff) - changed - len(diff.added) - len(diff.removed)} "
        "unchanged"
    )
    if not rows:
        return title
    return format_table(
        ["metric", "labels", "kind", "status", "old", "new", "delta",
         "ratio"],
        rows,
        title=title,
    )
