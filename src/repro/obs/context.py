"""Ambient activation of instrumentation — the no-op default.

Instrumented code in the hot layers (the DES kernel, the CTMC solvers,
the engine, journals, campaigns) never *requires* a registry or tracer:
each layer reads the ambient :class:`Instrumentation` once at a natural
boundary (object construction, function entry) and guards every
recording site with an ``is not None`` check.  With nothing activated —
the default — the entire subsystem reduces to that one pointer check,
which is what keeps disabled-mode overhead inside the benchmark-guarded
3% budget (``benchmarks/bench_obs_overhead.py``).

Activation is process-global and explicitly scoped:

>>> from repro.obs import MetricsRegistry, instrumented
>>> registry = MetricsRegistry()
>>> with instrumented(metrics=registry):
...     pass  # everything constructed here records into `registry`

The evaluation engine re-creates an equivalent ambient scope inside
each worker process, so instrumented code deep inside a task records
into a worker-local registry that is merged back by name.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - types only
    from .metrics import MetricsRegistry
    from .perf import PerfRecorder
    from .tracing import Tracer

__all__ = [
    "Instrumentation",
    "activate",
    "deactivate",
    "active",
    "active_metrics",
    "active_perf",
    "active_tracer",
    "instrumented",
]


@dataclass(frozen=True)
class Instrumentation:
    """The ambient bundle: metrics, a tracer, and/or a perf recorder."""

    metrics: Optional["MetricsRegistry"] = None
    tracer: Optional["Tracer"] = None
    perf: Optional["PerfRecorder"] = None


_ACTIVE: Optional[Instrumentation] = None


def activate(instrumentation: Instrumentation) -> None:
    """Make *instrumentation* the process-wide ambient bundle."""
    global _ACTIVE
    _ACTIVE = instrumentation


def deactivate() -> None:
    """Return to the no-op default."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[Instrumentation]:
    """The ambient bundle, or None when instrumentation is disabled."""
    return _ACTIVE


def active_metrics() -> Optional["MetricsRegistry"]:
    """The ambient registry, or None."""
    return _ACTIVE.metrics if _ACTIVE is not None else None


def active_tracer() -> Optional["Tracer"]:
    """The ambient tracer, or None."""
    return _ACTIVE.tracer if _ACTIVE is not None else None


def active_perf() -> Optional["PerfRecorder"]:
    """The ambient performance recorder, or None."""
    return _ACTIVE.perf if _ACTIVE is not None else None


@contextmanager
def instrumented(
    metrics: Optional["MetricsRegistry"] = None,
    tracer: Optional["Tracer"] = None,
    perf: Optional["PerfRecorder"] = None,
) -> Iterator[Instrumentation]:
    """Activate an ambient bundle for the duration of the block.

    The previous bundle (usually None) is restored on exit, even on
    error, so scopes nest correctly.
    """
    global _ACTIVE
    previous = _ACTIVE
    bundle = Instrumentation(metrics=metrics, tracer=tracer, perf=perf)
    _ACTIVE = bundle
    try:
        yield bundle
    finally:
        _ACTIVE = previous
