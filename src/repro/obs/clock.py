"""The one monotonic clock source for elapsed-time measurements.

Every piece of instrumentation in this library — heartbeat throttling,
span timings, task-latency histograms — measures elapsed time against
the *same* monotonic clock, so two timings taken by different layers of
one run are directly comparable.  Mixing ``time.time()`` into elapsed
math is a classic observability bug: wall clocks jump under NTP
adjustment and DST, and a heartbeat that throttles on a different clock
than the spans it narrates produces timelines that do not line up.

* :func:`monotonic` — the shared monotonic clock (seconds, arbitrary
  epoch).  Use it for **all** elapsed/duration math.
* :func:`walltime` — the wall clock (seconds since the Unix epoch).
  Use it **only** to anchor a monotonic timeline to calendar time (the
  tracer stores one wall reading per trace so traces from different
  processes can be aligned); never subtract two wall readings to get a
  duration.
"""

from __future__ import annotations

import time

__all__ = ["monotonic", "walltime"]

#: Shared monotonic clock; aliased (not wrapped) so the hot paths pay no
#: extra function call.  Seconds from an arbitrary, never-decreasing epoch.
monotonic = time.monotonic

#: Wall clock, for *anchoring* monotonic timelines only — never for
#: elapsed math.
walltime = time.time
