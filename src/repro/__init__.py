"""repro — user-perceived availability evaluation of web-based applications.

A from-scratch reproduction of *"A User-Perceived Availability Evaluation
of a Web Based Travel Agency"* (Kaâniche, Kanoun & Martinello, DSN 2003):
a hierarchical dependability-modeling framework spanning four levels —
user, function, service and resource — with a composite
performance-availability measure that accounts for both classical
failures and requests lost to full server buffers.

Quickstart
----------
>>> from repro.ta import CLASS_A, CLASS_B, TravelAgencyModel
>>> ta = TravelAgencyModel()                    # the paper's redundant TA
>>> round(ta.web_service_availability(), 9)     # paper: 0.999995587
0.999995587
>>> result = ta.user_availability(CLASS_B)
>>> 0.95 < result.availability < 0.99
True

Package map
-----------
``repro.markov``
    DTMC/CTMC machinery: solvers, transient analysis, reward models.
``repro.queueing``
    M/M/1[/K], M/M/c[/K], Erlang B/C, birth-death queues.
``repro.rbd`` / ``repro.faulttree`` / ``repro.spn``
    Structure modeling techniques (Section 2 of the paper).
``repro.availability``
    Resource-level failure/repair models, including the coverage farms
    of Figs. 9-10 and the composite web-service model of eqs. 2/5/9.
``repro.profiles``
    Operational profiles: session graphs, scenario distributions,
    calibration from observed scenario frequencies.
``repro.core``
    The hierarchical four-level framework (the paper's contribution).
``repro.ta``
    The Travel Agency case study: architectures, user classes,
    closed-form equations, economics.
``repro.bayes``
    Cloud-era models: Bayesian networks of binary availability nodes
    with exact variable-elimination inference, k-out-of-n replica sets
    under common-cause zonal failures, the autoscaling M/M/c/K farm,
    and service-function chains (``repro cloud``).
``repro.sensitivity``
    Parameter sweeps and tornado analyses.
``repro.sim``
    Discrete-event simulation used to cross-validate analytic results,
    including Monte-Carlo sampling of the Bayesian-network models.
``repro.runtime``
    Fault-tolerant execution substrate: budgets/deadlines, cooperative
    cancellation, crash-consistent run journals, heartbeats, and
    journaled solver escalation.
``repro.obs``
    Observability: metrics registry with OpenMetrics exposition and
    order-invariant merging, span tracing in Chrome trace-event format
    with cross-process propagation, and a profiling harness — near-zero
    overhead when disabled.
``repro.reporting``
    Downtime conversions and table formatting for the benches.
"""

from . import (
    availability,
    core,
    errors,
    markov,
    profiles,
    queueing,
    rbd,
    runtime,
)

__version__ = "1.0.0"

__all__ = [
    "availability",
    "core",
    "errors",
    "markov",
    "profiles",
    "queueing",
    "rbd",
    "runtime",
    "__version__",
]
