"""Continuous-time Markov chains over labelled state spaces.

The availability models of the paper (Figs. 9 and 10) are small CTMCs:
states count operational web servers, transitions carry failure, repair
and reconfiguration rates.  This module provides the generic CTMC type
with steady-state, transient and absorbing analyses; model-specific
closed forms live in :mod:`repro.availability` and are tested against the
numeric solutions produced here.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_distribution, check_positive, check_probability, check_rate
from ..errors import ModelStructureError, ValidationError
from .dtmc import DTMC
from .solvers import (
    check_generator,
    steady_state_gth,
    steady_state_linear,
    steady_state as _robust_steady_state,
)
from . import transient as _transient

__all__ = ["CTMC"]

State = Hashable


class CTMC:
    """A finite continuous-time Markov chain with hashable state labels.

    Parameters
    ----------
    states:
        Sequence of distinct hashable labels fixing matrix order.
    generator:
        Infinitesimal generator ``Q``: non-negative off-diagonals, rows
        summing to zero.  ``Q[i, j]`` (i != j) is the transition rate from
        ``states[i]`` to ``states[j]``.

    Examples
    --------
    A two-state repairable component with failure rate ``lam`` and repair
    rate ``mu`` has steady-state availability ``mu / (lam + mu)``:

    >>> lam, mu = 1e-3, 1.0
    >>> chain = CTMC(["up", "down"], [[-lam, lam], [mu, -mu]])
    >>> pi = chain.steady_state()
    >>> abs(pi["up"] - mu / (lam + mu)) < 1e-12
    True
    """

    def __init__(
        self,
        states: Sequence[State],
        generator: Sequence[Sequence[float]],
    ):
        self._states: Tuple[State, ...] = tuple(states)
        if len(set(self._states)) != len(self._states):
            raise ValidationError("state labels must be distinct")
        if not self._states:
            raise ValidationError("a CTMC needs at least one state")
        self._index: Dict[State, int] = {s: i for i, s in enumerate(self._states)}
        q = check_generator(np.asarray(generator, dtype=float))
        if q.shape[0] != len(self._states):
            raise ValidationError(
                f"generator shape {q.shape} does not match {len(self._states)} states"
            )
        self._q = q

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rates(
        cls,
        rates: Mapping[Tuple[State, State], float],
        states: Optional[Sequence[State]] = None,
    ) -> "CTMC":
        """Build a chain from a ``{(src, dst): rate}`` mapping.

        Self-rates are rejected; diagonal entries are derived.  States may
        be given explicitly to fix ordering (and to include states with no
        outgoing transitions, which become absorbing).
        """
        if states is None:
            seen: List[State] = []
            for src, dst in rates:
                for node in (src, dst):
                    if node not in seen:
                        seen.append(node)
            states = seen
        states = tuple(states)
        index = {s: i for i, s in enumerate(states)}
        n = len(states)
        q = np.zeros((n, n))
        for (src, dst), rate in rates.items():
            if src == dst:
                raise ValidationError(f"self-transition on {src!r} is not allowed")
            if src not in index or dst not in index:
                raise ValidationError(f"rate ({src!r}, {dst!r}) references unknown state")
            q[index[src], index[dst]] += check_rate(rate, f"rate({src!r}->{dst!r})")
        np.fill_diagonal(q, -q.sum(axis=1))
        return cls(states, q)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def states(self) -> Tuple[State, ...]:
        """State labels in matrix order."""
        return self._states

    @property
    def generator(self) -> np.ndarray:
        """A copy of the infinitesimal generator matrix."""
        return self._q.copy()

    def __len__(self) -> int:
        return len(self._states)

    def __repr__(self) -> str:
        return f"CTMC(states={len(self._states)})"

    def index_of(self, state: State) -> int:
        """Matrix index of a state label."""
        try:
            return self._index[state]
        except KeyError:
            raise ValidationError(f"unknown state {state!r}") from None

    def rate(self, src: State, dst: State) -> float:
        """Transition rate from *src* to *dst* (0 when absent)."""
        i, j = self.index_of(src), self.index_of(dst)
        if i == j:
            raise ValidationError("diagonal entries are exit rates, not transitions")
        return float(self._q[i, j])

    def exit_rate(self, state: State) -> float:
        """Total rate of leaving *state* (the negated diagonal entry)."""
        i = self.index_of(state)
        return float(-self._q[i, i])

    def holding_time(self, state: State) -> float:
        """Mean sojourn time in *state*; ``inf`` for absorbing states."""
        rate = self.exit_rate(state)
        return float("inf") if rate == 0.0 else 1.0 / rate

    def absorbing_states(self) -> Tuple[State, ...]:
        """States with zero exit rate."""
        return tuple(
            s for i, s in enumerate(self._states) if -self._q[i, i] == 0.0
        )

    # ------------------------------------------------------------------
    # Derived chains
    # ------------------------------------------------------------------
    def embedded_dtmc(self) -> DTMC:
        """The jump chain: transition probabilities at departure instants.

        Absorbing CTMC states become absorbing DTMC states.
        """
        n = len(self)
        p = np.zeros((n, n))
        for i in range(n):
            exit_rate = -self._q[i, i]
            if exit_rate == 0.0:
                p[i, i] = 1.0
            else:
                p[i] = self._q[i] / exit_rate
                p[i, i] = 0.0
        return DTMC(self._states, p)

    def uniformized_dtmc(self, rate: Optional[float] = None) -> Tuple[DTMC, float]:
        """Uniformized chain ``P = I + Q / Lambda`` and the rate used.

        Parameters
        ----------
        rate:
            Uniformization rate ``Lambda``; must be at least the maximum
            exit rate.  Defaults to 1.05x the maximum exit rate (strictly
            above it, which makes the uniformized chain aperiodic).
        """
        max_exit = float(np.max(-np.diag(self._q)))
        if rate is None:
            rate = max_exit * 1.05 if max_exit > 0 else 1.0
        else:
            rate = check_positive(rate, "uniformization rate")
            if rate < max_exit:
                raise ValidationError(
                    f"uniformization rate {rate} is below the maximum exit rate {max_exit}"
                )
        p = np.eye(len(self)) + self._q / rate
        return DTMC(self._states, p), rate

    # ------------------------------------------------------------------
    # Steady-state and transient analysis
    # ------------------------------------------------------------------
    def steady_state(self, method: str = "auto") -> Dict[State, float]:
        """Steady-state distribution of an irreducible chain.

        Parameters
        ----------
        method:
            ``"auto"`` (default; the robust fallback chain
            :func:`~repro.markov.solvers.steady_state`: linear, then GTH,
            then power iteration, warning which fallback was taken),
            ``"gth"`` (subtraction-free, robust for stiff models) or
            ``"linear"`` (direct solve, faster for large chains).
        """
        if method == "gth":
            pi = steady_state_gth(self._q)
        elif method == "linear":
            pi = steady_state_linear(self._q)
        elif method == "auto":
            pi = _robust_steady_state(self._q)
        else:
            raise ValidationError(f"unknown method {method!r}")
        return dict(zip(self._states, pi.tolist()))

    def transient_distribution(
        self,
        initial: Mapping[State, float],
        time: float,
        tol: float = 1e-12,
    ) -> Dict[State, float]:
        """State distribution at *time* from *initial*, by uniformization."""
        p0 = self._vector(initial)
        result = _transient.uniformization(self._q, p0, time, tol=tol)
        return dict(zip(self._states, result.tolist()))

    def probability_in(
        self,
        states: Iterable[State],
        distribution: Mapping[State, float],
    ) -> float:
        """Total probability mass of *distribution* on the given states."""
        wanted = {self.index_of(s) for s in states}
        return float(
            sum(p for s, p in distribution.items() if self.index_of(s) in wanted)
        )

    # ------------------------------------------------------------------
    # Absorbing analysis
    # ------------------------------------------------------------------
    def mean_time_to_absorption(self, start: State) -> float:
        """Expected time until the chain hits any absorbing state.

        This is the classic MTTF computation when the absorbing states
        model system failure.  Computed by subtraction-free state
        reduction (censoring), which stays accurate even when the answer
        dwarfs the individual rates by tens of orders of magnitude —
        the regime of highly redundant farms, where a naive linear solve
        loses all precision.

        Raises
        ------
        ModelStructureError
            If the chain has no absorbing state, or the start state can
            reach a region from which absorption is impossible (infinite
            expected time).
        """
        absorbing = {self.index_of(s) for s in self.absorbing_states()}
        if not absorbing:
            raise ModelStructureError("chain has no absorbing state")
        start_idx = self.index_of(start)
        if start_idx in absorbing:
            return 0.0

        # Restrict to transient states reachable from the start.
        reachable = self._reachable_from(start_idx)
        transient = [
            i for i in range(len(self))
            if i in reachable and i not in absorbing
        ]
        index = {state: k for k, state in enumerate(transient)}
        n = len(transient)

        # Embedded-chain quantities on the transient block:
        #   p[i][j]  transition probability among transient states,
        #   a[i]     probability of jumping straight into absorption,
        #   h[i]     expected time accumulated per visit.
        p = np.zeros((n, n))
        a = np.zeros(n)
        h = np.zeros(n)
        for i_state in transient:
            i = index[i_state]
            exit_rate = -self._q[i_state, i_state]
            if exit_rate == 0.0:
                raise ModelStructureError(
                    f"state {self._states[i_state]!r} is absorbing but was "
                    "classified transient"
                )
            h[i] = 1.0 / exit_rate
            for j_state in range(len(self)):
                if j_state == i_state:
                    continue
                rate = self._q[i_state, j_state]
                if rate <= 0.0:
                    continue
                probability = rate / exit_rate
                if j_state in absorbing:
                    a[i] += probability
                elif j_state in index:
                    p[i, index[j_state]] += probability
                else:
                    # Unreachable from start yet entered from a reachable
                    # state: impossible by construction of `reachable`.
                    raise ModelStructureError("inconsistent reachability")

        start_k = index[start_idx]
        # Eliminate every transient state except the start, folding its
        # time and absorption mass into its predecessors.  All updates
        # are additions of non-negative numbers.
        alive = [k for k in range(n) if k != start_k]
        remaining = set(range(n))
        for k in alive:
            remaining.discard(k)
            denom = a[k] + sum(p[k, j] for j in remaining)
            if denom <= 0.0:
                raise ModelStructureError(
                    f"state {self._states[transient[k]]!r} cannot reach an "
                    "absorbing state: expected absorption time is infinite"
                )
            # tau_k = (h_k + sum_{j in remaining} p_kj tau_j) / denom
            for i in remaining:
                weight = p[i, k]
                if weight == 0.0:
                    continue
                factor = weight / denom
                h[i] += factor * h[k]
                a[i] += factor * a[k]
                for j in remaining:
                    if p[k, j] > 0.0:
                        p[i, j] += factor * p[k, j]
                p[i, k] = 0.0
        denom = a[start_k]
        if denom <= 0.0:
            raise ModelStructureError(
                f"state {start!r} cannot reach an absorbing state: "
                "expected absorption time is infinite"
            )
        return float(h[start_k] / denom)

    def _reachable_from(self, start_idx: int) -> set:
        """Indices reachable from *start_idx* (including itself)."""
        adjacency = self._q > 0
        seen = {start_idx}
        frontier = [start_idx]
        while frontier:
            node = frontier.pop()
            for nxt in np.nonzero(adjacency[node])[0]:
                if int(nxt) not in seen:
                    seen.add(int(nxt))
                    frontier.append(int(nxt))
        return seen

    # ------------------------------------------------------------------
    # Simulation support
    # ------------------------------------------------------------------
    def sample_sojourn(
        self, state: State, rng: np.random.Generator
    ) -> Tuple[float, Optional[State]]:
        """Sample (holding time, next state) from *state*.

        Returns ``(inf, None)`` for absorbing states.
        """
        i = self.index_of(state)
        exit_rate = -self._q[i, i]
        if exit_rate == 0.0:
            return float("inf"), None
        dwell = rng.exponential(1.0 / exit_rate)
        probs = self._q[i].copy()
        probs[i] = 0.0
        probs /= probs.sum()
        nxt = self._states[int(rng.choice(len(self), p=probs))]
        return float(dwell), nxt

    def _vector(self, distribution: Mapping[State, float]) -> np.ndarray:
        vec = np.zeros(len(self))
        for state, prob in distribution.items():
            vec[self.index_of(state)] = check_probability(prob, f"p({state!r})")
        check_distribution(vec, name="initial distribution")
        return vec
