"""Ergonomic construction of CTMCs.

:class:`CTMCBuilder` accumulates states and transitions imperatively —
the natural style when translating a drawn Markov model such as the
paper's Figs. 9 and 10 — and :func:`birth_death_chain` captures the
ubiquitous birth-death skeleton shared by queueing models and redundant
server farms.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from .._validation import check_rate
from ..errors import ModelStructureError, ValidationError
from .ctmc import CTMC

__all__ = ["CTMCBuilder", "birth_death_chain"]

State = Hashable


class CTMCBuilder:
    """Incremental builder for labelled CTMCs.

    States are registered explicitly or implicitly (first use in a
    transition); transition rates between the same pair of states
    accumulate, which lets independent causes of the same state change be
    added separately.

    Examples
    --------
    >>> b = CTMCBuilder()
    >>> _ = b.add_transition("up", "down", 1e-3)     # failure
    >>> _ = b.add_transition("down", "up", 0.5)      # repair
    >>> chain = b.build()
    >>> chain.states
    ('up', 'down')
    """

    def __init__(self):
        self._order: List[State] = []
        self._seen: set = set()
        self._rates: Dict[Tuple[State, State], float] = {}

    def add_state(self, state: State) -> "CTMCBuilder":
        """Register a state (idempotent); returns self for chaining."""
        if state not in self._seen:
            self._seen.add(state)
            self._order.append(state)
        return self

    def add_transition(self, src: State, dst: State, rate: float) -> "CTMCBuilder":
        """Add a transition; rates on the same edge accumulate."""
        if src == dst:
            raise ValidationError(f"self-transition on {src!r} is not allowed")
        check_rate(rate, f"rate({src!r}->{dst!r})")
        self.add_state(src)
        self.add_state(dst)
        self._rates[(src, dst)] = self._rates.get((src, dst), 0.0) + rate
        return self

    @property
    def states(self) -> Tuple[State, ...]:
        """States registered so far, in registration order."""
        return tuple(self._order)

    def build(self) -> CTMC:
        """Construct the CTMC.  At least one transition is required."""
        if not self._order:
            raise ModelStructureError("no states registered")
        return CTMC.from_rates(self._rates, states=self._order)


def birth_death_chain(
    birth_rates: Sequence[float],
    death_rates: Sequence[float],
    states: Optional[Sequence[State]] = None,
) -> CTMC:
    """A birth-death CTMC on states ``0 .. n``.

    Parameters
    ----------
    birth_rates:
        ``birth_rates[i]`` is the rate of ``i -> i+1``; length ``n``.
    death_rates:
        ``death_rates[i]`` is the rate of ``i+1 -> i``; length ``n``.
    states:
        Optional labels for the ``n + 1`` states; defaults to ``0 .. n``.

    Notes
    -----
    Both M/M/c/K queues (state = number of requests present) and
    repairable server farms (state = number of operational servers) are
    birth-death chains; this helper is the shared construction for both.
    """
    if len(birth_rates) != len(death_rates):
        raise ValidationError(
            f"birth_rates (len {len(birth_rates)}) and death_rates "
            f"(len {len(death_rates)}) must have equal length"
        )
    n = len(birth_rates)
    if n == 0:
        raise ValidationError("a birth-death chain needs at least one transition")
    if states is None:
        states = list(range(n + 1))
    if len(states) != n + 1:
        raise ValidationError(
            f"expected {n + 1} state labels, got {len(states)}"
        )
    builder = CTMCBuilder()
    for label in states:
        builder.add_state(label)
    for i in range(n):
        builder.add_transition(states[i], states[i + 1], check_rate(birth_rates[i], f"birth_rates[{i}]"))
        builder.add_transition(states[i + 1], states[i], check_rate(death_rates[i], f"death_rates[{i}]"))
    return builder.build()
