"""Markov reward models and the composite performance-availability measure.

The paper's web-service availability (eqs. 2, 5 and 9) is a Markov reward
model in disguise: the availability CTMC supplies steady-state
probabilities ``pi_i``, and each state earns a reward equal to the
fraction of requests *served* in that state (``1 - pK(i)`` for states
with ``i`` operational servers, 0 for down states).  The expected
steady-state reward is exactly the user-perceived web-service
availability.  :class:`MarkovRewardModel` implements that combination
generically, following the classical performability formulation of Meyer
(the paper's refs. [18, 19]).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Mapping, Optional

import numpy as np

from ..errors import ValidationError
from .ctmc import CTMC

__all__ = ["MarkovRewardModel"]

State = Hashable


class MarkovRewardModel:
    """A CTMC with a per-state reward rate.

    Parameters
    ----------
    chain:
        The underlying CTMC (typically an availability model).
    rewards:
        Either a mapping ``{state: reward}`` (missing states default to
        zero) or a callable ``state -> reward``.

    Examples
    --------
    >>> from repro.markov import CTMC
    >>> chain = CTMC(["up", "down"], [[-1e-3, 1e-3], [0.5, -0.5]])
    >>> model = MarkovRewardModel(chain, {"up": 1.0})
    >>> round(model.steady_state_reward(), 6)   # = availability
    0.998004
    """

    def __init__(
        self,
        chain: CTMC,
        rewards,
    ):
        self._chain = chain
        if callable(rewards):
            vector = {s: float(rewards(s)) for s in chain.states}
        elif isinstance(rewards, Mapping):
            unknown = set(rewards) - set(chain.states)
            if unknown:
                raise ValidationError(f"rewards reference unknown states: {unknown!r}")
            vector = {s: float(rewards.get(s, 0.0)) for s in chain.states}
        else:
            raise ValidationError(
                "rewards must be a mapping or a callable, got "
                f"{type(rewards).__name__}"
            )
        self._rewards = vector

    @property
    def chain(self) -> CTMC:
        """The underlying CTMC."""
        return self._chain

    @property
    def rewards(self) -> Dict[State, float]:
        """Per-state reward rates (copy)."""
        return dict(self._rewards)

    def reward_of(self, state: State) -> float:
        """Reward rate of one state."""
        if state not in self._rewards:
            raise ValidationError(f"unknown state {state!r}")
        return self._rewards[state]

    def steady_state_reward(self, method: str = "gth") -> float:
        """Expected reward rate under the steady-state distribution.

        For 0/1 rewards this is the steady-state probability of the
        reward-1 states (classical availability); for the paper's
        composite measure it is the long-run fraction of user requests
        that are actually served.
        """
        pi = self._chain.steady_state(method=method)
        return float(sum(pi[s] * self._rewards[s] for s in self._chain.states))

    def expected_reward_at(
        self, initial: Mapping[State, float], time: float
    ) -> float:
        """Expected instantaneous reward rate at a given time.

        Integrating this over ``[0, T]`` yields accumulated reward
        (e.g. expected served-request seconds).
        """
        dist = self._chain.transient_distribution(initial, time)
        return float(sum(dist[s] * self._rewards[s] for s in self._chain.states))

    def accumulated_reward(
        self,
        initial: Mapping[State, float],
        horizon: float,
        steps: int = 200,
    ) -> float:
        """Expected reward accumulated over ``[0, horizon]``.

        Computed by composite Simpson integration of the instantaneous
        expected reward; *steps* must be even and is rounded up if not.

        Notes
        -----
        For availability models this gives expected uptime over a mission
        window — e.g. expected served-traffic hours in a year.
        """
        if horizon < 0:
            raise ValidationError(f"horizon must be >= 0, got {horizon}")
        if horizon == 0:
            return 0.0
        steps = max(2, steps + (steps % 2))
        times = np.linspace(0.0, horizon, steps + 1)
        values = np.array(
            [self.expected_reward_at(initial, float(t)) for t in times]
        )
        h = horizon / steps
        return float(
            h / 3.0 * (values[0] + values[-1]
                       + 4.0 * values[1:-1:2].sum()
                       + 2.0 * values[2:-1:2].sum())
        )

    def interval_availability(
        self, initial: Mapping[State, float], horizon: float, steps: int = 200
    ) -> float:
        """Mean reward over ``[0, horizon]`` (accumulated reward / horizon)."""
        if horizon <= 0:
            raise ValidationError(f"horizon must be > 0, got {horizon}")
        return self.accumulated_reward(initial, horizon, steps=steps) / horizon
