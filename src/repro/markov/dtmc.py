"""Discrete-time Markov chains over labelled state spaces.

The paper's *user level* is a DTMC: the operational-profile graph of
Fig. 2 is a session chain whose transient states are the site functions
(Home, Browse, Search, Book, Pay) and whose absorbing state is "Exit".
Everything the profile layer needs — absorption analysis, expected visit
counts, visited-set distributions — reduces to the fundamental-matrix
machinery implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_distribution, check_probability
from ..errors import ModelStructureError, ValidationError
from .solvers import steady_state_gth, steady_state_power

__all__ = ["DTMC", "AbsorptionAnalysis"]

State = Hashable


@dataclass(frozen=True)
class AbsorptionAnalysis:
    """Results of the absorbing-chain analysis of a DTMC.

    Attributes
    ----------
    transient_states:
        Transient state labels, in the row order of the matrices below.
    absorbing_states:
        Absorbing state labels, in the column order of
        ``absorption_probabilities``.
    fundamental_matrix:
        ``N = (I - T)^-1`` where ``T`` is the transient-to-transient block;
        ``N[i, j]`` is the expected number of visits to transient state j
        when starting from transient state i.
    absorption_probabilities:
        ``B = N @ R``; ``B[i, k]`` is the probability of eventually being
        absorbed in absorbing state k when starting in transient state i.
    expected_steps:
        ``t = N @ 1``; expected number of transitions before absorption
        from each transient state.
    """

    transient_states: Tuple[State, ...]
    absorbing_states: Tuple[State, ...]
    fundamental_matrix: np.ndarray
    absorption_probabilities: np.ndarray
    expected_steps: np.ndarray

    def expected_visits(self, start: State, target: State) -> float:
        """Expected number of visits to *target* starting from *start*."""
        i = self.transient_states.index(start)
        j = self.transient_states.index(target)
        return float(self.fundamental_matrix[i, j])

    def absorption_probability(self, start: State, absorbing: State) -> float:
        """Probability that a walk from *start* is absorbed in *absorbing*."""
        i = self.transient_states.index(start)
        k = self.absorbing_states.index(absorbing)
        return float(self.absorption_probabilities[i, k])


class DTMC:
    """A finite discrete-time Markov chain with hashable state labels.

    Parameters
    ----------
    states:
        Sequence of distinct hashable labels; the order fixes the row and
        column order of the transition matrix.
    transition_matrix:
        Row-stochastic matrix; ``P[i, j]`` is the one-step probability of
        moving from ``states[i]`` to ``states[j]``.

    Examples
    --------
    >>> chain = DTMC(["sunny", "rainy"], [[0.9, 0.1], [0.5, 0.5]])
    >>> round(chain.stationary_distribution()["sunny"], 4)
    0.8333
    """

    def __init__(
        self,
        states: Sequence[State],
        transition_matrix: Sequence[Sequence[float]],
    ):
        self._states: Tuple[State, ...] = tuple(states)
        if len(set(self._states)) != len(self._states):
            raise ValidationError("state labels must be distinct")
        if not self._states:
            raise ValidationError("a DTMC needs at least one state")
        self._index: Dict[State, int] = {s: i for i, s in enumerate(self._states)}
        p = np.asarray(transition_matrix, dtype=float)
        n = len(self._states)
        if p.shape != (n, n):
            raise ValidationError(
                f"transition matrix shape {p.shape} does not match {n} states"
            )
        for row in range(n):
            check_distribution(p[row], name=f"row {row} ({self._states[row]!r})")
        self._p = p

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Mapping[Tuple[State, State], float],
        states: Optional[Sequence[State]] = None,
        allow_absorbing: bool = True,
    ) -> "DTMC":
        """Build a chain from an edge-probability mapping.

        Parameters
        ----------
        edges:
            ``{(src, dst): probability}``.  Probabilities out of each state
            must sum to one, except that a state with no outgoing edges is
            made absorbing (a self-loop with probability one) when
            *allow_absorbing* is true.
        states:
            Optional explicit state ordering; defaults to first-seen order
            of the edge endpoints.
        """
        if states is None:
            seen: List[State] = []
            for src, dst in edges:
                for node in (src, dst):
                    if node not in seen:
                        seen.append(node)
            states = seen
        states = tuple(states)
        index = {s: i for i, s in enumerate(states)}
        n = len(states)
        p = np.zeros((n, n))
        for (src, dst), prob in edges.items():
            if src not in index or dst not in index:
                raise ValidationError(f"edge ({src!r}, {dst!r}) references unknown state")
            p[index[src], index[dst]] += check_probability(prob, f"p({src!r}->{dst!r})")
        for row in range(n):
            total = p[row].sum()
            if total == 0.0:
                if not allow_absorbing:
                    raise ModelStructureError(
                        f"state {states[row]!r} has no outgoing probability"
                    )
                p[row, row] = 1.0
        return cls(states, p)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def states(self) -> Tuple[State, ...]:
        """State labels in matrix order."""
        return self._states

    @property
    def transition_matrix(self) -> np.ndarray:
        """A copy of the row-stochastic transition matrix."""
        return self._p.copy()

    def __len__(self) -> int:
        return len(self._states)

    def __repr__(self) -> str:
        return f"DTMC(states={len(self._states)})"

    def index_of(self, state: State) -> int:
        """Matrix index of a state label."""
        try:
            return self._index[state]
        except KeyError:
            raise ValidationError(f"unknown state {state!r}") from None

    def probability(self, src: State, dst: State) -> float:
        """One-step transition probability from *src* to *dst*."""
        return float(self._p[self.index_of(src), self.index_of(dst)])

    def successors(self, state: State) -> Dict[State, float]:
        """Mapping of reachable next states to their probabilities."""
        row = self._p[self.index_of(state)]
        return {
            self._states[j]: float(row[j]) for j in np.nonzero(row)[0]
        }

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def absorbing_states(self) -> Tuple[State, ...]:
        """States with a probability-one self-loop."""
        return tuple(
            s
            for i, s in enumerate(self._states)
            if self._p[i, i] == 1.0
        )

    def is_absorbing_chain(self) -> bool:
        """True when at least one absorbing state is reachable from every state."""
        absorbing = [self.index_of(s) for s in self.absorbing_states()]
        if not absorbing:
            return False
        reach = self._reachability()
        return all(reach[i, absorbing].any() for i in range(len(self)))

    def _reachability(self) -> np.ndarray:
        adjacency = self._p > 0
        reach = adjacency.copy()
        np.fill_diagonal(reach, True)
        # Repeated boolean squaring: O(log n) matrix products.
        for _ in range(int(np.ceil(np.log2(max(len(self), 2)))) + 1):
            reach = reach | (reach @ reach)
        return reach

    # ------------------------------------------------------------------
    # Stationary behaviour
    # ------------------------------------------------------------------
    def stationary_distribution(self, method: str = "direct") -> Dict[State, float]:
        """Stationary distribution of an irreducible chain.

        Parameters
        ----------
        method:
            ``"direct"`` solves ``pi (P - I) = 0`` by GTH elimination;
            ``"power"`` uses power iteration.
        """
        if method == "direct":
            pi = steady_state_gth(self._p - np.eye(len(self)))
        elif method == "power":
            pi, _ = steady_state_power(self._p)
        else:
            raise ValidationError(f"unknown method {method!r}")
        return dict(zip(self._states, pi.tolist()))

    def transient_distribution(
        self, initial: Mapping[State, float], steps: int
    ) -> Dict[State, float]:
        """Distribution after *steps* transitions from *initial*."""
        p0 = self._vector(initial)
        if steps < 0:
            raise ValidationError(f"steps must be >= 0, got {steps}")
        result = p0 @ np.linalg.matrix_power(self._p, steps)
        return dict(zip(self._states, result.tolist()))

    # ------------------------------------------------------------------
    # Absorbing analysis (the workhorse of the profile layer)
    # ------------------------------------------------------------------
    def absorption_analysis(self) -> AbsorptionAnalysis:
        """Fundamental-matrix analysis of an absorbing chain.

        Raises
        ------
        ModelStructureError
            If the chain has no absorbing state, or some state cannot
            reach one (the walk could wander forever).
        """
        absorbing = self.absorbing_states()
        if not absorbing:
            raise ModelStructureError("chain has no absorbing state")
        if not self.is_absorbing_chain():
            raise ModelStructureError(
                "some states cannot reach an absorbing state"
            )
        absorbing_idx = [self.index_of(s) for s in absorbing]
        transient_idx = [
            i for i in range(len(self)) if i not in set(absorbing_idx)
        ]
        transient = tuple(self._states[i] for i in transient_idx)
        t_block = self._p[np.ix_(transient_idx, transient_idx)]
        r_block = self._p[np.ix_(transient_idx, absorbing_idx)]
        identity = np.eye(len(transient_idx))
        fundamental = np.linalg.solve(
            identity - t_block, identity
        )
        absorption = fundamental @ r_block
        steps = fundamental.sum(axis=1)
        return AbsorptionAnalysis(
            transient_states=transient,
            absorbing_states=tuple(absorbing),
            fundamental_matrix=fundamental,
            absorption_probabilities=absorption,
            expected_steps=steps,
        )

    def hitting_probability(self, start: State, targets: Iterable[State]) -> float:
        """Probability that a walk from *start* ever visits any of *targets*.

        Computed by making the target states absorbing and solving the
        modified chain's absorption probabilities.
        """
        target_set = {self.index_of(t) for t in targets}
        if self.index_of(start) in target_set:
            return 1.0
        p = self._p.copy()
        for t in target_set:
            p[t, :] = 0.0
            p[t, t] = 1.0
        modified = DTMC(self._states, p)
        analysis = modified.absorption_analysis()
        total = 0.0
        for t in target_set:
            label = self._states[t]
            if label in analysis.absorbing_states:
                total += analysis.absorption_probability(start, label)
        return total

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def sample_path(
        self,
        start: State,
        rng: np.random.Generator,
        max_steps: int = 1_000_000,
        stop_states: Optional[Iterable[State]] = None,
    ) -> List[State]:
        """Sample one trajectory, stopping at an absorbing/stop state.

        Parameters
        ----------
        start:
            Initial state label (included as the first path element).
        rng:
            A :class:`numpy.random.Generator`; the caller owns seeding.
        max_steps:
            Safety cap on path length.
        stop_states:
            Extra states that terminate the walk (in addition to
            absorbing states).
        """
        stops = {self.index_of(s) for s in (stop_states or ())}
        current = self.index_of(start)
        path = [self._states[current]]
        for _ in range(max_steps):
            if current in stops or self._p[current, current] == 1.0:
                return path
            current = int(rng.choice(len(self), p=self._p[current]))
            path.append(self._states[current])
        raise ModelStructureError(
            f"sample path exceeded {max_steps} steps without stopping"
        )

    def _vector(self, distribution: Mapping[State, float]) -> np.ndarray:
        vec = np.zeros(len(self))
        for state, prob in distribution.items():
            vec[self.index_of(state)] = check_probability(prob, f"p({state!r})")
        check_distribution(vec, name="initial distribution")
        return vec
