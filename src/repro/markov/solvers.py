"""Steady-state solvers for finite Markov chains.

Three solution strategies are provided, trading robustness for speed:

* :func:`steady_state_gth` — the Grassmann-Taksar-Heyman elimination
  algorithm.  Subtraction-free, hence numerically stable even for stiff
  generators (failure rates of 1e-4/h against service rates of 100/s, the
  regime of the paper's web-service model).  O(n^3); the default for the
  modest state spaces produced by availability models.
* :func:`steady_state_linear` — direct sparse/dense linear solve of the
  balance equations with the normalization condition replacing one
  equation.  Faster for large sparse generators.
* :func:`steady_state_power` — power iteration on a DTMC transition
  matrix; useful when only an approximate stationary vector is needed.

:func:`steady_state` chains the three with a componentwise-residual
acceptance check, warning which fallback was taken.  Small dense
generators lead with GTH (no speed penalty, immune to stiffness); large
generators lead with the sparse linear solve.  It is the recommended
entry point when the generator's conditioning is unknown.
"""

from __future__ import annotations

import warnings
from typing import List, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph
import scipy.sparse.linalg as spla

from .._validation import check_finite_array
from ..errors import NotIrreducibleError, SolverError, ValidationError
from ..obs.clock import monotonic
from ..obs.context import active_metrics

__all__ = [
    "steady_state",
    "steady_state_gth",
    "steady_state_linear",
    "steady_state_power",
    "strongly_connected_components",
    "check_generator",
]

_ZERO_ROW_TOL = 1e-300


def check_generator(matrix: np.ndarray, tol: float = 1e-8) -> np.ndarray:
    """Validate that *matrix* is a CTMC infinitesimal generator.

    A generator has non-negative off-diagonal entries and rows summing to
    zero.  Returns the matrix as a float array (not a copy when already
    float64).  Raises :class:`ValidationError` otherwise.
    """
    q = np.asarray(matrix, dtype=float)
    if q.ndim != 2 or q.shape[0] != q.shape[1]:
        raise ValidationError(f"generator must be square, got shape {q.shape}")
    # Finiteness first: NaN entries sail through the sign and row-sum
    # comparisons below (every NaN comparison is False) and would only
    # surface as a confusing solver failure much later.
    check_finite_array(q, "generator")
    off_diag = q - np.diag(np.diag(q))
    if np.any(off_diag < -tol):
        raise ValidationError("generator has negative off-diagonal entries")
    row_sums = q.sum(axis=1)
    scale = np.maximum(np.abs(q).max(axis=1), 1.0)
    if np.any(np.abs(row_sums) > tol * scale):
        worst = int(np.argmax(np.abs(row_sums) / scale))
        raise ValidationError(
            f"generator rows must sum to zero; row {worst} sums to {row_sums[worst]!r}"
        )
    return q


def strongly_connected_components(adjacency: np.ndarray) -> List[List[int]]:
    """Strongly connected components of a directed reachability structure.

    Parameters
    ----------
    adjacency:
        Square matrix; entry ``[i, j] != 0`` means an edge ``i -> j``
        (rates and probabilities both qualify).

    Returns
    -------
    list of lists of state indices, one per component, in topological
    order of the component DAG (sources first).
    """
    a = sp.csr_matrix(np.asarray(adjacency) != 0)
    n_comp, labels = csgraph.connected_components(a, directed=True, connection="strong")
    components: List[List[int]] = [[] for _ in range(n_comp)]
    for state, label in enumerate(labels):
        components[label].append(state)
    # scipy labels components in reverse topological order; flip for readability
    return list(reversed(components))


def _require_irreducible(q: np.ndarray) -> None:
    adjacency = q.copy()
    np.fill_diagonal(adjacency, 0.0)
    components = strongly_connected_components(adjacency)
    if len(components) > 1:
        transient = [s for comp in components[:-1] for s in comp]
        raise NotIrreducibleError(
            "chain is not irreducible: a unique steady-state distribution "
            f"does not exist ({len(components)} strongly connected components)",
            problem_states=tuple(transient),
        )


def steady_state_gth(generator: np.ndarray) -> np.ndarray:
    """Steady-state distribution of an irreducible CTMC via GTH elimination.

    The Grassmann-Taksar-Heyman algorithm performs Gaussian elimination
    using only additions of non-negative numbers, which makes it immune to
    the catastrophic cancellation that plagues naive solves of stiff
    availability models.

    Parameters
    ----------
    generator:
        Square infinitesimal generator matrix ``Q`` (rows sum to zero).

    Returns
    -------
    numpy.ndarray
        The probability vector ``pi`` with ``pi @ Q = 0`` and ``sum(pi) = 1``.
    """
    q = check_generator(generator)
    _require_irreducible(q)
    n = q.shape[0]
    if n == 1:
        return np.ones(1)

    # Work on the off-diagonal rate matrix; diagonals are implied.
    rates = q.copy()
    np.fill_diagonal(rates, 0.0)

    # Forward elimination: censor states n-1, n-2, ..., 1 one at a time.
    for k in range(n - 1, 0, -1):
        denom = rates[k, :k].sum()
        if denom <= _ZERO_ROW_TOL:
            raise SolverError(
                f"GTH elimination hit a zero pivot at state {k}; "
                "the chain structure does not admit a steady state"
            )
        factor = rates[:k, k] / denom
        rates[:k, :k] += np.outer(factor, rates[k, :k])
        np.fill_diagonal(rates[:k, :k], 0.0)

    # Back substitution.
    pi = np.zeros(n)
    pi[0] = 1.0
    for k in range(1, n):
        denom = rates[k, :k].sum()
        pi[k] = pi[:k] @ rates[:k, k] / denom
    return pi / pi.sum()


def steady_state_linear(generator: np.ndarray, sparse: bool = False) -> np.ndarray:
    """Steady-state distribution via a direct solve of the balance equations.

    Replaces the last balance equation by the normalization constraint and
    solves ``pi @ Q = 0, sum(pi) = 1`` as a single linear system.

    Parameters
    ----------
    generator:
        Square infinitesimal generator matrix.
    sparse:
        Solve with :func:`scipy.sparse.linalg.spsolve`; worthwhile for
        generators with thousands of states.
    """
    q = check_generator(generator)
    _require_irreducible(q)
    n = q.shape[0]
    a = q.T.copy()
    a[-1, :] = 1.0
    b = np.zeros(n)
    b[-1] = 1.0
    try:
        if sparse:
            pi = spla.spsolve(sp.csc_matrix(a), b)
        else:
            pi = np.linalg.solve(a, b)
    except (np.linalg.LinAlgError, RuntimeError) as exc:
        raise SolverError(f"linear steady-state solve failed: {exc}") from exc
    if np.any(pi < -1e-8):
        raise SolverError(
            "linear steady-state solve produced negative probabilities; "
            "use steady_state_gth for stiff generators"
        )
    pi = np.clip(pi, 0.0, None)
    return pi / pi.sum()


def steady_state_power(
    transition_matrix: np.ndarray,
    tol: float = 1e-12,
    max_iterations: int = 100_000,
) -> Tuple[np.ndarray, int]:
    """Stationary vector of a DTMC transition matrix by power iteration.

    A damping-free power iteration; for periodic chains the iterate is
    averaged over two successive steps, which converges for any
    irreducible finite chain.

    Returns
    -------
    (pi, iterations):
        The stationary vector and the number of iterations used.

    Raises
    ------
    SolverError
        If convergence is not reached within *max_iterations*.
    """
    p = np.asarray(transition_matrix, dtype=float)
    if p.ndim != 2 or p.shape[0] != p.shape[1]:
        raise ValidationError(f"transition matrix must be square, got {p.shape}")
    n = p.shape[0]
    pi = np.full(n, 1.0 / n)
    for iteration in range(1, max_iterations + 1):
        nxt = pi @ p
        # Average consecutive iterates: handles period-2 chains gracefully.
        smoothed = 0.5 * (nxt + nxt @ p)
        smoothed /= smoothed.sum()
        if np.abs(smoothed - pi).max() < tol:
            metrics = active_metrics()
            if metrics is not None:
                from ..obs.metrics import DEFAULT_ITERATION_BOUNDS

                metrics.histogram(
                    "ctmc_power_iterations",
                    bounds=DEFAULT_ITERATION_BOUNDS,
                    help="Iterations used by converged power-iteration solves.",
                ).observe(iteration)
            return smoothed, iteration
        pi = smoothed
    raise SolverError(
        f"power iteration did not converge within {max_iterations} iterations"
    )


def _residual(q: np.ndarray, pi: np.ndarray) -> float:
    """Componentwise balance-equation residual ``max_j |pi Q|_j / (|pi| |Q|)_j``.

    A max-norm residual (``max|pi Q| / max|Q|``) hides inaccuracy in the
    small components of stiff chains: a direct solve can satisfy it to
    machine precision while the probability of a rare state is off by six
    digits.  Scaling each balance equation by the mass that flows through
    it exposes exactly that loss, so the stiff case falls back to GTH.
    """
    numerator = np.abs(pi @ q)
    denominator = np.abs(pi) @ np.abs(q)
    floor = float(np.abs(q).max()) * np.finfo(float).tiny + np.finfo(float).tiny
    return float(np.max(numerator / np.maximum(denominator, floor)))


#: Below this state count a dense O(n^3) solve is cheap either way, so the
#: subtraction-free GTH elimination leads; above it the linear solve's
#: sparse path is worth trying first.
_SMALL_DENSE_CUTOFF = 256


def steady_state(generator: np.ndarray, residual_tol: float = 1e-9) -> np.ndarray:
    """Steady-state distribution with automatic solver fallback.

    For small dense generators (``n <= 256``, the regime of availability
    models) the strategy order is GTH elimination, then the linear solve,
    then power iteration: at this size a direct solve is no faster than
    GTH, and a direct solve of a stiff chain can lose several digits in
    the rare-state probabilities in ways no cheap residual check can
    certify against.  For larger generators the order is linear solve
    (sparse), then GTH, then power iteration.

    A solution is accepted only when every balance equation is satisfied
    to *residual_tol* relative to the probability mass flowing through it
    (a componentwise residual, so accuracy is demanded even in the tiny
    steady-state components of stiff chains); otherwise the next solver
    is tried and a :class:`UserWarning` names the fallback taken.

    Raises
    ------
    NotIrreducibleError
        Immediately (no fallback can help) when the chain has no unique
        steady state.
    SolverError
        When every strategy fails.
    """
    q = check_generator(generator)
    _require_irreducible(q)
    n = q.shape[0]

    def _linear() -> np.ndarray:
        return steady_state_linear(q, sparse=n > _SMALL_DENSE_CUTOFF)

    def _gth() -> np.ndarray:
        return steady_state_gth(q)

    def _power() -> np.ndarray:
        max_exit = float(np.max(-np.diag(q)))
        rate = max_exit * 1.05 if max_exit > 0 else 1.0
        p = np.eye(n) + q / rate
        pi, _iterations = steady_state_power(p)
        return pi

    if n <= _SMALL_DENSE_CUTOFF:
        strategies = [
            ("GTH elimination", _gth),
            ("linear solve", _linear),
            ("power iteration", _power),
        ]
    else:
        strategies = [
            ("linear solve", _linear),
            ("GTH elimination", _gth),
            ("power iteration", _power),
        ]

    metrics = active_metrics()
    started = monotonic() if metrics is not None else 0.0

    failures: List[str] = []
    for index, (name, solve) in enumerate(strategies):
        try:
            pi = solve()
            res = _residual(q, pi)
            if not np.isfinite(res) or res > residual_tol:
                raise SolverError(
                    f"{name} solution has residual {res:.3e} > {residual_tol:.3e}"
                )
            if metrics is not None:
                metrics.histogram(
                    "ctmc_steady_state_seconds",
                    help="Wall-clock time of accepted steady-state solves.",
                ).observe(monotonic() - started)
                metrics.counter(
                    "ctmc_solves",
                    help="Accepted steady-state solves by winning strategy.",
                    strategy=name,
                ).inc()
            return pi
        except NotIrreducibleError:
            raise
        except SolverError as exc:
            failures.append(f"{name}: {exc}")
            if metrics is not None:
                metrics.counter(
                    "ctmc_solver_fallbacks",
                    help="Steady-state strategies that failed and fell back.",
                    strategy=name,
                ).inc()
            if index + 1 < len(strategies):
                warnings.warn(
                    f"steady_state: {name} failed ({exc}); "
                    f"falling back to {strategies[index + 1][0]}",
                    stacklevel=2,
                )
    raise SolverError(
        "all steady-state strategies failed: " + "; ".join(failures)
    )
