"""First-passage analysis for labelled Markov chains.

Mean first-passage times answer questions steady-state probabilities
cannot: *how long until* the farm first reaches a degraded state, or
until a failed system first returns to full strength.  Both DTMC and
CTMC variants reduce to an absorbing-chain solve with the target states
made absorbing.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable

import numpy as np

from ..errors import ModelStructureError, ValidationError
from .ctmc import CTMC
from .dtmc import DTMC

__all__ = [
    "mean_first_passage_time",
    "mean_first_passage_steps",
    "first_passage_probability_by",
]

State = Hashable


def mean_first_passage_time(
    chain: CTMC, start: State, targets: Iterable[State]
) -> float:
    """Expected time for a CTMC to first hit any of *targets* from *start*.

    Returns 0 when *start* is itself a target.

    Examples
    --------
    MTTF of a two-state component is ``1 / lambda``:

    >>> chain = CTMC(["up", "down"], [[-0.25, 0.25], [1.0, -1.0]])
    >>> mean_first_passage_time(chain, "up", ["down"])
    4.0
    """
    target_set = {chain.index_of(t) for t in targets}
    if not target_set:
        raise ValidationError("at least one target state is required")
    if chain.index_of(start) in target_set:
        return 0.0
    q = chain.generator
    for t in target_set:
        q[t, :] = 0.0
    modified = CTMC(chain.states, q)
    return modified.mean_time_to_absorption(start)


def mean_first_passage_steps(
    chain: DTMC, start: State, targets: Iterable[State]
) -> float:
    """Expected number of steps for a DTMC to first hit any of *targets*.

    Examples
    --------
    >>> chain = DTMC(["a", "b"], [[0.5, 0.5], [1.0, 0.0]])
    >>> mean_first_passage_steps(chain, "a", ["b"])
    2.0
    """
    target_set = {chain.index_of(t) for t in targets}
    if not target_set:
        raise ValidationError("at least one target state is required")
    if chain.index_of(start) in target_set:
        return 0.0
    p = chain.transition_matrix
    for t in target_set:
        p[t, :] = 0.0
        p[t, t] = 1.0
    modified = DTMC(chain.states, p)
    analysis = modified.absorption_analysis()
    if start not in analysis.transient_states:
        raise ModelStructureError(
            f"state {start!r} cannot reach the targets"
        )
    index = analysis.transient_states.index(start)
    return float(analysis.expected_steps[index])


def first_passage_probability_by(
    chain: CTMC, start: State, targets: Iterable[State], time: float
) -> float:
    """``P(hit any target by *time* | start)`` for a CTMC.

    Computed as the absorbed mass of the transient distribution of the
    chain with targets made absorbing — the CDF of the first-passage
    time, useful for mission-reliability statements like "probability
    the farm suffers a total outage within a year".
    """
    target_set = {chain.index_of(t) for t in targets}
    if not target_set:
        raise ValidationError("at least one target state is required")
    if chain.index_of(start) in target_set:
        return 1.0
    q = chain.generator
    for t in target_set:
        q[t, :] = 0.0
    modified = CTMC(chain.states, q)
    distribution = modified.transient_distribution({start: 1.0}, time)
    return float(
        sum(distribution[chain.states[t]] for t in target_set)
    )
