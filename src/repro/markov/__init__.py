"""Markov-chain substrate: DTMCs, CTMCs, solvers, transient analysis, rewards.

This subpackage provides the general-purpose Markov machinery on which the
availability models of the paper are built:

* :class:`DTMC` — discrete-time chains, used for user operational-profile
  graphs (Fig. 2 of the paper) and interaction diagrams (Figs. 3-6).
* :class:`CTMC` — continuous-time chains, used for the failure/repair
  availability models (Figs. 9 and 10).
* :class:`CTMCBuilder` / :func:`birth_death_chain` — ergonomic model
  construction helpers.
* :class:`MarkovRewardModel` — steady-state expected reward, the formal
  backbone of the paper's composite performance-availability measure
  (eqs. 2, 5 and 9).
* :func:`steady_state_derivative` — parametric sensitivity of steady-state
  distributions, used by the sensitivity-analysis layer.
"""

from .dtmc import DTMC, AbsorptionAnalysis
from .ctmc import CTMC
from .builder import CTMCBuilder, birth_death_chain
from .solvers import (
    steady_state_gth,
    steady_state_linear,
    steady_state_power,
    strongly_connected_components,
)
from .transient import transient_distribution, uniformization
from .rewards import MarkovRewardModel
from .sensitivity import steady_state_derivative
from .passage import (
    first_passage_probability_by,
    mean_first_passage_steps,
    mean_first_passage_time,
)

__all__ = [
    "DTMC",
    "AbsorptionAnalysis",
    "CTMC",
    "CTMCBuilder",
    "birth_death_chain",
    "steady_state_gth",
    "steady_state_linear",
    "steady_state_power",
    "strongly_connected_components",
    "transient_distribution",
    "uniformization",
    "MarkovRewardModel",
    "steady_state_derivative",
    "first_passage_probability_by",
    "mean_first_passage_steps",
    "mean_first_passage_time",
]
