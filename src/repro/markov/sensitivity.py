"""Parametric sensitivity of CTMC steady-state distributions.

Differentiating the balance equations ``pi Q(theta) = 0, pi 1 = 1`` with
respect to a parameter gives the linear system::

    (d pi) Q = - pi (dQ/dtheta),     (d pi) 1 = 0

whose solution yields exact first-order sensitivities without finite
differencing.  The sensitivity layer (:mod:`repro.sensitivity`) uses this
to rank which rates (failure, repair, coverage, reconfiguration) dominate
the user-perceived availability.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable

import numpy as np

from ..errors import SolverError, ValidationError
from .ctmc import CTMC
from .solvers import check_generator

__all__ = ["steady_state_derivative", "reward_derivative"]

State = Hashable


def steady_state_derivative(
    generator: np.ndarray,
    generator_derivative: np.ndarray,
    steady_state: np.ndarray,
) -> np.ndarray:
    """Exact derivative of the steady-state vector w.r.t. a parameter.

    Parameters
    ----------
    generator:
        The generator ``Q(theta)`` evaluated at the parameter value.
    generator_derivative:
        Element-wise derivative ``dQ/dtheta`` (rows must sum to zero,
        since row sums of Q are identically zero in theta).
    steady_state:
        The steady-state vector ``pi`` of ``Q``.

    Returns
    -------
    numpy.ndarray
        ``d pi / d theta``, summing to zero.
    """
    q = check_generator(generator)
    dq = np.asarray(generator_derivative, dtype=float)
    if dq.shape != q.shape:
        raise ValidationError(
            f"derivative shape {dq.shape} does not match generator {q.shape}"
        )
    row_sums = np.abs(dq.sum(axis=1))
    if np.any(row_sums > 1e-8 * max(1.0, np.abs(dq).max())):
        raise ValidationError("generator derivative rows must sum to zero")
    pi = np.asarray(steady_state, dtype=float)
    n = q.shape[0]
    # Solve d_pi @ Q = -pi @ dQ with the normalization d_pi @ 1 = 0 replacing
    # one (redundant) balance equation.
    a = q.T.copy()
    a[-1, :] = 1.0
    b = -(pi @ dq)
    b[-1] = 0.0
    try:
        d_pi = np.linalg.solve(a, b)
    except np.linalg.LinAlgError as exc:
        raise SolverError(f"sensitivity solve failed: {exc}") from exc
    return d_pi


def reward_derivative(
    chain: CTMC,
    rewards: Dict[State, float],
    generator_derivative: np.ndarray,
) -> float:
    """Derivative of a steady-state expected reward w.r.t. a parameter.

    Convenience wrapper combining :func:`steady_state_derivative` with a
    reward vector: returns ``d/dtheta sum_i pi_i r_i`` assuming the reward
    rates themselves do not depend on the parameter.
    """
    pi_map = chain.steady_state()
    pi = np.array([pi_map[s] for s in chain.states])
    reward_vec = np.array([float(rewards.get(s, 0.0)) for s in chain.states])
    d_pi = steady_state_derivative(chain.generator, generator_derivative, pi)
    return float(d_pi @ reward_vec)
