"""Transient analysis of CTMCs by uniformization.

Uniformization (also called randomization or Jensen's method) expresses
``p(t) = p0 exp(Qt)`` as a Poisson-weighted sum of DTMC powers::

    p(t) = sum_k PoissonPMF(k; Lambda t) * p0 P^k,   P = I + Q / Lambda

The sum is truncated when the accumulated Poisson mass reaches ``1 - tol``;
all terms are non-negative so the method is numerically stable, unlike a
naive matrix exponential of a stiff generator.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

import numpy as np

from .._validation import check_non_negative
from ..errors import SolverError
from .solvers import check_generator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..runtime.budget import CancellationToken

__all__ = ["uniformization", "transient_distribution"]

_MAX_TERMS = 10_000_000
# Above this Poisson rate (Lambda * t) the truncated series needs too many
# terms; uniformization hands over to a matrix exponential.
_SERIES_LIMIT = 1_000_000.0


def uniformization(
    generator: np.ndarray,
    initial: np.ndarray,
    time: float,
    tol: float = 1e-12,
    cancellation: Optional["CancellationToken"] = None,
) -> np.ndarray:
    """Transient distribution ``p0 exp(Qt)`` via uniformization.

    Parameters
    ----------
    generator:
        Infinitesimal generator ``Q``.
    initial:
        Initial probability vector ``p0``.
    time:
        Elapsed time ``t >= 0``.
    tol:
        Truncation tolerance on the neglected Poisson tail mass.
    cancellation:
        Optional :class:`~repro.runtime.CancellationToken` charged one
        iteration per series term, so a stiff solve honours wall-clock
        deadlines and iteration budgets instead of grinding through
        millions of terms.

    Returns
    -------
    numpy.ndarray
        The distribution at time ``t`` (renormalized to absorb the
        truncation error).
    """
    q = check_generator(generator)
    p0 = np.asarray(initial, dtype=float)
    time = check_non_negative(time, "time")
    if time == 0.0:
        return p0.copy()

    max_exit = float(np.max(-np.diag(q)))
    if max_exit == 0.0:
        # All states absorbing: nothing moves.
        return p0.copy()
    rate = max_exit * 1.05
    p_matrix = np.eye(q.shape[0]) + q / rate

    poisson_rate = rate * time
    if poisson_rate > _SERIES_LIMIT:
        # Term-by-term summation would need ~Lambda*t matrix products;
        # beyond the limit a scaling-and-squaring matrix exponential is
        # both faster and accurate (the generator is well-conditioned
        # after uniformization normalizes the time scale).
        from scipy.linalg import expm

        result = p0 @ expm(q * time)
        result = np.clip(result, 0.0, None)
        total = result.sum()
        if total <= 0.0:
            raise SolverError("matrix-exponential transient solve degenerated")
        return result / total

    # Start the Poisson recursion at k = 0 in log space to avoid underflow
    # for large Lambda*t.
    # Stay in log space until the weight is a *normal* double: exp of
    # anything below ~-700 is denormal, where the multiplicative recurrence
    # below loses all precision (5e-324 * 1.06 rounds back to 5e-324).
    log_weight = -poisson_rate
    weight = math.exp(log_weight) if log_weight > -700 else 0.0
    accumulated = weight
    term = p0.copy()
    result = weight * term

    k = 0
    # For large Lambda*t the initial weights underflow; skip forward using
    # the stable recurrence on log weights until they become representable.
    while weight == 0.0 and k < _MAX_TERMS:
        k += 1
        if cancellation is not None:
            cancellation.count_iteration()
        log_weight += math.log(poisson_rate) - math.log(k)
        term = term @ p_matrix
        if log_weight > -700:
            weight = math.exp(log_weight)
            accumulated = weight
            result = weight * term
            break
    else:
        if weight == 0.0:
            raise SolverError("uniformization failed to find representable weights")

    while accumulated < 1.0 - tol:
        k += 1
        if cancellation is not None:
            cancellation.count_iteration()
        if k > _MAX_TERMS:
            raise SolverError(
                f"uniformization did not converge within {_MAX_TERMS} terms "
                f"(Lambda*t = {poisson_rate:.3g})"
            )
        weight *= poisson_rate / k
        term = term @ p_matrix
        result += weight * term
        accumulated += weight
        # Past the Poisson mode the weights decay geometrically; once they
        # are far below the tolerance the remaining tail cannot matter.
        # (For very large Lambda*t the accumulated mass can plateau a hair
        # below 1 - tol because the first representable weight was
        # subnormal; the final renormalization absorbs the difference.)
        if k > poisson_rate and weight < tol * 1e-4:
            break

    total = result.sum()
    if total <= 0.0:
        raise SolverError("uniformization produced a degenerate distribution")
    return result / total


def transient_distribution(
    generator: np.ndarray,
    initial: np.ndarray,
    times: np.ndarray,
    tol: float = 1e-12,
    cancellation: Optional["CancellationToken"] = None,
) -> np.ndarray:
    """Vectorized transient solve over several time points.

    Returns an array of shape ``(len(times), n_states)``; row ``k`` is the
    distribution at ``times[k]``.  Times need not be sorted.
    """
    times = np.atleast_1d(np.asarray(times, dtype=float))
    return np.vstack(
        [
            uniformization(
                generator, initial, float(t), tol=tol, cancellation=cancellation
            )
            for t in times
        ]
    )
