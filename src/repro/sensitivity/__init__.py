"""Sensitivity-analysis utilities.

Section 5 of the paper is a sequence of sensitivity studies: web-service
unavailability against the number of servers, failure rates and arrival
rates (Figs. 11-12), user availability against the number of reservation
systems (Table 8).  This subpackage provides the generic machinery those
studies are built from:

* :func:`sweep` / :func:`grid_sweep` — evaluate a model over one or two
  parameter axes;
* :func:`tornado` — rank parameters by the output range they induce
  when varied between bounds (the classical tornado diagram);
* :func:`elasticity` — normalized local sensitivities
  ``(dA / A) / (dp / p)`` by central finite differences.
"""

from .sweep import sweep, grid_sweep, SweepResult, GridSweepResult
from .tornado import tornado, elasticity, TornadoEntry

__all__ = [
    "sweep",
    "grid_sweep",
    "SweepResult",
    "GridSweepResult",
    "tornado",
    "elasticity",
    "TornadoEntry",
]
