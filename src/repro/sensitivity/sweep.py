"""Parameter sweeps over model evaluation functions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from ..errors import ValidationError

__all__ = ["sweep", "grid_sweep", "SweepResult", "GridSweepResult"]


@dataclass(frozen=True)
class SweepResult:
    """Result of a one-dimensional parameter sweep.

    Attributes
    ----------
    parameter:
        The swept parameter's name.
    values:
        Parameter values, in evaluation order.
    outputs:
        Model outputs, aligned with *values*.
    """

    parameter: str
    values: Tuple[float, ...]
    outputs: Tuple[float, ...]

    def as_pairs(self) -> List[Tuple[float, float]]:
        """``[(value, output), ...]`` pairs."""
        return list(zip(self.values, self.outputs))

    def argbest(self, maximize: bool = True) -> Tuple[float, float]:
        """The (value, output) pair with the best output."""
        chooser = max if maximize else min
        return chooser(self.as_pairs(), key=lambda pair: pair[1])

    def first_crossing(self, threshold: float, above: bool = True) -> Tuple[float, float]:
        """First (value, output) whose output crosses *threshold*.

        Used for design questions like "how many web servers to reach an
        unavailability below 5 minutes per year?".

        Raises
        ------
        ValidationError
            If no swept point crosses the threshold.
        """
        for value, output in self.as_pairs():
            if (output >= threshold) if above else (output <= threshold):
                return value, output
        side = ">=" if above else "<="
        raise ValidationError(
            f"no swept value of {self.parameter!r} yields output {side} {threshold}"
        )


@dataclass(frozen=True)
class GridSweepResult:
    """Result of a two-dimensional parameter sweep.

    Attributes
    ----------
    row_parameter / column_parameter:
        Names of the two axes.
    row_values / column_values:
        Axis values.
    outputs:
        ``outputs[i][j]`` is the model output at
        ``(row_values[i], column_values[j])``.
    """

    row_parameter: str
    column_parameter: str
    row_values: Tuple[float, ...]
    column_values: Tuple[float, ...]
    outputs: Tuple[Tuple[float, ...], ...]

    def row(self, row_value: float) -> SweepResult:
        """One row of the grid as a one-dimensional sweep."""
        try:
            index = self.row_values.index(row_value)
        except ValueError:
            raise ValidationError(
                f"{row_value!r} is not a swept value of {self.row_parameter!r}"
            ) from None
        return SweepResult(
            parameter=self.column_parameter,
            values=self.column_values,
            outputs=self.outputs[index],
        )


def sweep(
    model: Callable[[float], float],
    parameter: str,
    values: Iterable[float],
) -> SweepResult:
    """Evaluate ``model(value)`` over *values*.

    Examples
    --------
    >>> result = sweep(lambda n: 1 - 0.1 ** n, "servers", [1, 2, 3])
    >>> result.outputs
    (0.9, 0.99, 0.999)
    """
    values = tuple(values)
    if not values:
        raise ValidationError("sweep needs at least one value")
    outputs = tuple(float(model(v)) for v in values)
    return SweepResult(parameter=parameter, values=values, outputs=outputs)


def grid_sweep(
    model: Callable[[float, float], float],
    row_parameter: str,
    row_values: Iterable[float],
    column_parameter: str,
    column_values: Iterable[float],
) -> GridSweepResult:
    """Evaluate ``model(row_value, column_value)`` over a grid.

    The Fig. 11/12 studies are grid sweeps: failure rate x number of
    servers, one curve per row.
    """
    row_values = tuple(row_values)
    column_values = tuple(column_values)
    if not row_values or not column_values:
        raise ValidationError("grid sweep needs at least one value per axis")
    outputs = tuple(
        tuple(float(model(r, c)) for c in column_values) for r in row_values
    )
    return GridSweepResult(
        row_parameter=row_parameter,
        column_parameter=column_parameter,
        row_values=row_values,
        column_values=column_values,
        outputs=outputs,
    )
