"""Parameter sweeps over model evaluation functions.

Both :func:`sweep` and :func:`grid_sweep` evaluate point by point in a
plain Python loop by default.  Passing an
:class:`~repro.engine.EvaluationEngine` routes the evaluations through
the batch engine instead — parallel across points when the engine has
workers, memoized when cache *keys* are supplied — without changing a
single output bit: results are assembled in sweep order regardless of
completion order, and the serial engine backend is the reference the
parallel one is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Sequence, Tuple

from .._validation import check_non_negative
from ..errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..engine import EvaluationEngine

__all__ = ["sweep", "grid_sweep", "SweepResult", "GridSweepResult"]


@dataclass(frozen=True)
class SweepResult:
    """Result of a one-dimensional parameter sweep.

    Attributes
    ----------
    parameter:
        The swept parameter's name.
    values:
        Parameter values, in evaluation order.
    outputs:
        Model outputs, aligned with *values*.
    """

    parameter: str
    values: Tuple[float, ...]
    outputs: Tuple[float, ...]

    def as_pairs(self) -> List[Tuple[float, float]]:
        """``[(value, output), ...]`` pairs."""
        return list(zip(self.values, self.outputs))

    def argbest(self, maximize: bool = True) -> Tuple[float, float]:
        """The (value, output) pair with the best output."""
        chooser = max if maximize else min
        return chooser(self.as_pairs(), key=lambda pair: pair[1])

    def first_crossing(
        self, threshold: float, above: bool = True, tol: float = 0.0
    ) -> Tuple[float, float]:
        """First (value, output) whose output crosses *threshold*.

        Used for design questions like "how many web servers to reach an
        unavailability below 5 minutes per year?".

        The scan runs strictly in evaluation order and returns the
        *first* point satisfying the predicate, so for non-monotone
        outputs the answer is deterministic (earlier crossings win, even
        when the output later un-crosses).

        Parameters
        ----------
        threshold:
            The output level to cross.
        above:
            When True (default) find ``output >= threshold - tol``;
            otherwise ``output <= threshold + tol``.
        tol:
            Non-negative absolute tolerance.  An output within *tol* of
            the threshold counts as crossed on either side — use it when
            outputs land *exactly on* the threshold up to floating-point
            rounding, where a last-ulp platform difference would
            otherwise flip the answer between adjacent swept values.

        Raises
        ------
        ValidationError
            If no swept point crosses the threshold, or *tol* is
            negative.
        """
        tol = check_non_negative(tol, "tol")
        for value, output in self.as_pairs():
            crossed = (
                output >= threshold - tol
                if above
                else output <= threshold + tol
            )
            if crossed:
                return value, output
        side = ">=" if above else "<="
        raise ValidationError(
            f"no swept value of {self.parameter!r} yields output {side} {threshold}"
        )


@dataclass(frozen=True)
class GridSweepResult:
    """Result of a two-dimensional parameter sweep.

    Attributes
    ----------
    row_parameter / column_parameter:
        Names of the two axes.
    row_values / column_values:
        Axis values.
    outputs:
        ``outputs[i][j]`` is the model output at
        ``(row_values[i], column_values[j])``.
    """

    row_parameter: str
    column_parameter: str
    row_values: Tuple[float, ...]
    column_values: Tuple[float, ...]
    outputs: Tuple[Tuple[float, ...], ...]

    def row(self, row_value: float) -> SweepResult:
        """One row of the grid as a one-dimensional sweep."""
        try:
            index = self.row_values.index(row_value)
        except ValueError:
            raise ValidationError(
                f"{row_value!r} is not a swept value of {self.row_parameter!r}"
            ) from None
        return SweepResult(
            parameter=self.column_parameter,
            values=self.column_values,
            outputs=self.outputs[index],
        )


class _GridCell:
    """Picklable adapter turning ``fn(r, c)`` into ``fn(pair)``.

    A module-level class (rather than a closure) so grid sweeps can ship
    their model function to process-pool workers.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[float, float], float]):
        self.fn = fn

    def __call__(self, pair: Tuple[float, float]) -> float:
        return float(self.fn(*pair))


def sweep(
    model: Callable[[float], float],
    parameter: str,
    values: Iterable[float],
    engine: Optional["EvaluationEngine"] = None,
    keys: Optional[Sequence[Optional[str]]] = None,
    journal=None,
) -> SweepResult:
    """Evaluate ``model(value)`` over *values*.

    Parameters
    ----------
    model / parameter / values:
        The function to evaluate, the swept parameter's name, and the
        points to evaluate it at.
    engine:
        Optional :class:`~repro.engine.EvaluationEngine`; evaluations
        run through it (parallel and/or memoized) with outputs in sweep
        order — bit-identical to the default in-process loop.
    keys:
        Optional per-value content-addressed cache keys (see
        :func:`repro.engine.canonical_key`); only meaningful with an
        engine.
    journal:
        Optional journal (or path) passed to the engine: completed
        points are durably recorded and an interrupted sweep resumes
        when re-run over the same journal.  Requires *engine*.

    Examples
    --------
    >>> result = sweep(lambda n: 1 - 0.1 ** n, "servers", [1, 2, 3])
    >>> result.outputs
    (0.9, 0.99, 0.999)
    """
    values = tuple(values)
    if not values:
        raise ValidationError("sweep needs at least one value")
    if engine is None:
        if journal is not None:
            raise ValidationError("a journaled sweep needs an engine")
        outputs = tuple(float(model(v)) for v in values)
    else:
        batch = engine.map(
            model, values, keys=keys, phase=f"sweep {parameter}",
            journal=journal,
        )
        outputs = tuple(float(output) for output in batch.outputs)
    return SweepResult(parameter=parameter, values=values, outputs=outputs)


def grid_sweep(
    model: Callable[[float, float], float],
    row_parameter: str,
    row_values: Iterable[float],
    column_parameter: str,
    column_values: Iterable[float],
    engine: Optional["EvaluationEngine"] = None,
    keys: Optional[Sequence[Optional[str]]] = None,
    journal=None,
) -> GridSweepResult:
    """Evaluate ``model(row_value, column_value)`` over a grid.

    The Fig. 11/12 studies are grid sweeps: failure rate x number of
    servers, one curve per row.

    Parameters
    ----------
    engine:
        Optional :class:`~repro.engine.EvaluationEngine`; grid cells
        are evaluated through it as one flat batch (row-major order).
    keys:
        Optional per-cell cache keys, row-major, matching the flattened
        grid.
    journal:
        Optional journal (or path) passed to the engine; an interrupted
        grid resumes when re-run over the same journal.  Requires
        *engine*.
    """
    row_values = tuple(row_values)
    column_values = tuple(column_values)
    if not row_values or not column_values:
        raise ValidationError("grid sweep needs at least one value per axis")
    if engine is None:
        if journal is not None:
            raise ValidationError("a journaled sweep needs an engine")
        outputs = tuple(
            tuple(float(model(r, c)) for c in column_values)
            for r in row_values
        )
    else:
        cells = [(r, c) for r in row_values for c in column_values]
        batch = engine.map(
            _GridCell(model),
            cells,
            keys=keys,
            phase=f"grid {row_parameter} x {column_parameter}",
            journal=journal,
        )
        columns = len(column_values)
        outputs = tuple(
            tuple(
                float(output)
                for output in batch.outputs[i * columns:(i + 1) * columns]
            )
            for i in range(len(row_values))
        )
    return GridSweepResult(
        row_parameter=row_parameter,
        column_parameter=column_parameter,
        row_values=row_values,
        column_values=column_values,
        outputs=outputs,
    )
