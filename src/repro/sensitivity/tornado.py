"""Tornado analysis and elasticities: which parameters matter most."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Tuple

from ..errors import ValidationError

__all__ = ["TornadoEntry", "tornado", "elasticity"]


@dataclass(frozen=True)
class TornadoEntry:
    """One bar of a tornado diagram.

    Attributes
    ----------
    parameter:
        The varied parameter's name.
    low_output / high_output:
        Model outputs at the parameter's low/high bound (all other
        parameters held at their base values).
    base_output:
        Model output at the base point.
    """

    parameter: str
    low_output: float
    high_output: float
    base_output: float

    @property
    def swing(self) -> float:
        """Total output range induced by the parameter."""
        return abs(self.high_output - self.low_output)


def tornado(
    model: Callable[[Mapping[str, float]], float],
    base: Mapping[str, float],
    bounds: Mapping[str, Tuple[float, float]],
) -> List[TornadoEntry]:
    """One-at-a-time tornado analysis.

    Parameters
    ----------
    model:
        Callable taking a full ``{parameter: value}`` mapping.
    base:
        Base values for every parameter.
    bounds:
        ``{parameter: (low, high)}`` for the parameters to vary; each
        must also appear in *base*.

    Returns
    -------
    list of TornadoEntry, sorted by decreasing swing.
    """
    missing = [p for p in bounds if p not in base]
    if missing:
        raise ValidationError(f"bounds given for parameters not in base: {missing}")
    base_output = float(model(dict(base)))
    entries = []
    for parameter, (low, high) in bounds.items():
        low_point = dict(base, **{parameter: low})
        high_point = dict(base, **{parameter: high})
        entries.append(
            TornadoEntry(
                parameter=parameter,
                low_output=float(model(low_point)),
                high_output=float(model(high_point)),
                base_output=base_output,
            )
        )
    return sorted(entries, key=lambda e: -e.swing)


def elasticity(
    model: Callable[[Mapping[str, float]], float],
    base: Mapping[str, float],
    parameters: Tuple[str, ...] = (),
    relative_step: float = 1e-4,
) -> Dict[str, float]:
    """Normalized local sensitivities by central finite differences.

    The elasticity of the output ``A`` with respect to parameter ``p``
    is ``(dA / dp) * (p / A)`` — the percentage output change per
    percent parameter change, comparable across parameters of different
    magnitudes (failure rates vs probabilities).

    Parameters with base value 0 are skipped (elasticity undefined).
    """
    if relative_step <= 0:
        raise ValidationError(f"relative_step must be > 0, got {relative_step}")
    parameters = parameters or tuple(base)
    base_output = float(model(dict(base)))
    if base_output == 0.0:
        raise ValidationError("model output at the base point is zero")
    result: Dict[str, float] = {}
    for parameter in parameters:
        if parameter not in base:
            raise ValidationError(f"unknown parameter {parameter!r}")
        value = float(base[parameter])
        if value == 0.0:
            continue
        step = abs(value) * relative_step
        up = dict(base, **{parameter: value + step})
        down = dict(base, **{parameter: value - step})
        derivative = (float(model(up)) - float(model(down))) / (2.0 * step)
        result[parameter] = derivative * value / base_output
    return result
