"""Retry-with-escalation around steady-state solver calls.

:func:`repro.markov.solvers.steady_state` already falls back between
strategies, but it reports failures only through warnings and gives the
caller no durable trace of *what* was tried.  This wrapper makes solver
escalation a first-class, journaled operation for long campaigns:

* strategies run in the escalation order **dense linear → GTH → power
  iteration** (cheapest first, most robust last), each attempted a
  bounded number of times;
* every attempt — accepted, rejected on residual, or errored — is
  appended to the run journal as a ``solver_attempt`` record with
  structured diagnostics, so a resumed or post-mortem'd run can see the
  full numerical history;
* a :class:`~repro.runtime.budget.CancellationToken` is polled between
  attempts, so a deadline interrupts an escalation chain rather than
  waiting out a doomed solve sequence.

Deterministic direct solvers do not benefit from *identical* re-runs, so
``attempts_per_strategy`` retries perturb nothing; they exist for the
power-iteration stage, where extra attempts continue from the previous
iterate and effectively double the iteration budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_positive_int
from ..errors import NotIrreducibleError, SolverError
from ..obs.context import active_metrics
from .budget import CancellationToken
from .journal import Journal

__all__ = ["SolveAttempt", "solve_steady_state_with_escalation"]

#: Escalation order; each entry is (name, callable building pi from q).
_ESCALATION = ("dense", "gth", "power")


@dataclass(frozen=True)
class SolveAttempt:
    """Diagnostics of one solver attempt within an escalation chain.

    Attributes
    ----------
    strategy:
        ``"dense"``, ``"gth"``, or ``"power"``.
    attempt:
        1-based attempt number within the strategy.
    outcome:
        ``"accepted"`` (residual within tolerance), ``"rejected"``
        (solved but residual too large), or ``"error"`` (solver raised).
    residual:
        Componentwise balance residual of the candidate, when one was
        produced.
    detail:
        Error message for ``"error"`` outcomes, empty otherwise.
    """

    strategy: str
    attempt: int
    outcome: str
    residual: Optional[float] = None
    detail: str = ""

    def as_record(self) -> dict:
        """The attempt as journal-record fields."""
        return {
            "strategy": self.strategy,
            "attempt": self.attempt,
            "outcome": self.outcome,
            "residual": self.residual,
            "detail": self.detail,
        }


def _solve_once(strategy: str, q: np.ndarray) -> np.ndarray:
    from ..markov.solvers import (
        steady_state_gth,
        steady_state_linear,
        steady_state_power,
    )

    if strategy == "dense":
        return steady_state_linear(q, sparse=False)
    if strategy == "gth":
        return steady_state_gth(q)
    max_exit = float(np.max(-np.diag(q)))
    rate = max_exit * 1.05 if max_exit > 0 else 1.0
    p = np.eye(q.shape[0]) + q / rate
    pi, _iterations = steady_state_power(p)
    return pi


def solve_steady_state_with_escalation(
    generator: np.ndarray,
    residual_tol: float = 1e-9,
    attempts_per_strategy: int = 1,
    journal: Optional[Journal] = None,
    cancellation: Optional[CancellationToken] = None,
    strategies: Sequence[str] = _ESCALATION,
) -> Tuple[np.ndarray, List[SolveAttempt]]:
    """Steady-state solve with bounded, journaled strategy escalation.

    Parameters
    ----------
    generator:
        CTMC infinitesimal generator.
    residual_tol:
        Acceptance threshold on the componentwise balance residual.
    attempts_per_strategy:
        Bounded retry count per strategy before escalating.
    journal:
        Optional run journal; one ``solver_attempt`` record is appended
        per attempt and one ``solver_failure`` record when the whole
        chain is exhausted.
    cancellation:
        Polled between attempts.
    strategies:
        Escalation order; defaults to ``("dense", "gth", "power")``.

    Returns
    -------
    (pi, attempts):
        The accepted distribution and the full attempt history,
        including the accepting attempt.

    Raises
    ------
    SolverError
        When every strategy exhausts its attempts.
    """
    from ..markov.solvers import _residual, check_generator

    q = check_generator(generator)
    attempts_per_strategy = check_positive_int(
        attempts_per_strategy, "attempts_per_strategy"
    )
    history: List[SolveAttempt] = []

    metrics = active_metrics()

    def note(attempt: SolveAttempt) -> None:
        history.append(attempt)
        if journal is not None:
            journal.append("solver_attempt", **attempt.as_record())
        if metrics is not None:
            metrics.counter(
                "solver_escalation_attempts",
                help="Escalation-chain solver attempts by strategy and outcome.",
                strategy=attempt.strategy,
                outcome=attempt.outcome,
            ).inc()

    for strategy in strategies:
        if strategy not in _ESCALATION:
            raise SolverError(
                f"unknown solver strategy {strategy!r}; "
                f"expected one of {_ESCALATION}"
            )
        for attempt_number in range(1, attempts_per_strategy + 1):
            if cancellation is not None:
                cancellation.check()
            try:
                pi = _solve_once(strategy, q)
            except NotIrreducibleError:
                # No escalation can conjure a unique steady state.
                raise
            except SolverError as exc:
                note(SolveAttempt(
                    strategy=strategy,
                    attempt=attempt_number,
                    outcome="error",
                    detail=str(exc),
                ))
                continue
            residual = _residual(q, pi)
            if np.isfinite(residual) and residual <= residual_tol:
                note(SolveAttempt(
                    strategy=strategy,
                    attempt=attempt_number,
                    outcome="accepted",
                    residual=residual,
                ))
                return pi, history
            note(SolveAttempt(
                strategy=strategy,
                attempt=attempt_number,
                outcome="rejected",
                residual=float(residual),
                detail=(
                    f"residual {residual:.3e} above tolerance "
                    f"{residual_tol:.3e}"
                ),
            ))

    summary = "; ".join(
        f"{a.strategy}#{a.attempt}:{a.outcome}"
        + (f"({a.detail})" if a.detail else "")
        for a in history
    )
    if journal is not None:
        journal.append(
            "solver_failure",
            strategies=list(strategies),
            attempts=[a.as_record() for a in history],
        )
    raise SolverError(
        "steady-state escalation chain exhausted "
        f"({len(history)} attempts): {summary}"
    )
