"""Progress heartbeats for long-running entry points.

A heartbeat is any callable accepting one :class:`ProgressEvent`;
instrumented code emits an event at every natural progress point (a
campaign replication finished, a resume skipped completed work).  Two
implementations cover the common consumers:

* :class:`ConsoleHeartbeat` — prints throttled liveness lines; the CLI
  attaches one under ``--progress`` so a multi-hour campaign is visibly
  alive.
* :class:`Watchdog` — records every beat and can assert that beats keep
  arriving; tests use it both to observe instrumentation and as a
  liveness check on code that must not silently hang.

The protocol is deliberately one-way: heartbeats observe, they do not
steer.  To *react* to progress (e.g. cancel after N replications), pair
a heartbeat with a :class:`~repro.runtime.budget.CancellationToken` —
the crash/resume tests do exactly that.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, List, Optional, TextIO

from ..errors import SimulationError
from ..obs.clock import monotonic

__all__ = ["ProgressEvent", "HeartbeatCallback", "ConsoleHeartbeat", "Watchdog"]


@dataclass(frozen=True)
class ProgressEvent:
    """One liveness report from an instrumented run.

    Attributes
    ----------
    phase:
        Which unit of work is reporting (e.g. ``"campaign Class A/null"``).
    completed:
        Work items finished so far within the phase.
    total:
        Total work items in the phase, when known in advance.
    message:
        Free-form detail (latest replication's availability, etc.).
    """

    phase: str
    completed: int
    total: Optional[int] = None
    message: str = ""

    def render(self) -> str:
        """The event as a one-line human-readable string."""
        progress = (
            f"{self.completed}/{self.total}"
            if self.total is not None
            else str(self.completed)
        )
        suffix = f" — {self.message}" if self.message else ""
        return f"[{self.phase}] {progress}{suffix}"


HeartbeatCallback = Callable[[ProgressEvent], None]


class ConsoleHeartbeat:
    """Prints progress events, throttled to one line per *min_interval*.

    Phase boundaries (first and last event of a phase) always print so
    short runs are not silenced entirely by the throttle.
    """

    def __init__(
        self,
        stream: TextIO = sys.stderr,
        min_interval: float = 5.0,
        clock: Callable[[], float] = monotonic,
    ):
        self._stream = stream
        self._min_interval = float(min_interval)
        self._clock = clock
        self._last_printed: Optional[float] = None

    def __call__(self, event: ProgressEvent) -> None:
        now = self._clock()
        boundary = event.completed == 0 or (
            event.total is not None and event.completed >= event.total
        )
        throttled = (
            self._last_printed is not None
            and now - self._last_printed < self._min_interval
        )
        if throttled and not boundary:
            return
        self._last_printed = now
        print(event.render(), file=self._stream, flush=True)


@dataclass
class Watchdog:
    """Records beats and asserts liveness; the test-suite heartbeat.

    Examples
    --------
    >>> watchdog = Watchdog()
    >>> watchdog.beats
    []
    >>> watchdog(ProgressEvent(phase="demo", completed=1, total=2))
    >>> watchdog.last_event.completed
    1
    """

    clock: Callable[[], float] = monotonic
    beats: List[ProgressEvent] = field(default_factory=list)
    last_beat_at: Optional[float] = None

    def __call__(self, event: ProgressEvent) -> None:
        self.beats.append(event)
        self.last_beat_at = self.clock()

    @property
    def last_event(self) -> Optional[ProgressEvent]:
        return self.beats[-1] if self.beats else None

    def assert_alive(self, within: float) -> None:
        """Raise unless a beat arrived in the last *within* seconds.

        Raises :class:`~repro.errors.SimulationError` so harnesses can
        treat a silent hang like any other simulation fault.
        """
        if self.last_beat_at is None:
            raise SimulationError(
                f"watchdog saw no heartbeat at all (expected one within "
                f"{within:g}s)"
            )
        silence = self.clock() - self.last_beat_at
        if silence > within:
            raise SimulationError(
                f"watchdog starved: last heartbeat {silence:.3f}s ago "
                f"(limit {within:g}s)"
            )
