"""Fault-tolerant execution runtime for long-running evaluations.

Campaigns and solvers are the longest-running code paths in this
library; this package is the substrate that makes them interruptible,
bounded, and resumable:

* :mod:`~repro.runtime.budget` — :class:`Budget`, :class:`Deadline`,
  and the cooperative :class:`CancellationToken` threaded through the
  simulation kernel, the end-to-end simulator, campaign runners, and
  the uniformization solver;
* :mod:`~repro.runtime.journal` — crash-consistent JSONL journaling
  (atomic append + fsync, schema-versioned, torn-tail tolerant) used to
  persist per-replication campaign results;
* :mod:`~repro.runtime.heartbeat` — the progress-callback protocol the
  CLI uses for liveness printing and tests use as a watchdog;
* :mod:`~repro.runtime.solver_retry` — bounded, journaled retry with
  dense → GTH → power escalation around steady-state solves.

The campaign-specific resume logic lives with the campaign engine
(:func:`repro.resilience.campaign.resume_campaign`) and builds entirely
on this package.
"""

from .budget import Budget, CancellationToken, Deadline
from .heartbeat import ConsoleHeartbeat, HeartbeatCallback, ProgressEvent, Watchdog
from .journal import SCHEMA_VERSION, Journal, read_journal
from .solver_retry import SolveAttempt, solve_steady_state_with_escalation

__all__ = [
    "Budget",
    "CancellationToken",
    "Deadline",
    "ConsoleHeartbeat",
    "HeartbeatCallback",
    "ProgressEvent",
    "Watchdog",
    "SCHEMA_VERSION",
    "Journal",
    "read_journal",
    "SolveAttempt",
    "solve_steady_state_with_escalation",
]
