"""Crash-consistent JSONL run journals.

A journal is an append-only file of JSON records, one per line.  Every
append writes the full line, flushes, and ``fsync``\\ s before returning,
so after a crash (process kill, power loss on a journalling filesystem)
the file contains every acknowledged record plus at most one torn final
line.  The reader tolerates exactly that failure mode: a partial or
corrupt *final* line is discarded, while corruption anywhere earlier
raises :class:`~repro.errors.ResumeError` (the journal cannot be
trusted).

Records are schema-versioned and sequence-numbered::

    {"v": 1, "seq": 0, "kind": "campaign_start", ...}
    {"v": 1, "seq": 1, "kind": "replication", "index": 0, ...}

``v`` guards against readers from a different schema generation; ``seq``
must increase by one per record, which catches truncation in the middle
of a journal (e.g. a copy that lost a block) that would otherwise look
like a clean prefix.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from ..errors import ResumeError, ValidationError
from ..obs.context import active_metrics

__all__ = ["SCHEMA_VERSION", "Journal", "read_journal"]

#: Version written into every record; bumped on incompatible layout changes.
SCHEMA_VERSION = 1

Record = Dict[str, object]
PathLike = Union[str, "os.PathLike[str]"]


class Journal:
    """Append-only JSONL journal with per-record durability.

    Parameters
    ----------
    path:
        Journal file; created (with parent directories) when missing.
    fsync:
        When True (the default) every append is fsynced before the call
        returns — the crash-consistency guarantee.  Tests that create
        thousands of journals may disable it.

    Examples
    --------
    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "run.jsonl")
    >>> with Journal(path) as journal:
    ...     _ = journal.append("campaign_start", seed=7)
    ...     _ = journal.append("replication", index=0, value=0.5)
    >>> [record["kind"] for record in read_journal(path)]
    ['campaign_start', 'replication']
    """

    def __init__(self, path: PathLike, fsync: bool = True):
        self._path = Path(path)
        self._fsync = bool(fsync)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        # Continue the sequence when appending to an existing journal,
        # first truncating any torn final line — appending after a torn
        # tail would weld the new record onto the partial one and corrupt
        # the journal *mid-file*, which readers rightly refuse.
        if self._path.exists():
            self._repair_torn_tail()
            self._seq = len(read_journal(self._path, missing_ok=True))
        else:
            self._seq = 0
        self._file = open(self._path, "a", encoding="utf-8")
        self._metrics = active_metrics()

    def _repair_torn_tail(self) -> None:
        """Truncate the file to its durable prefix of complete records."""
        raw = self._path.read_bytes()
        durable = _durable_prefix(raw)
        if durable < len(raw):
            with open(self._path, "r+b") as handle:
                handle.truncate(durable)
            if self._fsync:
                with open(self._path, "rb") as handle:
                    os.fsync(handle.fileno())

    @property
    def path(self) -> Path:
        return self._path

    @property
    def next_seq(self) -> int:
        """Sequence number the next appended record will carry."""
        return self._seq

    def append(self, kind: str, **fields) -> Record:
        """Durably append one record; returns the record as written.

        ``v``, ``seq``, and ``kind`` are reserved keys managed by the
        journal; passing them in *fields* raises
        :class:`~repro.errors.ValidationError`.
        """
        if self._file.closed:
            raise ResumeError(f"journal {self._path} is closed")
        reserved = {"v", "seq", "kind"} & set(fields)
        if reserved:
            raise ValidationError(
                f"record fields {sorted(reserved)} are reserved journal keys"
            )
        record: Record = {"v": SCHEMA_VERSION, "seq": self._seq, "kind": kind}
        record.update(fields)
        line = json.dumps(record, sort_keys=False, separators=(",", ":"))
        self._file.write(line + "\n")
        self._file.flush()
        if self._fsync:
            os.fsync(self._file.fileno())
        if self._metrics is not None:
            self._metrics.counter(
                "journal_records",
                help="Records durably appended to run journals.",
            ).inc()
            self._metrics.counter(
                "journal_bytes",
                help="Payload bytes appended to run journals.",
            ).inc(len(line) + 1)
            if self._fsync:
                self._metrics.counter(
                    "journal_fsyncs",
                    help="fsync calls issued by journal appends.",
                ).inc()
        self._seq += 1
        return record

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Journal({str(self._path)!r}, records={self._seq})"


def _durable_prefix(raw: bytes) -> int:
    """Byte length of the longest prefix of complete, parsable lines.

    Walks *raw* line by line (newlines kept) and stops at the first line
    that is not newline-terminated or does not parse as JSON — the torn
    tail a crash can leave.  Blank lines are tolerated, matching
    :func:`read_journal`.
    """
    end = 0
    for line in raw.splitlines(keepends=True):
        if not line.endswith(b"\n"):
            break
        stripped = line.strip()
        if stripped:
            try:
                json.loads(stripped.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                break
        end += len(line)
    return end


def read_journal(path: PathLike, missing_ok: bool = False) -> List[Record]:
    """Read a journal, tolerating a torn final line.

    Returns the list of records.  A missing or empty file raises
    :class:`~repro.errors.ResumeError` naming the path — resuming from a
    journal that was never written is almost always a mistyped path, and
    silently treating it as "no progress" would rerun a whole campaign.
    Pass ``missing_ok=True`` to read such a file as the empty journal
    (the writer-side convention: a campaign interrupted before its first
    durable append).

    Raises
    ------
    ResumeError
        When the file is missing or empty (unless ``missing_ok``), when
        a record before the final line is unparsable, when schema
        versions don't match :data:`SCHEMA_VERSION`, or when sequence
        numbers are not the contiguous run ``0, 1, 2, ...``.
    """
    path = Path(path)
    if not path.exists():
        if missing_ok:
            return []
        raise ResumeError(
            f"journal {path} does not exist; nothing to resume"
        )
    raw = path.read_text(encoding="utf-8")
    if not raw.strip() and not missing_ok:
        raise ResumeError(
            f"journal {path} is empty; nothing to resume"
        )
    lines = raw.split("\n")
    # A well-formed journal ends with "\n", leaving one empty trailing
    # element; anything else on the last element is a torn write.
    torn_tail = lines.pop() if lines else ""
    records: List[Record] = []
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == len(lines) - 1 and not torn_tail:
                # Corrupt final *complete* line: a torn write where the
                # newline made it to disk but part of the payload did not
                # (possible on non-atomic sector boundaries).  Still
                # recoverable — everything before it is intact.
                break
            raise ResumeError(
                f"journal {path} is corrupt at line {lineno + 1}: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise ResumeError(
                f"journal {path} line {lineno + 1} is not a JSON object"
            )
        records.append(record)
    _validate_schema(records, path)
    return records


def _validate_schema(records: Iterable[Record], path: Path) -> None:
    for position, record in enumerate(records):
        version = record.get("v")
        if version != SCHEMA_VERSION:
            raise ResumeError(
                f"journal {path} record {position} has schema version "
                f"{version!r}; this reader understands {SCHEMA_VERSION}"
            )
        if record.get("seq") != position:
            raise ResumeError(
                f"journal {path} record {position} carries seq "
                f"{record.get('seq')!r}; the journal is missing records"
            )
        if not isinstance(record.get("kind"), str):
            raise ResumeError(
                f"journal {path} record {position} has no 'kind'"
            )


def latest_of_kind(records: Iterable[Record], kind: str) -> Optional[Record]:
    """The last record of *kind*, or None.  Small helper for resumers."""
    found = None
    for record in records:
        if record.get("kind") == kind:
            found = record
    return found
