"""Execution budgets, deadlines, and cooperative cancellation.

Long-running entry points (campaigns, end-to-end simulations, transient
solvers) accept an optional :class:`CancellationToken` and poll it at
their natural progress points.  A token trips for one of two reasons:

* the caller invoked :meth:`CancellationToken.cancel` (interactive
  interrupt, watchdog, test harness) — the next poll raises
  :class:`~repro.errors.CancelledError`;
* a :class:`Budget` bound was exhausted (wall-clock deadline, event
  count, iteration count) — the next poll raises
  :class:`~repro.errors.DeadlineExceededError` naming the bound.

Polling is cheap by construction: the manual-cancel flag and the integer
budget counters are checked on every call, while the wall clock is only
consulted every :attr:`CancellationToken.clock_stride` polls, so a token
can be checked per simulated event without measurable overhead.

Cancellation is *cooperative*: code that never polls is never
interrupted.  In exchange, every interruption point is a place where the
program state is consistent — journals hold only whole records, partial
campaign results are preserved, and a resumed run continues exactly
where the cancelled one stopped.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from .._validation import check_positive, check_positive_int
from ..errors import CancelledError, DeadlineExceededError

__all__ = ["Budget", "Deadline", "CancellationToken"]

Clock = Callable[[], float]


class Deadline:
    """A fixed point on a monotonic clock.

    Examples
    --------
    >>> deadline = Deadline.after(3600.0)
    >>> deadline.expired
    False
    >>> deadline.remaining() <= 3600.0
    True
    """

    __slots__ = ("_at", "_clock")

    def __init__(self, at: float, clock: Clock = time.monotonic):
        self._at = float(at)
        self._clock = clock

    @classmethod
    def after(cls, seconds: float, clock: Clock = time.monotonic) -> "Deadline":
        """The deadline *seconds* from now on *clock*."""
        seconds = check_positive(seconds, "seconds")
        return cls(clock() + seconds, clock=clock)

    @property
    def at(self) -> float:
        """Absolute expiry instant in the clock's time base."""
        return self._at

    def remaining(self) -> float:
        """Seconds until expiry (negative once expired)."""
        return self._at - self._clock()

    @property
    def expired(self) -> bool:
        return self._clock() >= self._at

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deadline(remaining={self.remaining():.3f}s)"


@dataclass(frozen=True)
class Budget:
    """Resource bounds for one run; ``None`` leaves a dimension unbounded.

    Attributes
    ----------
    wall_clock:
        Real-time allowance in seconds.
    max_events:
        Cap on simulated events (discrete-event transitions).
    max_iterations:
        Cap on numerical-solver iterations (e.g. uniformization terms).

    Examples
    --------
    >>> token = Budget(max_events=2).start()
    >>> token.count_event()
    >>> token.count_event()
    >>> token.count_event()
    Traceback (most recent call last):
        ...
    repro.errors.DeadlineExceededError: event budget of 2 events exhausted
    """

    wall_clock: Optional[float] = None
    max_events: Optional[int] = None
    max_iterations: Optional[int] = None

    def __post_init__(self):
        if self.wall_clock is not None:
            check_positive(self.wall_clock, "wall_clock")
        if self.max_events is not None:
            check_positive_int(self.max_events, "max_events")
        if self.max_iterations is not None:
            check_positive_int(self.max_iterations, "max_iterations")

    @property
    def unbounded(self) -> bool:
        """True when no dimension is limited."""
        return (
            self.wall_clock is None
            and self.max_events is None
            and self.max_iterations is None
        )

    def start(self, clock: Clock = time.monotonic) -> "CancellationToken":
        """Begin the budget now; returns the token to thread through a run."""
        deadline = (
            Deadline.after(self.wall_clock, clock=clock)
            if self.wall_clock is not None
            else None
        )
        return CancellationToken(
            deadline=deadline,
            max_events=self.max_events,
            max_iterations=self.max_iterations,
        )


class CancellationToken:
    """Cooperative cancellation point threaded through long-running code.

    Parameters
    ----------
    deadline:
        Optional wall-clock bound; polled every *clock_stride* checks.
    max_events / max_iterations:
        Optional integer budgets enforced by :meth:`count_event` and
        :meth:`count_iteration`.
    clock_stride:
        How many polls share one wall-clock reading.  The default keeps
        per-event polling cost at an integer compare; lower it in tests
        that need tight deadline reactions.
    """

    __slots__ = (
        "_cancelled",
        "_reason",
        "deadline",
        "max_events",
        "max_iterations",
        "events",
        "iterations",
        "clock_stride",
        "_until_clock_check",
    )

    def __init__(
        self,
        deadline: Optional[Deadline] = None,
        max_events: Optional[int] = None,
        max_iterations: Optional[int] = None,
        clock_stride: int = 256,
    ):
        self._cancelled = False
        self._reason = ""
        self.deadline = deadline
        self.max_events = max_events
        self.max_iterations = max_iterations
        self.events = 0
        self.iterations = 0
        self.clock_stride = check_positive_int(clock_stride, "clock_stride")
        self._until_clock_check = 0

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called (budgets not included)."""
        return self._cancelled

    @property
    def reason(self) -> str:
        """The reason passed to :meth:`cancel`, or the empty string."""
        return self._reason

    def cancel(self, reason: str = "cancelled by caller") -> None:
        """Trip the token; the next :meth:`check` raises.  Idempotent."""
        if not self._cancelled:
            self._cancelled = True
            self._reason = reason

    def check(self) -> None:
        """Raise if cancelled or past the deadline; otherwise return.

        Raises
        ------
        CancelledError
            After :meth:`cancel` was called.
        DeadlineExceededError
            Once the wall-clock deadline has passed.
        """
        if self._cancelled:
            raise CancelledError(
                f"run was cancelled: {self._reason}", reason=self._reason
            )
        if self.deadline is not None:
            self._until_clock_check -= 1
            if self._until_clock_check <= 0:
                self._until_clock_check = self.clock_stride
                if self.deadline.expired:
                    raise DeadlineExceededError(
                        "wall-clock deadline exceeded "
                        f"({-self.deadline.remaining():.3f}s past the limit)",
                        limit="wall_clock",
                    )

    def count_event(self, n: int = 1) -> None:
        """Charge *n* simulated events against the budget, then check."""
        self.events += n
        if self.max_events is not None and self.events > self.max_events:
            raise DeadlineExceededError(
                f"event budget of {self.max_events} events exhausted",
                limit="max_events",
            )
        self.check()

    def count_iteration(self, n: int = 1) -> None:
        """Charge *n* solver iterations against the budget, then check."""
        self.iterations += n
        if (
            self.max_iterations is not None
            and self.iterations > self.max_iterations
        ):
            raise DeadlineExceededError(
                f"iteration budget of {self.max_iterations} iterations "
                "exhausted",
                limit="max_iterations",
            )
        self.check()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "cancelled" if self._cancelled else "active"
        return (
            f"CancellationToken({state}, events={self.events}, "
            f"iterations={self.iterations})"
        )
