"""Interaction diagrams: per-function service-execution scenarios.

An interaction diagram (Figs. 3-6 of the paper) is a directed acyclic
graph from a reserved ``"Begin"`` node to a reserved ``"End"`` node.
Each node represents a processing step and is tagged with the services
it uses (a node may use several services at once — the AND-split of the
Search diagram submits a request to the flight, hotel and car systems
simultaneously).  Branch probabilities ``q_ij`` select between
alternative executions; each Begin->End path is a *function scenario*.

The function's availability is the expectation, over scenarios, of the
product of the availabilities of the distinct services the scenario
touches — eq. "A(Browse)" of Table 6 is exactly this computation on the
Fig. 3 diagram.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Tuple

from .._validation import check_probability
from ..errors import ModelStructureError, ValidationError

__all__ = ["InteractionDiagram", "FunctionScenario"]

BEGIN = "Begin"
END = "End"

Node = Hashable


@dataclass(frozen=True)
class FunctionScenario:
    """One execution scenario of a function.

    Attributes
    ----------
    path:
        The node sequence from Begin to End.
    probability:
        Product of the branch probabilities along the path.
    services:
        The distinct services used by the steps of the path.
    """

    path: Tuple[Node, ...]
    probability: float
    services: FrozenSet[str]


class InteractionDiagram:
    """A per-function service interaction diagram.

    Parameters
    ----------
    name:
        The function name the diagram describes.

    Examples
    --------
    The paper's Browse diagram (Fig. 3), condensed to its three scenarios:

    >>> d = InteractionDiagram("browse")
    >>> d.add_node("ws-hit", services=["web"])
    >>> d.add_node("app", services=["web", "application"])
    >>> d.add_node("db", services=["web", "application", "database"])
    >>> d.add_edge("Begin", "ws-hit", 0.2)
    >>> d.add_edge("Begin", "app", 0.32)
    >>> d.add_edge("Begin", "db", 0.48)
    >>> for node in ("ws-hit", "app", "db"):
    ...     d.add_edge(node, "End")
    >>> round(d.availability({"web": 1.0, "application": 1.0,
    ...                       "database": 0.5}), 3)
    0.76
    """

    def __init__(self, name: str):
        if not name:
            raise ValidationError("diagram name must be non-empty")
        self.name = name
        self._services: Dict[Node, FrozenSet[str]] = {BEGIN: frozenset(), END: frozenset()}
        self._edges: Dict[Node, List[Tuple[Node, float]]] = {}
        self._node_order: List[Node] = [BEGIN, END]

    # ------------------------------------------------------------------
    def add_node(self, node: Node, services: Iterable[str] = ()) -> None:
        """Register a processing step and the services it uses."""
        if node in (BEGIN, END):
            raise ValidationError(f"{node!r} is a reserved node name")
        if node in self._services:
            raise ValidationError(f"node {node!r} already exists")
        self._services[node] = frozenset(services)
        self._node_order.append(node)

    def add_edge(self, src: Node, dst: Node, probability: float = 1.0) -> None:
        """Add a transition; unlabeled transitions default to probability 1."""
        probability = check_probability(probability, f"q({src!r}->{dst!r})")
        if src == END:
            raise ModelStructureError("End must have no outgoing edges")
        if dst == BEGIN:
            raise ModelStructureError("Begin must have no incoming edges")
        for node in (src, dst):
            if node not in self._services:
                raise ValidationError(f"unknown node {node!r}; add_node it first")
        self._edges.setdefault(src, []).append((dst, probability))

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[Node, ...]:
        """All nodes including Begin and End, in registration order."""
        return tuple(self._node_order)

    def services_of(self, node: Node) -> FrozenSet[str]:
        """Services used by a node."""
        if node not in self._services:
            raise ValidationError(f"unknown node {node!r}")
        return self._services[node]

    def all_services(self) -> FrozenSet[str]:
        """Every service referenced anywhere in the diagram."""
        result: set = set()
        for services in self._services.values():
            result |= services
        return frozenset(result)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural soundness.

        * Begin has outgoing edges and every non-End node's outgoing
          probabilities sum to one.
        * The graph is acyclic.
        * Every path reaches End.
        """
        if BEGIN not in self._edges:
            raise ModelStructureError(f"{self.name}: Begin has no outgoing edges")
        for node in self._node_order:
            if node == END:
                continue
            outgoing = self._edges.get(node, [])
            if not outgoing and node != END:
                raise ModelStructureError(
                    f"{self.name}: node {node!r} is a dead end (no path to End)"
                )
            total = sum(p for _, p in outgoing)
            if abs(total - 1.0) > 1e-9:
                raise ModelStructureError(
                    f"{self.name}: outgoing probabilities of {node!r} sum to {total}"
                )
        self._topological_order()  # raises on cycles

    def _topological_order(self) -> List[Node]:
        in_degree: Dict[Node, int] = {n: 0 for n in self._node_order}
        for src, outs in self._edges.items():
            for dst, _ in outs:
                in_degree[dst] += 1
        ready = [n for n, d in in_degree.items() if d == 0]
        order: List[Node] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for dst, _ in self._edges.get(node, []):
                in_degree[dst] -= 1
                if in_degree[dst] == 0:
                    ready.append(dst)
        if len(order) != len(self._node_order):
            cyclic = [n for n, d in in_degree.items() if d > 0]
            raise ModelStructureError(
                f"{self.name}: diagram has a cycle through {cyclic!r}"
            )
        return order

    # ------------------------------------------------------------------
    def scenarios(self) -> Tuple[FunctionScenario, ...]:
        """All Begin->End scenarios with probabilities and service sets."""
        self.validate()
        results: List[FunctionScenario] = []

        def walk(node: Node, path: Tuple[Node, ...], prob: float, used: FrozenSet[str]):
            if node == END:
                results.append(
                    FunctionScenario(path=path, probability=prob, services=used)
                )
                return
            for dst, p in self._edges.get(node, []):
                if p == 0.0:
                    continue
                walk(
                    dst,
                    path + (dst,),
                    prob * p,
                    used | self._services[dst],
                )

        walk(BEGIN, (BEGIN,), 1.0, self._services[BEGIN])
        return tuple(results)

    def service_usage_distribution(self) -> Dict[FrozenSet[str], float]:
        """Distribution of the set of services one execution uses.

        Scenarios touching the same service set are merged.
        """
        usage: Dict[FrozenSet[str], float] = {}
        for scenario in self.scenarios():
            usage[scenario.services] = (
                usage.get(scenario.services, 0.0) + scenario.probability
            )
        return usage

    def availability(self, service_availability: Mapping[str, float]) -> float:
        """Function availability given per-service availabilities.

        ``sum over scenarios of  q_scenario * prod_{s in services} A(s)``
        — the function-level equations of the paper's Table 6.
        """
        total = 0.0
        for services, prob in self.service_usage_distribution().items():
            product = prob
            for service in services:
                try:
                    product *= service_availability[service]
                except KeyError:
                    raise ValidationError(
                        f"{self.name}: no availability for service {service!r}"
                    ) from None
            total += product
        return total
