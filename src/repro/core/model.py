"""The hierarchical model: composing the four levels (paper Fig. 1).

:class:`HierarchicalModel` holds the resource, service and function
definitions and evaluates availability bottom-up.  The user level is
evaluated against a :class:`~repro.profiles.UserClass`: each user
scenario's availability is the expectation of the product of the
availabilities of the *union* of services the scenario's functions touch
— unioning (rather than multiplying function availabilities) is what
implements the shared-service dependency analysis of Section 4.3; it is
exactly how eq. (10) treats, e.g., the web service that every function
needs but that must only be counted once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from ..errors import ModelStructureError, ValidationError
from ..profiles import Scenario, UserClass
from .interaction import InteractionDiagram
from .levels import AvailabilitySource, Function, Resource, Service

__all__ = ["HierarchicalModel", "ScenarioAvailability", "UserLevelResult"]

HOURS_PER_YEAR = 8760.0


@dataclass(frozen=True)
class ScenarioAvailability:
    """Availability of one user scenario.

    Attributes
    ----------
    scenario:
        The user scenario (function set + activation probability).
    availability:
        Probability that every invocation in the scenario succeeds.
    """

    scenario: Scenario
    availability: float

    @property
    def unavailability_contribution(self) -> float:
        """This scenario's share of user-perceived unavailability,
        ``pi * (1 - A)``."""
        return self.scenario.probability * (1.0 - self.availability)


@dataclass(frozen=True)
class UserLevelResult:
    """User-perceived availability for one user class.

    Attributes
    ----------
    user_class:
        Name of the evaluated user class.
    availability:
        The headline measure: ``sum_i pi_i A(scenario_i)``.
    per_scenario:
        Detailed per-scenario availabilities.
    """

    user_class: str
    availability: float
    per_scenario: Tuple[ScenarioAvailability, ...]

    @property
    def unavailability(self) -> float:
        """``1 - availability``."""
        return 1.0 - self.availability

    @property
    def downtime_hours_per_year(self) -> float:
        """Expected user-perceived downtime, hours per year."""
        return self.unavailability * HOURS_PER_YEAR

    def contribution_by(
        self, classifier: Callable[[Scenario], str]
    ) -> Dict[str, float]:
        """Unavailability contribution per scenario category.

        Categories are assigned by *classifier*; contributions
        ``pi_i (1 - A_i)`` are summed per category and add up to the
        total unavailability.  This is the computation behind the
        paper's Fig. 13 (SC1-SC4 breakdown).
        """
        groups: Dict[str, float] = {}
        for item in self.per_scenario:
            key = classifier(item.scenario)
            groups[key] = groups.get(key, 0.0) + item.unavailability_contribution
        return groups


class HierarchicalModel:
    """A four-level availability model of a web-based application.

    Build the model bottom-up with :meth:`add_resource`,
    :meth:`add_service` and :meth:`add_function`, declare the services
    every function implicitly needs with :meth:`require_everywhere`
    (Internet connectivity and the LAN in the paper), then evaluate with
    :meth:`user_availability`.

    Examples
    --------
    >>> from repro.rbd import parallel
    >>> from repro.profiles import UserClass
    >>> model = HierarchicalModel()
    >>> _ = model.add_resource("host", 0.999)
    >>> _ = model.add_service("web", "host")
    >>> _ = model.add_function("home", services=["web"])
    >>> users = UserClass.from_probabilities(
    ...     "all", {frozenset({"home"}): 1.0})
    >>> round(model.user_availability(users).availability, 4)
    0.999
    """

    def __init__(self):
        self._resources: Dict[str, Resource] = {}
        self._services: Dict[str, Service] = {}
        self._functions: Dict[str, Function] = {}
        self._common_services: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_resource(self, name: str, model: AvailabilitySource) -> Resource:
        """Register a resource; returns the created :class:`Resource`."""
        if name in self._resources:
            raise ValidationError(f"resource {name!r} already defined")
        resource = Resource(name, model)
        self._resources[name] = resource
        return resource

    def add_service(self, name: str, structure) -> Service:
        """Register a service built on existing resources."""
        if name in self._services:
            raise ValidationError(f"service {name!r} already defined")
        service = Service(name, structure)
        missing = [
            r for r in service.resource_names() if r not in self._resources
        ]
        if missing:
            raise ModelStructureError(
                f"service {name!r} references undefined resources: {missing}"
            )
        self._services[name] = service
        return service

    def add_function(
        self,
        name: str,
        diagram: Optional[InteractionDiagram] = None,
        services: Iterable[str] = (),
    ) -> Function:
        """Register a function built on existing services."""
        if name in self._functions:
            raise ValidationError(f"function {name!r} already defined")
        function = Function(name, diagram=diagram, services=services)
        missing = [
            s for s in sorted(function.service_names()) if s not in self._services
        ]
        if missing:
            raise ModelStructureError(
                f"function {name!r} references undefined services: {missing}"
            )
        self._functions[name] = function
        return function

    def require_everywhere(self, services: Iterable[str]) -> None:
        """Declare services implicitly required by *every* function.

        The paper's ``A_net`` (Internet connectivity) and ``A_LAN`` are of
        this kind: they multiply every function availability.
        """
        services = tuple(services)
        missing = [s for s in services if s not in self._services]
        if missing:
            raise ModelStructureError(
                f"require_everywhere references undefined services: {missing}"
            )
        self._common_services = services

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def resources(self) -> Tuple[str, ...]:
        """Registered resource names."""
        return tuple(self._resources)

    @property
    def services(self) -> Tuple[str, ...]:
        """Registered service names."""
        return tuple(self._services)

    @property
    def functions(self) -> Tuple[str, ...]:
        """Registered function names."""
        return tuple(self._functions)

    @property
    def common_services(self) -> Tuple[str, ...]:
        """Services required by every function."""
        return self._common_services

    def function_service_usage(self, name: str) -> Dict[FrozenSet[str], float]:
        """Distribution of the service set one invocation of a function
        touches (common services not included)."""
        if name not in self._functions:
            raise ValidationError(f"unknown function {name!r}")
        return self._functions[name].service_usage_distribution()

    def function_service_mapping(self) -> Dict[str, FrozenSet[str]]:
        """Function -> services table (the paper's Table 2)."""
        return {
            name: frozenset(fn.service_names()) | set(self._common_services)
            for name, fn in self._functions.items()
        }

    # ------------------------------------------------------------------
    # Level-by-level evaluation
    # ------------------------------------------------------------------
    def resource_availability(self, name: str) -> float:
        """Availability of one resource."""
        if name not in self._resources:
            raise ValidationError(f"unknown resource {name!r}")
        return self._resources[name].availability()

    def resource_availabilities(self) -> Dict[str, float]:
        """All resource availabilities (resolved once)."""
        return {name: r.availability() for name, r in self._resources.items()}

    def resource(self, name: str) -> Resource:
        """The :class:`Resource` object registered under *name*."""
        if name not in self._resources:
            raise ValidationError(f"unknown resource {name!r}")
        return self._resources[name]

    def service_structure(self, name: str):
        """The RBD :class:`~repro.rbd.Block` backing a service."""
        if name not in self._services:
            raise ValidationError(f"unknown service {name!r}")
        return self._services[name].structure

    def service_availability(self, name: str) -> float:
        """Availability of one service."""
        if name not in self._services:
            raise ValidationError(f"unknown service {name!r}")
        return self._services[name].availability(self.resource_availabilities())

    def service_availabilities_given(
        self, resource_availability: Mapping[str, float]
    ) -> Dict[str, float]:
        """Service availabilities under explicit resource availabilities.

        Used for conditional evaluations — e.g. the end-to-end simulator
        passes boolean (0/1) resource states to get the services that are
        up *right now*.
        """
        return {
            name: service.availability(resource_availability)
            for name, service in self._services.items()
        }

    def service_availabilities(self) -> Dict[str, float]:
        """All service availabilities (resources resolved once)."""
        resources = self.resource_availabilities()
        return {
            name: service.availability(resources)
            for name, service in self._services.items()
        }

    def function_availability(self, name: str) -> float:
        """Availability of one function (common services included)."""
        if name not in self._functions:
            raise ValidationError(f"unknown function {name!r}")
        services = self.service_availabilities()
        value = self._functions[name].availability(services)
        for common in self._common_services:
            value *= services[common]
        return value

    # ------------------------------------------------------------------
    # User level
    # ------------------------------------------------------------------
    def scenario_availability(
        self,
        functions: Iterable[str],
        service_availability: Optional[Mapping[str, float]] = None,
    ) -> float:
        """Availability of a user scenario invoking the given functions.

        Each function's invocation may touch a random subset of services
        (its interaction-diagram scenarios); the session succeeds when
        every service in the *union* of touched sets (plus the common
        services) is available.  Shared services are therefore counted
        once — the dependency treatment of Section 4.3.
        """
        function_names = list(functions)
        for name in function_names:
            if name not in self._functions:
                raise ValidationError(f"unknown function {name!r}")
        services = (
            dict(service_availability)
            if service_availability is not None
            else self.service_availabilities()
        )

        # Distribution over the union of service sets across functions.
        union_dist: Dict[FrozenSet[str], float] = {
            frozenset(self._common_services): 1.0
        }
        for name in function_names:
            usage = self._functions[name].service_usage_distribution()
            combined: Dict[FrozenSet[str], float] = {}
            for current, p_current in union_dist.items():
                for touched, p_touched in usage.items():
                    key = current | touched
                    combined[key] = combined.get(key, 0.0) + p_current * p_touched
            union_dist = combined

        total = 0.0
        for service_set, prob in union_dist.items():
            product = prob
            for service in service_set:
                product *= services[service]
            total += product
        return total

    def user_availability(self, user_class: UserClass) -> UserLevelResult:
        """User-perceived availability for a user class (paper eq. 10)."""
        services = self.service_availabilities()
        per_scenario: List[ScenarioAvailability] = []
        total = 0.0
        for scenario in user_class.scenarios:
            availability = self.scenario_availability(
                scenario.functions, service_availability=services
            )
            per_scenario.append(
                ScenarioAvailability(scenario=scenario, availability=availability)
            )
            total += scenario.probability * availability
        return UserLevelResult(
            user_class=user_class.name,
            availability=total,
            per_scenario=tuple(per_scenario),
        )

    def service_importance(self, user_class: UserClass) -> Dict[str, float]:
        """First-order influence of each service on user availability.

        Because user availability is multilinear in service
        availabilities, the partial derivative with respect to service
        ``s`` equals ``A(user | A_s = 1) - A(user | A_s = 0)`` (Birnbaum
        importance at the service level).  The paper's observation that
        the LAN, the Internet connectivity and the web service dominate
        is this measure.
        """
        base_services = self.service_availabilities()
        importance: Dict[str, float] = {}
        for name in self._services:
            up = dict(base_services, **{name: 1.0})
            down = dict(base_services, **{name: 0.0})
            a_up = self._user_availability_with(user_class, up)
            a_down = self._user_availability_with(user_class, down)
            importance[name] = a_up - a_down
        return importance

    def _user_availability_with(
        self, user_class: UserClass, services: Mapping[str, float]
    ) -> float:
        return sum(
            scenario.probability
            * self.scenario_availability(
                scenario.functions, service_availability=services
            )
            for scenario in user_class.scenarios
        )
