"""The hierarchical availability-modeling framework (the paper's core).

Modeling proceeds over four levels (Fig. 1 of the paper):

* **resource level** — availability models of hardware/software
  resources (hosts, disks, LAN, black-box external systems, the
  web-server farm);
* **service level** — services assembled from resources through
  reliability block diagrams;
* **function level** — site functions whose execution follows an
  :class:`InteractionDiagram` across services;
* **user level** — a :class:`~repro.profiles.UserClass` scenario mix,
  producing the *user-perceived availability*.

:class:`HierarchicalModel` ties the levels together: outputs of each
level feed the next, exactly as in the paper's Fig. 1, and the user-level
evaluation accounts for services shared between functions (the
dependency analysis of Section 4.3) by working with the distribution of
the *union* of services a scenario touches.
"""

from .interaction import InteractionDiagram, FunctionScenario
from .levels import Resource, Service, Function
from .model import HierarchicalModel, UserLevelResult, ScenarioAvailability

__all__ = [
    "InteractionDiagram",
    "FunctionScenario",
    "Resource",
    "Service",
    "Function",
    "HierarchicalModel",
    "UserLevelResult",
    "ScenarioAvailability",
]
