"""Entity types of the hierarchical model's three lower levels.

* :class:`Resource` — anything with a steady-state availability: a float,
  a model object exposing ``availability`` (attribute, property or
  zero-argument method, e.g. :class:`~repro.availability.TwoStateAvailability`
  or :class:`~repro.availability.WebServiceModel`), or a callable.
* :class:`Service` — a reliability block diagram over resources (internal
  services), or a single black-box resource (external services).
* :class:`Function` — a site function, with an optional interaction
  diagram describing which services each execution touches.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Mapping, Optional, Tuple, Union

from .._validation import check_probability
from ..errors import ValidationError
from ..rbd import Block, Component, system_availability
from .interaction import InteractionDiagram

__all__ = ["Resource", "Service", "Function"]

AvailabilitySource = Union[float, int, Callable[[], float], object]


class Resource:
    """A resource-level entity with a resolvable availability.

    Parameters
    ----------
    name:
        Unique resource name.
    model:
        One of: a number in [0, 1]; an object with an ``availability``
        attribute, property or zero-argument method; or a zero-argument
        callable returning the availability.

    Examples
    --------
    >>> Resource("lan", 0.9966).availability()
    0.9966
    """

    def __init__(self, name: str, model: AvailabilitySource):
        if not name:
            raise ValidationError("resource name must be non-empty")
        self.name = name
        self._model = model
        # Fail fast on unusable models.
        self.availability()

    def availability(self) -> float:
        """Resolve the resource's current steady-state availability."""
        model = self._model
        if isinstance(model, (int, float)) and not isinstance(model, bool):
            return check_probability(float(model), f"availability({self.name})")
        attr = getattr(model, "availability", None)
        if attr is not None:
            value = attr() if callable(attr) else attr
            return check_probability(float(value), f"availability({self.name})")
        if callable(model):
            return check_probability(float(model()), f"availability({self.name})")
        raise ValidationError(
            f"resource {self.name!r}: cannot resolve availability from "
            f"{type(model).__name__}"
        )

    @property
    def model(self) -> AvailabilitySource:
        """The wrapped availability source."""
        return self._model

    def __repr__(self) -> str:
        return f"Resource({self.name!r}, availability={self.availability():.6g})"


class Service:
    """A service-level entity: an RBD over resources.

    Parameters
    ----------
    name:
        Unique service name.
    structure:
        A :class:`~repro.rbd.Block` whose component names are resource
        names, or a single resource name (black-box external service).

    Examples
    --------
    >>> from repro.rbd import parallel
    >>> svc = Service("flight", parallel("af", "klm"))
    >>> round(svc.availability({"af": 0.9, "klm": 0.9}), 4)
    0.99
    """

    def __init__(self, name: str, structure: Union[Block, str]):
        if not name:
            raise ValidationError("service name must be non-empty")
        if isinstance(structure, str):
            structure = Component(structure)
        if not isinstance(structure, Block):
            raise ValidationError(
                f"service {name!r}: structure must be an RBD Block or a "
                f"resource name, got {type(structure).__name__}"
            )
        self.name = name
        self.structure = structure

    def resource_names(self) -> Tuple[str, ...]:
        """Distinct resources the service depends on."""
        seen = []
        for name in self.structure.component_names():
            if name not in seen:
                seen.append(name)
        return tuple(seen)

    def availability(self, resource_availability: Mapping[str, float]) -> float:
        """Service availability from resource availabilities (exact RBD)."""
        return system_availability(self.structure, resource_availability)

    def __repr__(self) -> str:
        return f"Service({self.name!r}, resources={list(self.resource_names())})"


class Function:
    """A function-level entity: what one user-visible function needs.

    Parameters
    ----------
    name:
        Unique function name.
    diagram:
        Interaction diagram describing the execution scenarios; mutually
        exclusive with *services*.
    services:
        Shortcut for functions with a single scenario that needs all the
        listed services (a pure series composition) — the paper's Home,
        Search, Book and Pay functions.

    Examples
    --------
    >>> f = Function("search", services=["web", "application", "database"])
    >>> round(f.availability({"web": 0.99, "application": 0.99,
    ...                       "database": 0.99}), 4)
    0.9703
    """

    def __init__(
        self,
        name: str,
        diagram: Optional[InteractionDiagram] = None,
        services: Iterable[str] = (),
    ):
        if not name:
            raise ValidationError("function name must be non-empty")
        services = tuple(services)
        if diagram is not None and services:
            raise ValidationError(
                f"function {name!r}: give either a diagram or a service list, not both"
            )
        if diagram is None and not services:
            raise ValidationError(
                f"function {name!r}: needs a diagram or at least one service"
            )
        self.name = name
        self.diagram = diagram
        self._services = services
        if diagram is not None:
            diagram.validate()

    def service_names(self) -> FrozenSet[str]:
        """Every service the function may touch."""
        if self.diagram is not None:
            return self.diagram.all_services()
        return frozenset(self._services)

    def service_usage_distribution(self) -> Dict[FrozenSet[str], float]:
        """Distribution of the service set one invocation touches."""
        if self.diagram is not None:
            return self.diagram.service_usage_distribution()
        return {frozenset(self._services): 1.0}

    def availability(self, service_availability: Mapping[str, float]) -> float:
        """Function availability from service availabilities."""
        if self.diagram is not None:
            return self.diagram.availability(service_availability)
        product = 1.0
        for service in self._services:
            try:
                product *= service_availability[service]
            except KeyError:
                raise ValidationError(
                    f"function {self.name!r}: no availability for service "
                    f"{service!r}"
                ) from None
        return product

    def __repr__(self) -> str:
        return f"Function({self.name!r}, services={sorted(self.service_names())})"
