"""Minimal cut sets of a coherent fault tree.

A *cut set* is a set of basic events whose joint occurrence guarantees
the top event; it is *minimal* when no proper subset is a cut set.
Minimal cut sets are the standard qualitative result of fault-tree
analysis: for the TA's Search function they immediately show that the
LAN alone, the Internet link alone, or the joint failure of all N_F
flight systems each take the function down.

The implementation is a top-down expansion (the classic MOCUS scheme)
over AND/OR/k-of-n gates followed by subset minimization.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, List, Set, Tuple

from ..errors import ValidationError
from .nodes import AndGate, BasicEvent, FaultTreeNode, KofNGate, OrGate

__all__ = ["minimal_cut_sets"]

_MAX_CUT_SETS = 200_000


def minimal_cut_sets(tree: FaultTreeNode) -> Tuple[FrozenSet[str], ...]:
    """All minimal cut sets, smallest first.

    Examples
    --------
    >>> from repro.faulttree import AndGate, BasicEvent, OrGate
    >>> tree = OrGate(BasicEvent("lan"),
    ...               AndGate(BasicEvent("f1"), BasicEvent("f2")))
    >>> sorted(sorted(cs) for cs in minimal_cut_sets(tree))
    [['f1', 'f2'], ['lan']]
    """
    raw = _expand(tree)
    minimal = _minimize(raw)
    return tuple(
        sorted(minimal, key=lambda cs: (len(cs), sorted(cs)))
    )


def _expand(node: FaultTreeNode) -> Set[FrozenSet[str]]:
    if isinstance(node, BasicEvent):
        return {frozenset({node.name})}
    if isinstance(node, OrGate):
        result: Set[FrozenSet[str]] = set()
        for child in node.children:
            result |= _expand(child)
            _check_budget(result)
        return result
    if isinstance(node, AndGate):
        return _conjoin([_expand(child) for child in node.children])
    if isinstance(node, KofNGate):
        # k-of-n = OR over all k-subsets of an AND of the subset.
        child_sets = [_expand(child) for child in node.children]
        result = set()
        for combo in combinations(range(len(child_sets)), node.k):
            result |= _conjoin([child_sets[i] for i in combo])
            _check_budget(result)
        return result
    raise ValidationError(f"unsupported node type {type(node).__name__}")


def _conjoin(groups: List[Set[FrozenSet[str]]]) -> Set[FrozenSet[str]]:
    result: Set[FrozenSet[str]] = {frozenset()}
    for group in groups:
        result = {base | extra for base in result for extra in group}
        _check_budget(result)
    return result


def _check_budget(candidates: Set[FrozenSet[str]]) -> None:
    if len(candidates) > _MAX_CUT_SETS:
        raise ValidationError(
            f"cut-set expansion exceeded {_MAX_CUT_SETS} candidate sets; "
            "the tree is too large for exact enumeration"
        )


def _minimize(candidates: Set[FrozenSet[str]]) -> List[FrozenSet[str]]:
    ordered = sorted(candidates, key=len)
    minimal: List[FrozenSet[str]] = []
    for candidate in ordered:
        if not any(kept <= candidate for kept in minimal):
            minimal.append(candidate)
    return minimal
