"""Exact top-event probability and RBD-to-fault-tree conversion."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Mapping, Optional

from .._validation import check_probability
from ..errors import ValidationError
from ..rbd.blocks import Block, Component, KofN, Parallel, Series
from .nodes import AndGate, BasicEvent, FaultTreeNode, KofNGate, OrGate

__all__ = ["top_event_probability", "from_rbd"]

_MAX_PIVOTS = 25


def _collect_probabilities(
    tree: FaultTreeNode, probabilities: Optional[Mapping[str, float]]
) -> Dict[str, float]:
    provided = dict(probabilities or {})
    resolved: Dict[str, float] = {}
    for name in tree.event_names():
        if name in resolved:
            continue
        if name in provided:
            resolved[name] = check_probability(provided[name], f"probability({name})")
        else:
            default = _default_probability(tree, name)
            if default is None:
                raise ValidationError(
                    f"no probability provided for basic event {name!r}"
                )
            resolved[name] = default
    return resolved


def _default_probability(tree: FaultTreeNode, name: str) -> Optional[float]:
    if isinstance(tree, BasicEvent):
        if tree.name == name and tree.probability is not None:
            return tree.probability
        return None
    for child in getattr(tree, "children", ()):
        found = _default_probability(child, name)
        if found is not None:
            return found
    return None


def top_event_probability(
    tree: FaultTreeNode, probabilities: Optional[Mapping[str, float]] = None
) -> float:
    """Exact probability of the top event.

    Basic events are assumed independent; events shared between branches
    are handled exactly by Shannon decomposition (pivoting), as in
    :func:`repro.rbd.system_availability`.

    Examples
    --------
    >>> from repro.faulttree import AndGate, BasicEvent
    >>> tree = AndGate(BasicEvent("a"), BasicEvent("b"))
    >>> round(top_event_probability(tree, {"a": 0.1, "b": 0.1}), 4)
    0.01
    """
    probs = _collect_probabilities(tree, probabilities)
    counts = Counter(tree.event_names())
    duplicated = sorted(name for name, count in counts.items() if count > 1)
    if len(duplicated) > _MAX_PIVOTS:
        raise ValidationError(
            f"tree shares {len(duplicated)} events; exact evaluation supports "
            f"at most {_MAX_PIVOTS} shared events"
        )
    return _pivoted(tree, probs, duplicated)


def _pivoted(tree: FaultTreeNode, probs: Dict[str, float], pivots) -> float:
    if not pivots:
        return tree._probability(probs)
    name, rest = pivots[0], pivots[1:]
    p = probs[name]
    occurs = dict(probs, **{name: 1.0})
    absent = dict(probs, **{name: 0.0})
    return p * _pivoted(tree, occurs, rest) + (1.0 - p) * _pivoted(tree, absent, rest)


def from_rbd(block: Block) -> FaultTreeNode:
    """Convert an RBD into the equivalent fault tree (its failure dual).

    * a series block fails when *any* part fails → OR gate;
    * a parallel block fails when *all* parts fail → AND gate;
    * a k-of-n block fails when more than ``n - k`` parts fail →
      (n - k + 1)-of-n gate;
    * a component's failure is a basic event of the same name, with
      probability ``1 - availability`` when a default was set.

    The resulting tree satisfies
    ``top_event_probability(tree, {x: 1 - A_x}) ==
    1 - system_availability(block, {x: A_x})``.
    """
    if isinstance(block, Component):
        probability = (
            None if block.availability is None else 1.0 - block.availability
        )
        return BasicEvent(block.name, probability=probability)
    if isinstance(block, Series):
        return OrGate(*[from_rbd(child) for child in block.children])
    if isinstance(block, Parallel):
        return AndGate(*[from_rbd(child) for child in block.children])
    if isinstance(block, KofN):
        n = len(block.children)
        failures_to_break = n - block.k + 1
        return KofNGate(
            failures_to_break, *[from_rbd(child) for child in block.children]
        )
    raise ValidationError(f"cannot convert {type(block).__name__} to a fault tree")
