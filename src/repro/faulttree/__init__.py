"""Fault-tree analysis.

Fault trees are one of the modeling techniques the paper's framework
admits at every level (Section 2).  This subpackage provides coherent
fault trees (AND / OR / k-of-n gates over basic events), exact top-event
probability (with shared basic events handled by Shannon decomposition),
and minimal cut sets — the qualitative complement used to explain *why*
a service fails.

A fault tree is the failure-space dual of a reliability block diagram;
:func:`from_rbd` converts an RBD into the equivalent tree, and the test
suite checks the two evaluations agree on both representations.
"""

from .nodes import BasicEvent, AndGate, OrGate, KofNGate, GateNode, FaultTreeNode
from .evaluate import top_event_probability, from_rbd
from .cutsets import minimal_cut_sets

__all__ = [
    "BasicEvent",
    "AndGate",
    "OrGate",
    "KofNGate",
    "GateNode",
    "FaultTreeNode",
    "top_event_probability",
    "from_rbd",
    "minimal_cut_sets",
]
