"""Fault-tree node types.

A fault tree describes the *failure* of a system: the top event occurs
when the gate logic over basic events (component failures) is satisfied.
Only coherent gates are provided (AND, OR, k-of-n) — negation does not
occur in availability models of repairable systems and would break the
monotonicity properties the cut-set algorithms rely on.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from .._validation import check_positive_int, check_probability
from ..errors import ValidationError

__all__ = ["FaultTreeNode", "BasicEvent", "GateNode", "AndGate", "OrGate", "KofNGate"]


class FaultTreeNode:
    """Abstract base of fault-tree nodes."""

    def event_names(self) -> Tuple[str, ...]:
        """All basic-event names in the subtree (with repetitions)."""
        return tuple(self._iter_names())

    def _iter_names(self) -> Iterator[str]:
        raise NotImplementedError

    def _probability(self, probs: dict) -> float:
        """Failure probability assuming independent leaf references."""
        raise NotImplementedError

    def _occurs(self, states: dict) -> bool:
        """Does the event occur for a deterministic failure assignment?"""
        raise NotImplementedError


class BasicEvent(FaultTreeNode):
    """A leaf: the failure of one component.

    Parameters
    ----------
    name:
        Identifier used to look up the failure probability.
    probability:
        Optional default failure probability (= component
        *unavailability*).

    Examples
    --------
    >>> event = BasicEvent("disk-failed", probability=0.1)
    >>> event.event_names()
    ('disk-failed',)
    """

    __slots__ = ("name", "probability")

    def __init__(self, name: str, probability: Optional[float] = None):
        if not isinstance(name, str) or not name:
            raise ValidationError(
                f"basic event name must be a non-empty string, got {name!r}"
            )
        self.name = name
        self.probability = (
            None
            if probability is None
            else check_probability(probability, f"probability({name})")
        )

    def _iter_names(self) -> Iterator[str]:
        yield self.name

    def _probability(self, probs: dict) -> float:
        try:
            return probs[self.name]
        except KeyError:
            raise ValidationError(
                f"no probability provided for basic event {self.name!r}"
            ) from None

    def _occurs(self, states: dict) -> bool:
        try:
            return bool(states[self.name])
        except KeyError:
            raise ValidationError(
                f"no state provided for basic event {self.name!r}"
            ) from None

    def __repr__(self) -> str:
        if self.probability is None:
            return f"BasicEvent({self.name!r})"
        return f"BasicEvent({self.name!r}, probability={self.probability})"


class GateNode(FaultTreeNode):
    """Shared machinery for gates."""

    _label = "?"
    __slots__ = ("children",)

    def __init__(self, *children: FaultTreeNode):
        flat = []
        for child in children:
            if not isinstance(child, FaultTreeNode):
                raise ValidationError(
                    f"{self._label} children must be fault-tree nodes, got "
                    f"{type(child).__name__}"
                )
            if type(child) is type(self) and not isinstance(child, KofNGate):
                flat.extend(child.children)  # type: ignore[attr-defined]
            else:
                flat.append(child)
        if not flat:
            raise ValidationError(f"{self._label} gate needs at least one child")
        self.children: Tuple[FaultTreeNode, ...] = tuple(flat)

    def _iter_names(self) -> Iterator[str]:
        for child in self.children:
            yield from child._iter_names()

    def __repr__(self) -> str:
        inner = ", ".join(repr(c) for c in self.children)
        return f"{self._label}({inner})"


class AndGate(GateNode):
    """Occurs when *all* children occur (redundant parts all failed)."""

    _label = "AndGate"
    __slots__ = ()

    def _probability(self, probs: dict) -> float:
        result = 1.0
        for child in self.children:
            result *= child._probability(probs)
        return result

    def _occurs(self, states: dict) -> bool:
        return all(child._occurs(states) for child in self.children)


class OrGate(GateNode):
    """Occurs when *any* child occurs (a series part failed)."""

    _label = "OrGate"
    __slots__ = ()

    def _probability(self, probs: dict) -> float:
        complement = 1.0
        for child in self.children:
            complement *= 1.0 - child._probability(probs)
        return 1.0 - complement

    def _occurs(self, states: dict) -> bool:
        return any(child._occurs(states) for child in self.children)


class KofNGate(GateNode):
    """Occurs when at least *k* of the children occur.

    Examples
    --------
    >>> gate = KofNGate(2, BasicEvent("a"), BasicEvent("b"), BasicEvent("c"))
    >>> round(gate._probability({"a": 0.1, "b": 0.1, "c": 0.1}), 4)
    0.028
    """

    __slots__ = ("k",)
    _label = "KofNGate"

    def __init__(self, k: int, *children: FaultTreeNode):
        super().__init__(*children)
        k = check_positive_int(k, "k")
        if k > len(self.children):
            raise ValidationError(
                f"k ({k}) cannot exceed the number of children ({len(self.children)})"
            )
        self.k = k

    def _probability(self, probs: dict) -> float:
        dp = [1.0] + [0.0] * len(self.children)
        for child in self.children:
            p = child._probability(probs)
            for j in range(len(dp) - 1, 0, -1):
                dp[j] = dp[j] * (1.0 - p) + dp[j - 1] * p
            dp[0] *= 1.0 - p
        return sum(dp[self.k:])

    def _occurs(self, states: dict) -> bool:
        happened = sum(1 for child in self.children if child._occurs(states))
        return happened >= self.k

    def __repr__(self) -> str:
        inner = ", ".join(repr(c) for c in self.children)
        return f"KofNGate({self.k}, {inner})"
