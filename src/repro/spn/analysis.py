"""Steady-state analysis of a GSPN."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import ValidationError
from .net import Marking, StochasticPetriNet
from .reachability import ReachabilityGraph, explore

__all__ = ["SPNAnalysis"]


class SPNAnalysis:
    """Steady-state results of a stochastic Petri net.

    The reachability graph and the steady-state solve are performed once
    at construction; the query methods are cheap.

    Parameters
    ----------
    net:
        The net to analyze.
    max_markings:
        Exploration budget (guards against unbounded nets).

    Examples
    --------
    >>> net = StochasticPetriNet("component")
    >>> _ = net.add_place("up", tokens=1)
    >>> _ = net.add_place("down")
    >>> _ = net.add_timed_transition("fail", rate=1.0)
    >>> _ = net.add_timed_transition("repair", rate=3.0)
    >>> net.add_input_arc("up", "fail");    net.add_output_arc("fail", "down")
    >>> net.add_input_arc("down", "repair"); net.add_output_arc("repair", "up")
    >>> round(SPNAnalysis(net).probability(lambda m: m["up"] == 1), 4)
    0.75
    """

    def __init__(self, net: StochasticPetriNet, max_markings: int = 100_000):
        self._net = net
        self._graph: ReachabilityGraph = explore(net, max_markings=max_markings)
        self._steady: Dict[Marking, float] = self._graph.chain.steady_state()

    @property
    def net(self) -> StochasticPetriNet:
        """The analyzed net."""
        return self._net

    @property
    def reachability(self) -> ReachabilityGraph:
        """The underlying reachability graph and tangible CTMC."""
        return self._graph

    @property
    def tangible_count(self) -> int:
        """Number of tangible markings."""
        return len(self._graph.tangible)

    def steady_state(self) -> Dict[Marking, float]:
        """Steady-state probability of each tangible marking (copy)."""
        return dict(self._steady)

    def probability(self, predicate: Callable[[Dict[str, int]], bool]) -> float:
        """Steady-state probability that the marking satisfies *predicate*.

        The predicate receives a ``{place: tokens}`` mapping.
        """
        total = 0.0
        for marking, prob in self._steady.items():
            if predicate(self._net.marking_dict(marking)):
                total += prob
        return total

    def expected_tokens(self, place: str) -> float:
        """Expected steady-state token count of *place*."""
        if place not in self._net.place_names:
            raise ValidationError(f"unknown place {place!r}")
        index = self._net.place_names.index(place)
        return sum(marking[index] * prob for marking, prob in self._steady.items())

    def throughput(self, transition: str) -> float:
        """Steady-state firing rate of a *timed* transition.

        ``sum over tangible markings m of  pi(m) * rate(t, m) * 1{t enabled}``.
        """
        candidates = [t for t in self._net.transitions if t.name == transition]
        if not candidates:
            raise ValidationError(f"unknown transition {transition!r}")
        t = candidates[0]
        if t.immediate:
            raise ValidationError(
                f"throughput of immediate transition {transition!r} is not defined "
                "on the tangible chain"
            )
        total = 0.0
        for marking, prob in self._steady.items():
            if self._net.is_enabled(transition, marking):
                total += prob * t.firing_rate(self._net.marking_dict(marking))
        return total
