"""Reachability analysis of a GSPN: tangible CTMC construction.

Markings split into *tangible* (only timed transitions enabled — time
passes there) and *vanishing* (an immediate transition is enabled — left
in zero time).  The tangible CTMC is obtained by eliminating vanishing
markings: the probability of reaching each tangible marking from a
vanishing one is the absorption probability of the embedded
immediate-firing chain, computed by one linear solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..errors import ModelStructureError
from ..markov import CTMC
from .net import Marking, StochasticPetriNet

__all__ = ["ReachabilityGraph", "explore"]

_DEFAULT_MAX_MARKINGS = 100_000


@dataclass(frozen=True)
class ReachabilityGraph:
    """The result of GSPN state-space exploration.

    Attributes
    ----------
    tangible:
        Tangible markings, in discovery order.
    vanishing:
        Vanishing markings, in discovery order.
    chain:
        The tangible-marking CTMC (states are marking tuples).
    initial_distribution:
        Probability over tangible markings at time zero (non-degenerate
        when the initial marking is vanishing).
    """

    tangible: Tuple[Marking, ...]
    vanishing: Tuple[Marking, ...]
    chain: CTMC
    initial_distribution: Dict[Marking, float]


def explore(
    net: StochasticPetriNet, max_markings: int = _DEFAULT_MAX_MARKINGS
) -> ReachabilityGraph:
    """Explore the reachability set and build the tangible CTMC.

    Raises
    ------
    ModelStructureError
        If the reachable state space exceeds *max_markings* (an unbounded
        net), if no tangible marking exists, or if immediate transitions
        form a trap (a vanishing cycle with no exit to a tangible
        marking).
    """
    initial = net.initial_marking()
    discovered: Dict[Marking, bool] = {}  # marking -> is_tangible
    # successor structure: marking -> list of (successor, rate_or_prob)
    timed_successors: Dict[Marking, List[Tuple[Marking, float]]] = {}
    immediate_successors: Dict[Marking, List[Tuple[Marking, float]]] = {}

    frontier = [initial]
    while frontier:
        marking = frontier.pop()
        if marking in discovered:
            continue
        if len(discovered) >= max_markings:
            raise ModelStructureError(
                f"reachability exploration exceeded {max_markings} markings; "
                "the net may be unbounded (add place capacities)"
            )
        enabled = net.enabled_transitions(marking)
        marking_map = net.marking_dict(marking)
        if enabled and enabled[0].immediate:
            discovered[marking] = False
            total_weight = sum(t.weight for t in enabled)
            successors = []
            for transition in enabled:
                nxt = net.fire(transition.name, marking)
                successors.append((nxt, transition.weight / total_weight))
                frontier.append(nxt)
            immediate_successors[marking] = successors
        else:
            discovered[marking] = True
            successors = []
            for transition in enabled:
                rate = transition.firing_rate(marking_map)
                nxt = net.fire(transition.name, marking)
                successors.append((nxt, rate))
                frontier.append(nxt)
            timed_successors[marking] = successors

    tangible = tuple(m for m, is_t in discovered.items() if is_t)
    vanishing = tuple(m for m, is_t in discovered.items() if not is_t)
    if not tangible:
        raise ModelStructureError(
            "no tangible marking is reachable: immediate transitions never rest"
        )

    absorption = _vanishing_absorption(vanishing, tangible, immediate_successors)

    # Assemble the tangible CTMC, redirecting rates that enter vanishing
    # markings through their absorption distributions.
    t_index = {m: i for i, m in enumerate(tangible)}
    n = len(tangible)
    q = np.zeros((n, n))
    for marking in tangible:
        i = t_index[marking]
        for nxt, rate in timed_successors[marking]:
            if nxt in t_index:
                if nxt != marking:
                    q[i, t_index[nxt]] += rate
            else:
                for target, prob in absorption[nxt].items():
                    if target != marking:
                        q[i, t_index[target]] += rate * prob
    np.fill_diagonal(q, -q.sum(axis=1))
    chain = CTMC(tangible, q)

    if discovered[initial]:
        initial_distribution = {initial: 1.0}
    else:
        initial_distribution = dict(absorption[initial])
    return ReachabilityGraph(
        tangible=tangible,
        vanishing=vanishing,
        chain=chain,
        initial_distribution=initial_distribution,
    )


def _vanishing_absorption(
    vanishing: Tuple[Marking, ...],
    tangible: Tuple[Marking, ...],
    immediate_successors: Dict[Marking, List[Tuple[Marking, float]]],
) -> Dict[Marking, Dict[Marking, float]]:
    """Absorption probabilities from each vanishing to tangible markings.

    Solves ``(I - P_VV) B = P_VT`` where ``P_VV``/``P_VT`` are the
    immediate-firing probabilities among vanishing markings and into
    tangible ones.
    """
    if not vanishing:
        return {}
    v_index = {m: i for i, m in enumerate(vanishing)}
    t_index = {m: i for i, m in enumerate(tangible)}
    nv, nt = len(vanishing), len(tangible)
    p_vv = np.zeros((nv, nv))
    p_vt = np.zeros((nv, nt))
    for marking, successors in immediate_successors.items():
        i = v_index[marking]
        for nxt, prob in successors:
            if nxt in v_index:
                p_vv[i, v_index[nxt]] += prob
            else:
                p_vt[i, t_index[nxt]] += prob
    try:
        b = np.linalg.solve(np.eye(nv) - p_vv, p_vt)
    except np.linalg.LinAlgError as exc:
        raise ModelStructureError(
            "immediate transitions form a trap: a vanishing cycle has no "
            "exit to a tangible marking"
        ) from exc
    row_sums = b.sum(axis=1)
    if np.any(row_sums < 1.0 - 1e-9):
        raise ModelStructureError(
            "immediate transitions form a trap: a vanishing cycle has no "
            "exit to a tangible marking"
        )
    result: Dict[Marking, Dict[Marking, float]] = {}
    for marking, i in v_index.items():
        result[marking] = {
            tangible[j]: float(b[i, j]) for j in range(nt) if b[i, j] > 0.0
        }
    return result
