"""Generalized stochastic Petri nets (GSPNs).

Stochastic Petri nets are the third modeling technique the paper's
framework names (Section 2).  This subpackage provides a GSPN engine:
places, timed (exponential) and immediate transitions, input / output /
inhibitor arcs, reachability-graph generation with vanishing-marking
elimination, and steady-state analysis through the CTMC machinery of
:mod:`repro.markov`.

The availability models of the paper are small enough to write as CTMCs
directly, but the SPN route is how such models scale: the test suite
rebuilds the Fig. 9 / Fig. 10 farms as Petri nets and checks that the
resulting steady states match the closed forms.
"""

from .net import StochasticPetriNet, Place, Transition
from .analysis import SPNAnalysis

__all__ = ["StochasticPetriNet", "Place", "Transition", "SPNAnalysis"]
