"""Definition of generalized stochastic Petri nets."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .._validation import (
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_rate,
)
from ..errors import ModelStructureError, ValidationError

__all__ = ["Place", "Transition", "StochasticPetriNet"]

Marking = Tuple[int, ...]

#: Signature of a marking-dependent rate: receives ``{place: tokens}``.
RateFunction = Callable[[Dict[str, int]], float]


@dataclass(frozen=True)
class Place:
    """A place: a token holder.

    Attributes
    ----------
    name:
        Unique place name.
    tokens:
        Initial token count.
    capacity:
        Optional maximum tokens; transitions that would exceed it are
        disabled.
    """

    name: str
    tokens: int = 0
    capacity: Optional[int] = None

    def __post_init__(self):
        if not self.name:
            raise ValidationError("place name must be non-empty")
        check_non_negative_int(self.tokens, f"tokens({self.name})")
        if self.capacity is not None:
            check_positive_int(self.capacity, f"capacity({self.name})")
            if self.tokens > self.capacity:
                raise ValidationError(
                    f"place {self.name!r}: initial tokens ({self.tokens}) exceed "
                    f"capacity ({self.capacity})"
                )


@dataclass(frozen=True)
class Transition:
    """A transition: timed (exponential) or immediate.

    Attributes
    ----------
    name:
        Unique transition name.
    rate:
        Firing rate for timed transitions (ignored when *rate_function*
        is given).
    rate_function:
        Optional marking-dependent rate, e.g. ``lambda m: m["up"] * lam``
        for infinite-server semantics.
    weight:
        Relative firing weight for immediate transitions.
    priority:
        Among enabled immediate transitions only the highest priority
        class fires.
    immediate:
        True for immediate transitions.
    """

    name: str
    rate: Optional[float] = None
    rate_function: Optional[RateFunction] = None
    weight: float = 1.0
    priority: int = 1
    immediate: bool = False

    def __post_init__(self):
        if not self.name:
            raise ValidationError("transition name must be non-empty")
        if self.immediate:
            check_positive(self.weight, f"weight({self.name})")
            check_positive_int(self.priority, f"priority({self.name})")
        else:
            if self.rate is None and self.rate_function is None:
                raise ValidationError(
                    f"timed transition {self.name!r} needs a rate or rate_function"
                )
            if self.rate is not None:
                check_rate(self.rate, f"rate({self.name})")

    def firing_rate(self, marking: Dict[str, int]) -> float:
        """Resolve the (possibly marking-dependent) firing rate."""
        if self.immediate:
            raise ValidationError(
                f"immediate transition {self.name!r} has no firing rate"
            )
        if self.rate_function is not None:
            return check_rate(self.rate_function(marking), f"rate({self.name})")
        return float(self.rate)  # validated in __post_init__


class StochasticPetriNet:
    """A generalized stochastic Petri net.

    Examples
    --------
    A two-state failure/repair component as a Petri net:

    >>> net = StochasticPetriNet("component")
    >>> _ = net.add_place("up", tokens=1)
    >>> _ = net.add_place("down")
    >>> _ = net.add_timed_transition("fail", rate=1e-3)
    >>> _ = net.add_timed_transition("repair", rate=0.5)
    >>> net.add_input_arc("up", "fail");    net.add_output_arc("fail", "down")
    >>> net.add_input_arc("down", "repair"); net.add_output_arc("repair", "up")
    >>> sorted(p.name for p in net.places)
    ['down', 'up']
    """

    def __init__(self, name: str = "net"):
        if not name:
            raise ValidationError("net name must be non-empty")
        self.name = name
        self._places: List[Place] = []
        self._place_index: Dict[str, int] = {}
        self._transitions: Dict[str, Transition] = {}
        self._inputs: Dict[str, Dict[str, int]] = {}      # transition -> {place: mult}
        self._outputs: Dict[str, Dict[str, int]] = {}
        self._inhibitors: Dict[str, Dict[str, int]] = {}  # transition -> {place: threshold}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_place(
        self, name: str, tokens: int = 0, capacity: Optional[int] = None
    ) -> Place:
        """Add a place; returns it."""
        if name in self._place_index:
            raise ValidationError(f"place {name!r} already defined")
        place = Place(name=name, tokens=tokens, capacity=capacity)
        self._place_index[name] = len(self._places)
        self._places.append(place)
        return place

    def add_timed_transition(
        self,
        name: str,
        rate: Optional[float] = None,
        rate_function: Optional[RateFunction] = None,
    ) -> Transition:
        """Add an exponentially timed transition."""
        return self._add_transition(
            Transition(name=name, rate=rate, rate_function=rate_function)
        )

    def add_immediate_transition(
        self, name: str, weight: float = 1.0, priority: int = 1
    ) -> Transition:
        """Add an immediate transition (fires in zero time)."""
        return self._add_transition(
            Transition(name=name, weight=weight, priority=priority, immediate=True)
        )

    def _add_transition(self, transition: Transition) -> Transition:
        if transition.name in self._transitions:
            raise ValidationError(f"transition {transition.name!r} already defined")
        self._transitions[transition.name] = transition
        self._inputs[transition.name] = {}
        self._outputs[transition.name] = {}
        self._inhibitors[transition.name] = {}
        return transition

    def add_input_arc(self, place: str, transition: str, multiplicity: int = 1) -> None:
        """Arc place -> transition: tokens consumed on firing."""
        self._check_arc(place, transition)
        check_positive_int(multiplicity, "multiplicity")
        self._inputs[transition][place] = multiplicity

    def add_output_arc(self, transition: str, place: str, multiplicity: int = 1) -> None:
        """Arc transition -> place: tokens produced on firing."""
        self._check_arc(place, transition)
        check_positive_int(multiplicity, "multiplicity")
        self._outputs[transition][place] = multiplicity

    def add_inhibitor_arc(self, place: str, transition: str, threshold: int = 1) -> None:
        """Inhibitor arc: the transition is disabled when the place holds
        at least *threshold* tokens."""
        self._check_arc(place, transition)
        check_positive_int(threshold, "threshold")
        self._inhibitors[transition][place] = threshold

    def _check_arc(self, place: str, transition: str) -> None:
        if place not in self._place_index:
            raise ValidationError(f"unknown place {place!r}")
        if transition not in self._transitions:
            raise ValidationError(f"unknown transition {transition!r}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def places(self) -> Tuple[Place, ...]:
        """Places in definition order."""
        return tuple(self._places)

    @property
    def transitions(self) -> Tuple[Transition, ...]:
        """Transitions in definition order."""
        return tuple(self._transitions.values())

    @property
    def place_names(self) -> Tuple[str, ...]:
        """Place names in marking order."""
        return tuple(p.name for p in self._places)

    def initial_marking(self) -> Marking:
        """The initial marking as a token-count tuple."""
        return tuple(p.tokens for p in self._places)

    def marking_dict(self, marking: Marking) -> Dict[str, int]:
        """A marking tuple as a ``{place: tokens}`` mapping."""
        return dict(zip(self.place_names, marking))

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def is_enabled(self, transition: str, marking: Marking) -> bool:
        """Is *transition* enabled in *marking*?"""
        if transition not in self._transitions:
            raise ValidationError(f"unknown transition {transition!r}")
        for place, needed in self._inputs[transition].items():
            if marking[self._place_index[place]] < needed:
                return False
        for place, threshold in self._inhibitors[transition].items():
            if marking[self._place_index[place]] >= threshold:
                return False
        # Capacity check on the successor marking.
        for place, produced in self._outputs[transition].items():
            index = self._place_index[place]
            capacity = self._places[index].capacity
            if capacity is None:
                continue
            consumed = self._inputs[transition].get(place, 0)
            if marking[index] - consumed + produced > capacity:
                return False
        return True

    def fire(self, transition: str, marking: Marking) -> Marking:
        """Successor marking after firing *transition*."""
        if not self.is_enabled(transition, marking):
            raise ModelStructureError(
                f"transition {transition!r} is not enabled in marking {marking}"
            )
        tokens = list(marking)
        for place, consumed in self._inputs[transition].items():
            tokens[self._place_index[place]] -= consumed
        for place, produced in self._outputs[transition].items():
            tokens[self._place_index[place]] += produced
        return tuple(tokens)

    def enabled_transitions(self, marking: Marking) -> List[Transition]:
        """Enabled transitions; immediate priority rules applied.

        When immediate transitions are enabled they preempt timed ones,
        and only the highest-priority immediate class is returned.
        """
        enabled = [
            t for t in self._transitions.values() if self.is_enabled(t.name, marking)
        ]
        immediates = [t for t in enabled if t.immediate]
        if immediates:
            top = max(t.priority for t in immediates)
            return [t for t in immediates if t.priority == top]
        return enabled
