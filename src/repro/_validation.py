"""Shared argument-validation helpers.

Every public entry point of the library validates its numeric arguments
through these helpers so that error messages are uniform ("name must be
..., got ...") and every failure raises :class:`repro.errors.ValidationError`.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from .errors import ValidationError

__all__ = [
    "check_probability",
    "check_positive",
    "check_non_negative",
    "check_positive_int",
    "check_non_negative_int",
    "check_rate",
    "check_in_range",
    "check_distribution",
    "check_finite",
    "check_finite_array",
]

_EPS = 1e-12


def _fail(name: str, requirement: str, value) -> None:
    raise ValidationError(f"{name} must be {requirement}, got {value!r}")


def check_probability(value: float, name: str = "probability") -> float:
    """Validate that *value* is a probability in [0, 1] and return it as float."""
    value = _as_float(value, name)
    if not 0.0 <= value <= 1.0:
        _fail(name, "in [0, 1]", value)
    return value


def check_positive(value: float, name: str = "value") -> float:
    """Validate that *value* is a finite, strictly positive number."""
    value = _as_float(value, name)
    if value <= 0.0:
        _fail(name, "> 0", value)
    return value


def check_non_negative(value: float, name: str = "value") -> float:
    """Validate that *value* is a finite number >= 0."""
    value = _as_float(value, name)
    if value < 0.0:
        _fail(name, ">= 0", value)
    return value


def check_positive_int(value: int, name: str = "value") -> int:
    """Validate that *value* is an integer >= 1."""
    value = _as_int(value, name)
    if value < 1:
        _fail(name, "an integer >= 1", value)
    return value


def check_non_negative_int(value: int, name: str = "value") -> int:
    """Validate that *value* is an integer >= 0."""
    value = _as_int(value, name)
    if value < 0:
        _fail(name, "an integer >= 0", value)
    return value


def check_rate(value: float, name: str = "rate") -> float:
    """Validate a transition/event rate: finite and strictly positive."""
    return check_positive(value, name)


def check_in_range(
    value: float, low: float, high: float, name: str = "value"
) -> float:
    """Validate that *value* lies in the closed interval [low, high]."""
    value = _as_float(value, name)
    if not low <= value <= high:
        _fail(name, f"in [{low}, {high}]", value)
    return value


def check_distribution(
    values: Iterable[float], name: str = "distribution", tol: float = 1e-9
) -> np.ndarray:
    """Validate that *values* form a probability distribution.

    Entries must be non-negative and sum to one within *tol*.  Returns the
    values as a float numpy array (a copy — callers may mutate freely).
    """
    arr = np.asarray(list(values) if not isinstance(values, (np.ndarray, Sequence)) else values, dtype=float)
    if arr.ndim != 1:
        _fail(name, "a one-dimensional sequence", arr.shape)
    if not np.all(np.isfinite(arr)):
        _fail(name, "finite", arr)
    if np.any(arr < -_EPS):
        _fail(name, "non-negative", arr.min())
    total = float(arr.sum())
    if abs(total - 1.0) > tol:
        _fail(name, f"normalized (sum to 1 within {tol})", total)
    arr = np.clip(arr, 0.0, None)
    return arr.copy()


def check_finite(value: float, name: str = "value") -> float:
    """Validate that *value* is a finite real number (rejects NaN and inf).

    NaN is rejected with an explicit message: a NaN that slips into a
    rate or probability fails every downstream comparison as False,
    which surfaces as a confusing secondary error far from the source
    (an "unstable" queue, a "non-normalized" distribution).  Naming NaN
    at the boundary points at the actual bug.
    """
    return _as_float(value, name)


def check_finite_array(
    values: Iterable[float], name: str = "array"
) -> np.ndarray:
    """Validate that every entry of *values* is finite; returns float array.

    NaN entries get the same explicit diagnosis as :func:`check_finite`
    — in particular, NaN passes silently through ``<`` / ``>`` guards
    (every comparison is False), so matrix validators must check
    finiteness *before* sign- or sum-based structure checks.
    """
    arr = np.asarray(values, dtype=float)
    if not np.all(np.isfinite(arr)):
        bad = np.argwhere(~np.isfinite(arr))
        index = tuple(int(i) for i in bad[0])
        index_repr = index[0] if len(index) == 1 else index
        flat = arr[tuple(bad[0])] if arr.ndim else arr
        kind = "NaN (not-a-number)" if np.isnan(flat) else "non-finite"
        _fail(f"{name}[{index_repr}]", f"finite, not {kind}", flat)
    return arr


def _as_float(value, name: str) -> float:
    try:
        value = float(value)
    except (TypeError, ValueError):
        _fail(name, "a real number", value)
    if math.isnan(value):
        # Explicit branch: NaN would otherwise fail range checks with
        # messages about bounds ("must be in [0, 1], got nan") that
        # mis-describe the problem.
        _fail(name, "a number, not NaN (not-a-number)", value)
    if math.isinf(value):
        _fail(name, "finite", value)
    return value


def _as_int(value, name: str) -> int:
    if isinstance(value, bool):
        _fail(name, "an integer", value)
    try:
        as_int = int(value)
    except (TypeError, ValueError):
        _fail(name, "an integer", value)
        raise  # unreachable; keeps type-checkers happy
    if as_int != value:
        _fail(name, "an integer", value)
    return as_int
