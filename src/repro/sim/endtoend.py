"""End-to-end failure/repair simulation of a hierarchical model.

The analytic user-level measure (paper eq. 10) is a *steady-state
expectation*: it says nothing about how failures cluster in time.  This
simulator closes that gap: every resource alternates between up and down
as an independent two-state Markov process, and the user-perceived
availability is integrated over the simulated timeline — during a LAN
outage *every* session fails together, which the time average then
reflects correctly.

To keep the estimator's variance low, sessions are not sampled
individually: conditional on the current resource states (all boolean),
the exact probability that a random session succeeds is computed from
the hierarchical model (a Rao-Blackwellized estimator), and that
probability is integrated against elapsed time.  Over long horizons the
average converges to the analytic user availability, validating both the
equation and the independence assumptions behind it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .._validation import check_positive, check_rate
from ..availability import TwoStateAvailability
from ..core import HierarchicalModel
from ..errors import SimulationError
from ..profiles import UserClass

__all__ = ["EndToEndResult", "simulate_user_availability_over_time"]


@dataclass(frozen=True)
class EndToEndResult:
    """Outcome of an end-to-end failure/repair simulation.

    Attributes
    ----------
    horizon:
        Simulated time span (availability-model time unit).
    average_user_availability:
        Time average of the conditional per-session success probability —
        converges to the analytic eq.-(10) value.
    fraction_fully_available:
        Fraction of time *every* service was up.
    fraction_total_outage:
        Fraction of time the success probability was zero (a common
        single point of failure was down).
    resource_transitions:
        Number of failure/repair events simulated.
    """

    horizon: float
    average_user_availability: float
    fraction_fully_available: float
    fraction_total_outage: float
    resource_transitions: int


def _resource_rates(model: HierarchicalModel, default_repair_rate: float):
    """Failure/repair rates per resource.

    Resources backed by :class:`TwoStateAvailability` use their own
    rates; every other model (fixed numbers, composite web farms) is
    mapped to the two-state process with the same steady-state
    availability and the default repair rate — the approximation is
    documented on the public function.
    """
    rates: Dict[str, TwoStateAvailability] = {}
    for name in model.resources:
        availability = model.resource_availability(name)
        source = model.resource(name).model
        if isinstance(source, TwoStateAvailability):
            rates[name] = source
        elif availability >= 1.0:
            rates[name] = None  # never fails
        else:
            rates[name] = TwoStateAvailability.from_availability(
                availability, repair_rate=default_repair_rate
            )
    return rates


def simulate_user_availability_over_time(
    model: HierarchicalModel,
    user_class: UserClass,
    horizon: float,
    rng: np.random.Generator,
    default_repair_rate: float = 1.0,
    max_transitions: int = 20_000_000,
) -> EndToEndResult:
    """Simulate resource failures/repairs and integrate user availability.

    Parameters
    ----------
    model:
        The hierarchical model; resources not built from
        :class:`TwoStateAvailability` (fixed numbers, web farms) are
        approximated by a two-state process with the same steady-state
        availability and *default_repair_rate*.
    user_class:
        The scenario mix to evaluate.
    horizon:
        Simulated time span, in the availability-model time unit.
    rng:
        Random generator (caller owns seeding).
    default_repair_rate:
        Repair rate assigned to resources that only carry an
        availability number.

    Returns
    -------
    EndToEndResult

    Examples
    --------
    >>> from repro.core import HierarchicalModel
    >>> from repro.profiles import UserClass
    >>> from repro.availability import TwoStateAvailability
    >>> model = HierarchicalModel()
    >>> _ = model.add_resource(
    ...     "host", TwoStateAvailability(failure_rate=0.2, repair_rate=1.0))
    >>> _ = model.add_service("web", "host")
    >>> _ = model.add_function("home", services=["web"])
    >>> users = UserClass.from_probabilities("all", {frozenset({"home"}): 1.0})
    >>> result = simulate_user_availability_over_time(
    ...     model, users, horizon=20000.0,
    ...     rng=__import__("numpy").random.default_rng(5))
    >>> abs(result.average_user_availability - 1.0 / 1.2) < 0.01
    True
    """
    horizon = check_positive(horizon, "horizon")
    check_rate(default_repair_rate, "default_repair_rate")
    rates = _resource_rates(model, default_repair_rate)
    names = list(rates)

    # Initial states drawn from each resource's steady state, so the time
    # average starts unbiased rather than warming up from all-up.
    up: Dict[str, bool] = {}
    next_event: Dict[str, float] = {}
    for name in names:
        process = rates[name]
        if process is None:
            up[name] = True
            next_event[name] = float("inf")
            continue
        up[name] = bool(rng.random() < process.availability)
        rate = process.failure_rate if up[name] else process.repair_rate
        next_event[name] = rng.exponential(1.0 / rate)

    # Precompute, per scenario, the distribution of the union of services
    # a session touches (independent of availabilities).  With boolean
    # service states the session succeeds iff its union set is a subset
    # of the currently-up services, so each evaluation reduces to subset
    # tests against a precomputed weighted list.
    weighted_sets = []
    common = frozenset(model.common_services)
    for scenario in user_class.scenarios:
        union_dist: Dict[frozenset, float] = {common: 1.0}
        for function in scenario.functions:
            usage = model.function_service_usage(function)
            combined: Dict[frozenset, float] = {}
            for current, p_current in union_dist.items():
                for touched, p_touched in usage.items():
                    key = current | touched
                    combined[key] = combined.get(key, 0.0) + p_current * p_touched
            union_dist = combined
        for service_set, probability in union_dist.items():
            weighted_sets.append(
                (scenario.probability * probability, service_set)
            )

    # Only services depending on a flipped resource need re-evaluation.
    dependents: Dict[str, list] = {name: [] for name in names}
    from ..rbd import structure_function

    service_structures = {
        service: model.service_structure(service) for service in model.services
    }
    for service, structure in service_structures.items():
        for resource_name in set(structure.component_names()):
            dependents.setdefault(resource_name, []).append(service)

    def service_state(service: str) -> bool:
        return structure_function(service_structures[service], up)

    up_services = {s for s in model.services if service_state(s)}

    def refresh_services(flipped_resource: str) -> None:
        for service in dependents.get(flipped_resource, ()):
            if service_state(service):
                up_services.add(service)
            else:
                up_services.discard(service)

    def conditional_user_availability() -> float:
        return sum(
            weight
            for weight, service_set in weighted_sets
            if service_set <= up_services
        )

    clock = 0.0
    weighted_availability = 0.0
    fully_up_time = 0.0
    outage_time = 0.0
    transitions = 0
    current = conditional_user_availability()

    while clock < horizon:
        name = min(next_event, key=next_event.get)
        event_time = next_event[name]
        step_end = min(event_time, horizon)
        dt = step_end - clock
        weighted_availability += current * dt
        if all(up[r] for r in names):
            fully_up_time += dt
        if current == 0.0:
            outage_time += dt
        clock = step_end
        if event_time > horizon:
            break
        # Flip the resource and schedule its next transition.
        up[name] = not up[name]
        refresh_services(name)
        process = rates[name]
        rate = process.failure_rate if up[name] else process.repair_rate
        next_event[name] = clock + rng.exponential(1.0 / rate)
        transitions += 1
        if transitions > max_transitions:
            raise SimulationError(
                f"exceeded {max_transitions} resource transitions before the "
                "horizon; rates may be far larger than the horizon warrants"
            )
        current = conditional_user_availability()

    return EndToEndResult(
        horizon=horizon,
        average_user_availability=weighted_availability / horizon,
        fraction_fully_available=fully_up_time / horizon,
        fraction_total_outage=outage_time / horizon,
        resource_transitions=transitions,
    )
