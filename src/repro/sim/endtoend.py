"""End-to-end failure/repair simulation of a hierarchical model.

The analytic user-level measure (paper eq. 10) is a *steady-state
expectation*: it says nothing about how failures cluster in time.  This
simulator closes that gap: every resource alternates between up and down
as an independent two-state Markov process, and the user-perceived
availability is integrated over the simulated timeline — during a LAN
outage *every* session fails together, which the time average then
reflects correctly.

To keep the estimator's variance low, sessions are not sampled
individually: conditional on the current resource states (all boolean),
the exact probability that a random session succeeds is computed from
the hierarchical model (a Rao-Blackwellized estimator), and that
probability is integrated against elapsed time.  Over long horizons the
average converges to the analytic user availability, validating both the
equation and the independence assumptions behind it.

Fault injection
---------------
A run can additionally be driven by a timeline of :class:`FaultEvent`
interventions — the mechanism the :mod:`repro.resilience` campaign
engine uses to *violate* the model's independence assumptions on
purpose.  An event can force a set of resources down regardless of their
natural failure/repair process (correlated outages: LAN plus hosts
failing together), release them again, and set per-service degradation
factors in ``[0, 1]`` that multiply the conditional session-success
probability while active (capacity degradation: a farm in a degraded
coverage mode still serves, but drops a fraction of requests).  The
natural two-state processes keep running *underneath* a forced window,
so releasing a resource restores whatever latent state it reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_non_negative, check_positive, check_rate
from ..availability import TwoStateAvailability
from ..core import HierarchicalModel
from ..errors import SimulationError, ValidationError
from ..profiles import UserClass

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..runtime.budget import CancellationToken

__all__ = [
    "EndToEndResult",
    "FaultEvent",
    "simulate_user_availability_over_time",
]


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled intervention of a fault-injection timeline.

    Attributes
    ----------
    time:
        Absolute simulation time at which the intervention applies.
    force_down:
        Resources forced down from this instant (stacking: a resource
        forced down twice needs two releases).
    release:
        Resources released from a previous ``force_down``.
    service_factors:
        Absolute degradation factors set per service name: ``1.0``
        restores full capacity, ``0.7`` drops 30% of the sessions that
        would otherwise succeed, ``0.0`` is a hard outage of the service.
    """

    time: float
    force_down: FrozenSet[str] = frozenset()
    release: FrozenSet[str] = frozenset()
    service_factors: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self):
        check_non_negative(self.time, "time")
        object.__setattr__(self, "force_down", frozenset(self.force_down))
        object.__setattr__(self, "release", frozenset(self.release))
        factors = dict(self.service_factors)
        for service, factor in factors.items():
            if not 0.0 <= float(factor) <= 1.0:
                raise ValidationError(
                    f"service factor for {service!r} must be in [0, 1], "
                    f"got {factor!r}"
                )
        object.__setattr__(self, "service_factors", factors)
        if not (self.force_down or self.release or factors):
            raise ValidationError(
                "FaultEvent does nothing: set force_down, release, or "
                "service_factors"
            )


@dataclass(frozen=True)
class EndToEndResult:
    """Outcome of an end-to-end failure/repair simulation.

    Attributes
    ----------
    horizon:
        Simulated time span (availability-model time unit).
    average_user_availability:
        Time average of the conditional per-session success probability —
        converges to the analytic eq.-(10) value (absent injected faults).
    fraction_fully_available:
        Fraction of time *every* service was up.
    fraction_total_outage:
        Fraction of time the success probability was zero (a common
        single point of failure was down).
    resource_transitions:
        Number of natural failure/repair events simulated.
    fault_events_applied:
        Number of injected :class:`FaultEvent` interventions applied.
    """

    horizon: float
    average_user_availability: float
    fraction_fully_available: float
    fraction_total_outage: float
    resource_transitions: int
    fault_events_applied: int = 0


def _resource_rates(model: HierarchicalModel, default_repair_rate: float):
    """Failure/repair rates per resource.

    Resources backed by :class:`TwoStateAvailability` use their own
    rates; every other model (fixed numbers, composite web farms) is
    mapped to the two-state process with the same steady-state
    availability and the default repair rate — the approximation is
    documented on the public function.
    """
    rates: Dict[str, TwoStateAvailability] = {}
    for name in model.resources:
        availability = model.resource_availability(name)
        source = model.resource(name).model
        if isinstance(source, TwoStateAvailability):
            rates[name] = source
        elif availability >= 1.0:
            rates[name] = None  # never fails
        else:
            rates[name] = TwoStateAvailability.from_availability(
                availability, repair_rate=default_repair_rate
            )
    return rates


def _validated_timeline(
    faults: Optional[Sequence[FaultEvent]],
    model: HierarchicalModel,
) -> Tuple[FaultEvent, ...]:
    """Fault events sorted by time, with resource/service names checked."""
    if not faults:
        return ()
    resources = set(model.resources)
    services = set(model.services)
    for event in faults:
        unknown = (set(event.force_down) | set(event.release)) - resources
        if unknown:
            raise ValidationError(
                f"fault event at t={event.time} names unknown resources: "
                f"{sorted(unknown)}"
            )
        bad_services = set(event.service_factors) - services
        if bad_services:
            raise ValidationError(
                f"fault event at t={event.time} names unknown services: "
                f"{sorted(bad_services)}"
            )
    return tuple(sorted(faults, key=lambda e: e.time))


def simulate_user_availability_over_time(
    model: HierarchicalModel,
    user_class: UserClass,
    horizon: float,
    rng: np.random.Generator,
    default_repair_rate: float = 1.0,
    max_transitions: int = 20_000_000,
    faults: Optional[Sequence[FaultEvent]] = None,
    cancellation: Optional["CancellationToken"] = None,
    observer: Optional[object] = None,
) -> EndToEndResult:
    """Simulate resource failures/repairs and integrate user availability.

    Parameters
    ----------
    model:
        The hierarchical model; resources not built from
        :class:`TwoStateAvailability` (fixed numbers, web farms) are
        approximated by a two-state process with the same steady-state
        availability and *default_repair_rate*.
    user_class:
        The scenario mix to evaluate.
    horizon:
        Simulated time span, in the availability-model time unit.
    rng:
        Random generator (caller owns seeding).
    default_repair_rate:
        Repair rate assigned to resources that only carry an
        availability number.
    max_transitions:
        Safety cap on natural failure/repair events; exceeding it raises
        :class:`SimulationError` naming the count and sim-time reached.
    faults:
        Optional fault-injection timeline (see :class:`FaultEvent`);
        events past the horizon are ignored.
    cancellation:
        Optional :class:`~repro.runtime.CancellationToken` polled once
        per simulated transition; lets a wall-clock deadline or an
        event budget interrupt the run cleanly (the partial integral is
        discarded — campaign-level journaling preserves only whole
        replications, which is what resume needs).
    observer:
        Optional streaming consumer of the simulated timeline, e.g. a
        :class:`repro.obs.slo.SLOMonitor` or
        :class:`~repro.obs.slo.PoissonSessionSampler`.  Duck-typed: it
        must provide ``interval(start, end, availability)``, called for
        every piecewise-constant segment of the conditional user
        availability, and ``fault(time, event)``, called for every
        applied :class:`FaultEvent`.  ``None`` (the default) costs one
        ``is not None`` check per segment, preserving the additive-
        observability guarantee: results are bit-identical either way.

    Returns
    -------
    EndToEndResult

    Examples
    --------
    >>> from repro.core import HierarchicalModel
    >>> from repro.profiles import UserClass
    >>> from repro.availability import TwoStateAvailability
    >>> model = HierarchicalModel()
    >>> _ = model.add_resource(
    ...     "host", TwoStateAvailability(failure_rate=0.2, repair_rate=1.0))
    >>> _ = model.add_service("web", "host")
    >>> _ = model.add_function("home", services=["web"])
    >>> users = UserClass.from_probabilities("all", {frozenset({"home"}): 1.0})
    >>> result = simulate_user_availability_over_time(
    ...     model, users, horizon=20000.0,
    ...     rng=__import__("numpy").random.default_rng(5))
    >>> abs(result.average_user_availability - 1.0 / 1.2) < 0.01
    True

    A scripted total outage of the only host for half the horizon caps
    the availability accordingly:

    >>> out = simulate_user_availability_over_time(
    ...     model, users, horizon=10000.0,
    ...     rng=__import__("numpy").random.default_rng(5),
    ...     faults=[FaultEvent(time=0.0, force_down=frozenset({"host"})),
    ...             FaultEvent(time=5000.0, release=frozenset({"host"}))])
    >>> out.average_user_availability < 0.5
    True
    """
    horizon = check_positive(horizon, "horizon")
    check_rate(default_repair_rate, "default_repair_rate")
    rates = _resource_rates(model, default_repair_rate)
    names = list(rates)
    timeline = _validated_timeline(faults, model)

    # Initial states drawn from each resource's steady state, so the time
    # average starts unbiased rather than warming up from all-up.
    up: Dict[str, bool] = {}
    next_event: Dict[str, float] = {}
    for name in names:
        process = rates[name]
        if process is None:
            up[name] = True
            next_event[name] = float("inf")
            continue
        up[name] = bool(rng.random() < process.availability)
        rate = process.failure_rate if up[name] else process.repair_rate
        next_event[name] = rng.exponential(1.0 / rate)

    # Injection overlay: forced-down counts per resource and per-service
    # degradation factors.  The *effective* resource state (natural state
    # minus forced windows) is what services are evaluated against.
    forced: Dict[str, int] = {}
    factors: Dict[str, float] = {}
    effective: Dict[str, bool] = dict(up)

    # Precompute, per scenario, the distribution of the union of services
    # a session touches (independent of availabilities).  With boolean
    # service states the session succeeds iff its union set is a subset
    # of the currently-up services, so each evaluation reduces to subset
    # tests against a precomputed weighted list.
    weighted_sets = []
    common = frozenset(model.common_services)
    for scenario in user_class.scenarios:
        union_dist: Dict[frozenset, float] = {common: 1.0}
        for function in scenario.functions:
            usage = model.function_service_usage(function)
            combined: Dict[frozenset, float] = {}
            for current, p_current in union_dist.items():
                for touched, p_touched in usage.items():
                    key = current | touched
                    combined[key] = combined.get(key, 0.0) + p_current * p_touched
            union_dist = combined
        for service_set, probability in union_dist.items():
            weighted_sets.append(
                (scenario.probability * probability, service_set)
            )

    # Degradation factor of each weighted set; all 1.0 until a fault
    # event sets a service factor, so the common no-degradation case
    # stays a pure subset test.
    set_factors = [1.0] * len(weighted_sets)
    degraded = False

    def refresh_set_factors() -> None:
        nonlocal degraded
        degraded = any(f != 1.0 for f in factors.values())
        for k, (_, service_set) in enumerate(weighted_sets):
            product = 1.0
            for service in service_set:
                product *= factors.get(service, 1.0)
            set_factors[k] = product

    # Only services depending on a flipped resource need re-evaluation.
    dependents: Dict[str, list] = {name: [] for name in names}
    from ..rbd import structure_function

    service_structures = {
        service: model.service_structure(service) for service in model.services
    }
    for service, structure in service_structures.items():
        for resource_name in set(structure.component_names()):
            dependents.setdefault(resource_name, []).append(service)

    def service_state(service: str) -> bool:
        return structure_function(service_structures[service], effective)

    up_services = {s for s in model.services if service_state(s)}

    def refresh_services(flipped_resource: str) -> None:
        for service in dependents.get(flipped_resource, ()):
            if service_state(service):
                up_services.add(service)
            else:
                up_services.discard(service)

    def conditional_user_availability() -> float:
        if degraded:
            return sum(
                weight * set_factors[k]
                for k, (weight, service_set) in enumerate(weighted_sets)
                if service_set <= up_services
            )
        return sum(
            weight
            for weight, service_set in weighted_sets
            if service_set <= up_services
        )

    def apply_fault(event: FaultEvent) -> None:
        touched = set(event.force_down) | set(event.release)
        for name in event.force_down:
            forced[name] = forced.get(name, 0) + 1
        for name in event.release:
            count = forced.get(name, 0)
            if count <= 0:
                raise SimulationError(
                    f"fault event at t={event.time} releases {name!r}, "
                    "which is not forced down"
                )
            forced[name] = count - 1
        for name in touched:
            effective[name] = up[name] and forced.get(name, 0) == 0
            refresh_services(name)
        if event.service_factors:
            factors.update(event.service_factors)
            refresh_set_factors()

    clock = 0.0
    weighted_availability = 0.0
    fully_up_time = 0.0
    outage_time = 0.0
    transitions = 0
    applied = 0
    next_fault = 0
    current = conditional_user_availability()

    while clock < horizon:
        if cancellation is not None:
            cancellation.count_event()
        name = min(next_event, key=next_event.get) if next_event else None
        resource_time = next_event[name] if name is not None else float("inf")
        fault_time = (
            timeline[next_fault].time
            if next_fault < len(timeline)
            else float("inf")
        )
        event_time = min(resource_time, fault_time)
        step_end = min(event_time, horizon)
        dt = step_end - clock
        weighted_availability += current * dt
        if all(effective[r] for r in names):
            fully_up_time += dt
        if current == 0.0:
            outage_time += dt
        if observer is not None and dt > 0.0:
            observer.interval(clock, step_end, current)
        clock = step_end
        if event_time > horizon:
            break
        if fault_time <= resource_time:
            event = timeline[next_fault]
            apply_fault(event)
            if observer is not None:
                observer.fault(event.time, event)
            next_fault += 1
            applied += 1
        else:
            # Flip the resource's natural state and schedule its next
            # transition; the effective state honours forced windows.
            up[name] = not up[name]
            effective[name] = up[name] and forced.get(name, 0) == 0
            refresh_services(name)
            process = rates[name]
            rate = process.failure_rate if up[name] else process.repair_rate
            next_event[name] = clock + rng.exponential(1.0 / rate)
            transitions += 1
            if transitions > max_transitions:
                raise SimulationError(
                    f"exceeded max_transitions={max_transitions} after "
                    f"{transitions} resource transitions at sim-time "
                    f"{clock:.6g} of horizon {horizon:.6g}; rates may be far "
                    "larger than the horizon warrants"
                )
        current = conditional_user_availability()

    return EndToEndResult(
        horizon=horizon,
        average_user_availability=weighted_availability / horizon,
        fraction_fully_available=fully_up_time / horizon,
        fraction_total_outage=outage_time / horizon,
        resource_transitions=transitions,
        fault_events_applied=applied,
    )
