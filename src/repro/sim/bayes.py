"""Monte-Carlo cross-validation of the :mod:`repro.bayes` closed forms.

Two estimators mirror the two analytic layers:

* :func:`estimate_joint_availability` — ancestral sampling of the
  network (roots first, each child drawn from its CPT row given the
  sampled parents), estimating any joint up-probability; it converges
  to :meth:`~repro.bayes.BayesianNetwork.probability_of`, so it checks
  the replica-set and zonal-common-cause closed forms through the
  network marginals;
* :func:`estimate_chain_user_availability` — replayed user sessions:
  each session samples one node-state world and one scenario from the
  user class's operational profile, and succeeds when every service on
  the union of its functions' chains is up; the served fraction
  converges to :func:`~repro.bayes.chain_user_availability`.

Both take an explicit :class:`numpy.random.Generator` (the caller owns
seeding) and draw in a fixed, sorted order so estimates are
bit-reproducible across processes.  Tolerances in the tier-1 tests are
``4 * stderr`` plus a small absolute floor, the house convention from
:mod:`repro.sim.clients`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np

from .._validation import check_positive_int
from ..errors import ValidationError

__all__ = [
    "ChainSessionEstimate",
    "JointAvailabilityEstimate",
    "estimate_chain_user_availability",
    "estimate_joint_availability",
    "sample_node_states",
]


@dataclass(frozen=True)
class JointAvailabilityEstimate:
    """A sampled joint up-probability with its binomial standard error."""

    samples: int
    availability: float
    stderr: float


@dataclass(frozen=True)
class ChainSessionEstimate:
    """A replayed-session estimate of chain user availability."""

    sessions: int
    served_fraction: float
    stderr: float


def sample_node_states(
    network,
    samples: int,
    rng: np.random.Generator,
    cancellation=None,
) -> Dict[str, np.ndarray]:
    """Ancestral sampling: *samples* joint states of every node.

    Returns ``{node name: boolean array}``.  Nodes are drawn in
    topological order; a child's CPT row index is packed from its
    sampled parent bits (``parents[0]`` most significant), matching the
    row convention of :class:`~repro.bayes.Node`.
    """
    samples = check_positive_int(samples, "samples")
    states: Dict[str, np.ndarray] = {}
    for name in network.topological_order():
        if cancellation is not None:
            cancellation.check()
        node = network.node(name)
        table = np.asarray(node.table)
        if node.parents:
            rows = np.zeros(samples, dtype=np.int64)
            for parent in node.parents:
                rows = (rows << 1) | states[parent].astype(np.int64)
            up_probability = table[rows]
        else:
            up_probability = table[0]
        states[name] = rng.random(samples) < up_probability
    return states


def estimate_joint_availability(
    network,
    nodes: Sequence[str],
    samples: int,
    rng: np.random.Generator,
    cancellation=None,
) -> JointAvailabilityEstimate:
    """Monte-Carlo estimate of ``P(every node in *nodes* is up)``."""
    if not nodes:
        raise ValidationError(
            "estimate_joint_availability needs at least one node name"
        )
    for name in nodes:
        network.node(name)
    states = sample_node_states(network, samples, rng, cancellation)
    up = np.ones(samples, dtype=bool)
    for name in sorted(set(nodes)):
        up &= states[name]
    fraction = float(up.mean())
    return JointAvailabilityEstimate(
        samples=samples,
        availability=fraction,
        stderr=float(np.sqrt(fraction * (1.0 - fraction) / samples)),
    )


def estimate_chain_user_availability(
    network,
    chains: Mapping[str, object],
    user_class,
    sessions: int,
    rng: np.random.Generator,
    cancellation=None,
) -> ChainSessionEstimate:
    """Replay *sessions* user sessions against sampled node states.

    Each session observes one sampled world and visits one scenario
    drawn from the class's operational profile; it is served when every
    service on the union of its functions' chains is up.  Converges to
    :func:`repro.bayes.chain_user_availability`.
    """
    sessions = check_positive_int(sessions, "sessions")
    scenarios = user_class.scenarios
    service_sets = []
    for scenario in scenarios:
        services = set()
        for function in sorted(scenario.functions):
            if function not in chains:
                raise ValidationError(
                    f"no service chain for function {function!r}; chains "
                    f"cover {sorted(chains)}"
                )
            services.update(chains[function].services)
        for service in services:
            network.node(service)
        service_sets.append(tuple(sorted(services)))

    states = sample_node_states(network, sessions, rng, cancellation)
    weights = np.asarray([s.probability for s in scenarios], dtype=float)
    weights = weights / weights.sum()
    visited = rng.choice(len(scenarios), size=sessions, p=weights)

    served = np.zeros(sessions, dtype=bool)
    for i, services in enumerate(service_sets):
        if cancellation is not None:
            cancellation.check()
        mask = visited == i
        if not mask.any():
            continue
        ok = np.ones(sessions, dtype=bool)
        for service in services:
            ok &= states[service]
        served[mask] = ok[mask]
    fraction = float(served.mean())
    return ChainSessionEstimate(
        sessions=sessions,
        served_fraction=fraction,
        stderr=float(np.sqrt(fraction * (1.0 - fraction) / sessions)),
    )
