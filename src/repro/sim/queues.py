"""Event-driven simulation of an M/M/c/K queue.

Used to validate the blocking-probability formulas (paper eqs. 1 and 3)
against an independent implementation: the simulator knows nothing about
product forms, it just runs arrivals and services.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_int, check_rate
from ..errors import SimulationError, ValidationError
from .des import Simulator

__all__ = [
    "QueueSimulation",
    "QueueSimulationResult",
    "simulate_mm1k_response_times",
]


def simulate_mm1k_response_times(
    arrival_rate: float,
    service_rate: float,
    capacity: int,
    num_arrivals: int,
    rng: np.random.Generator,
):
    """Sojourn times of accepted requests in an M/M/1/K FIFO queue.

    A direct trace-driven recursion (no event queue): with one server
    and FIFO discipline, an accepted request's service starts at
    ``max(arrival, previous accepted request's departure)``, and a
    request is blocked when the K requests ahead of it are all still in
    the system.  Used to validate the closed-form response-time
    distribution of :mod:`repro.queueing.responsetime`.

    Returns
    -------
    numpy.ndarray
        Response times of the accepted requests, in arrival order.
    """
    from collections import deque

    arrival_rate = check_rate(arrival_rate, "arrival_rate")
    service_rate = check_rate(service_rate, "service_rate")
    capacity = check_positive_int(capacity, "capacity")
    num_arrivals = check_positive_int(num_arrivals, "num_arrivals")

    in_system = deque()  # departure times of accepted, not-yet-departed
    last_departure = 0.0
    clock = 0.0
    responses = []
    for _ in range(num_arrivals):
        clock += rng.exponential(1.0 / arrival_rate)
        while in_system and in_system[0] <= clock:
            in_system.popleft()
        if len(in_system) >= capacity:
            continue  # blocked
        start = max(clock, last_departure)
        departure = start + rng.exponential(1.0 / service_rate)
        last_departure = departure
        in_system.append(departure)
        responses.append(departure - clock)
    return np.asarray(responses)


@dataclass(frozen=True)
class QueueSimulationResult:
    """Observed statistics of one queue-simulation run.

    Attributes
    ----------
    arrivals:
        Total arrivals generated.
    blocked:
        Arrivals rejected because the system was full.
    served:
        Service completions.
    blocking_probability:
        ``blocked / arrivals``.
    mean_number_in_system:
        Time-average number of requests present.
    utilization:
        Time-average busy fraction per server.
    duration:
        Simulated time span.
    """

    arrivals: int
    blocked: int
    served: int
    blocking_probability: float
    mean_number_in_system: float
    utilization: float
    duration: float


class QueueSimulation:
    """Simulates an M/M/c/K queue by discrete events.

    Parameters
    ----------
    arrival_rate, service_rate, servers, capacity:
        As in :class:`repro.queueing.MMCKQueue`.
    rng:
        Random generator; the caller owns seeding.

    Examples
    --------
    >>> rng = np.random.default_rng(7)
    >>> sim = QueueSimulation(1.0, 1.0, servers=1, capacity=3, rng=rng)
    >>> result = sim.run(num_arrivals=5000)
    >>> 0.15 < result.blocking_probability < 0.35   # exact: 0.25
    True
    """

    def __init__(
        self,
        arrival_rate: float,
        service_rate: float,
        servers: int,
        capacity: int,
        rng: np.random.Generator,
    ):
        self.arrival_rate = check_rate(arrival_rate, "arrival_rate")
        self.service_rate = check_rate(service_rate, "service_rate")
        self.servers = check_positive_int(servers, "servers")
        self.capacity = check_positive_int(capacity, "capacity")
        if self.capacity < self.servers:
            raise ValidationError(
                f"capacity ({capacity}) must be >= servers ({servers})"
            )
        self._rng = rng

    def run(self, num_arrivals: int) -> QueueSimulationResult:
        """Simulate until *num_arrivals* arrivals have been generated."""
        num_arrivals = check_positive_int(num_arrivals, "num_arrivals")
        sim = Simulator()
        state = _QueueState(self, sim, num_arrivals)
        sim.schedule(self._rng.exponential(1.0 / self.arrival_rate), state.arrival)
        sim.run()
        return state.result()


class _QueueState:
    """Mutable run state; separated so QueueSimulation stays reusable."""

    def __init__(self, config: QueueSimulation, sim: Simulator, num_arrivals: int):
        self._config = config
        self._sim = sim
        self._remaining = num_arrivals
        self._in_system = 0
        self._in_service = 0
        self._arrivals = 0
        self._blocked = 0
        self._served = 0
        self._area_customers = 0.0
        self._area_busy = 0.0
        self._last_change = 0.0

    # ------------------------------------------------------------------
    def _advance_clock(self) -> None:
        elapsed = self._sim.now - self._last_change
        self._area_customers += elapsed * self._in_system
        self._area_busy += elapsed * self._in_service
        self._last_change = self._sim.now

    def arrival(self) -> None:
        self._advance_clock()
        config = self._config
        self._arrivals += 1
        if self._in_system >= config.capacity:
            self._blocked += 1
        else:
            self._in_system += 1
            if self._in_service < config.servers:
                self._start_service()
        self._remaining -= 1
        if self._remaining > 0:
            self._sim.schedule(
                self._config_rng().exponential(1.0 / config.arrival_rate),
                self.arrival,
            )

    def _start_service(self) -> None:
        self._in_service += 1
        self._sim.schedule(
            self._config_rng().exponential(1.0 / self._config.service_rate),
            self.departure,
        )

    def departure(self) -> None:
        self._advance_clock()
        if self._in_system <= 0:
            raise SimulationError("departure from an empty system")
        self._in_system -= 1
        self._in_service -= 1
        self._served += 1
        # A waiting request (if any) seizes the freed server.
        if self._in_system >= self._in_service + 1 and (
            self._in_service < self._config.servers
        ):
            self._start_service()

    def _config_rng(self) -> np.random.Generator:
        return self._config._rng

    # ------------------------------------------------------------------
    def result(self) -> QueueSimulationResult:
        self._advance_clock()
        duration = self._sim.now
        if duration <= 0.0:
            raise SimulationError("simulation produced no elapsed time")
        return QueueSimulationResult(
            arrivals=self._arrivals,
            blocked=self._blocked,
            served=self._served,
            blocking_probability=self._blocked / max(self._arrivals, 1),
            mean_number_in_system=self._area_customers / duration,
            utilization=self._area_busy / (duration * self._config.servers),
            duration=duration,
        )
