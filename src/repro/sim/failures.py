"""Trajectory simulation of availability CTMCs.

Simulates failure/repair trajectories of the coverage-farm models and
accumulates state-occupancy fractions; over long horizons these converge
to the analytic steady-state probabilities (eqs. 4, 6-8), and the
reward-weighted occupancy converges to the composite web-service
availability (eqs. 5, 9).
"""

from __future__ import annotations

from typing import Dict, Hashable

import numpy as np

from .._validation import check_positive
from ..availability.webservice import WebServiceModel
from ..errors import SimulationError
from ..markov import CTMC

__all__ = ["simulate_ctmc_occupancy", "simulate_web_service_availability"]

State = Hashable


def simulate_ctmc_occupancy(
    chain: CTMC,
    initial_state: State,
    horizon: float,
    rng: np.random.Generator,
    max_transitions: int = 50_000_000,
) -> Dict[State, float]:
    """Fraction of ``[0, horizon]`` spent in each state, one trajectory.

    Parameters
    ----------
    chain:
        The CTMC to simulate.
    initial_state:
        Starting state.
    horizon:
        Simulated time span (same unit as the chain's rates).
    rng:
        Random generator.
    max_transitions:
        Safety cap against pathological rate configurations.

    Raises
    ------
    SimulationError
        When more than *max_transitions* transitions fire before the
        horizon; the message reports the transition count and the
        sim-time reached so the rate/horizon mismatch can be diagnosed.

    Examples
    --------
    >>> chain = CTMC(["up", "down"], [[-1.0, 1.0], [3.0, -3.0]])
    >>> occ = simulate_ctmc_occupancy(chain, "up", 5000.0,
    ...                               np.random.default_rng(0))
    >>> abs(occ["up"] - 0.75) < 0.05
    True
    """
    horizon = check_positive(horizon, "horizon")
    occupancy = {state: 0.0 for state in chain.states}
    clock = 0.0
    state = initial_state
    chain.index_of(state)  # validates the label
    transitions = 0
    while clock < horizon:
        dwell, next_state = chain.sample_sojourn(state, rng)
        if next_state is None:  # absorbing: stay forever
            occupancy[state] += horizon - clock
            clock = horizon
            break
        spent = min(dwell, horizon - clock)
        occupancy[state] += spent
        clock += dwell
        state = next_state
        transitions += 1
        if transitions > max_transitions:
            raise SimulationError(
                f"trajectory exceeded max_transitions={max_transitions} after "
                f"{transitions} transitions at sim-time {clock:.6g} of "
                f"horizon {horizon:.6g}; rates may be far larger than the "
                "horizon warrants"
            )
    return {s: t / horizon for s, t in occupancy.items()}


def simulate_web_service_availability(
    model: WebServiceModel,
    horizon: float,
    rng: np.random.Generator,
) -> float:
    """Monte-Carlo estimate of the composite web-service availability.

    Simulates the farm CTMC and weights each state's occupancy by the
    fraction of requests served there (``1 - pK(i)`` for operational
    states, 0 for down states) — a single-trajectory estimator of
    eqs. (5)/(9).

    Parameters
    ----------
    model:
        The composite web-service model.
    horizon:
        Simulated time span, in the *failure-rate* time unit (hours in
        the paper's parameterization).
    rng:
        Random generator.
    """
    chain = model.farm().to_ctmc()
    occupancy = simulate_ctmc_occupancy(chain, model.servers, horizon, rng)
    total = 0.0
    for state, fraction in occupancy.items():
        if isinstance(state, int) and state >= 1:
            total += fraction * (1.0 - model.blocking_probability(state))
    return total
