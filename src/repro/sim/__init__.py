"""Discrete-event simulation used to cross-validate the analytic models.

The paper's results are entirely analytic.  This subpackage provides an
independent check: an event-driven simulation kernel plus three
simulators aligned with the three analytic layers —

* :class:`QueueSimulation` — an M/M/c/K queue; its observed blocking
  frequency converges to eq. (3)'s ``pK(i)``;
* :func:`simulate_ctmc_occupancy` / :func:`simulate_web_service_availability`
  — trajectory simulation of the coverage farms of Figs. 9-10 and of the
  composite web-service measure;
* :class:`SessionSimulation` — user sessions sampled from an operational
  profile; the observed scenario mix converges to the exact visited-set
  distribution, and a Monte-Carlo user-availability estimator converges
  to eq. (10);
* :mod:`~repro.sim.bayes` — ancestral sampling and session replay over
  the :mod:`repro.bayes` cloud models; the estimators converge to the
  exact variable-elimination inference and to the chain-composition
  form of eq. (10).

All simulators take an explicit :class:`numpy.random.Generator`; the
caller owns seeding and reproducibility.
"""

from .des import Simulator
from .queues import (
    QueueSimulation,
    QueueSimulationResult,
    simulate_mm1k_response_times,
)
from .failures import simulate_ctmc_occupancy, simulate_web_service_availability
from .sessions import (
    RetrySimulationResult,
    SessionSimulation,
    estimate_user_availability,
    estimate_user_availability_with_retries,
)
from .endtoend import (
    EndToEndResult,
    FaultEvent,
    simulate_user_availability_over_time,
)
from .clients import (
    CircuitBreakerSimulationResult,
    RequestPolicySimulationResult,
    simulate_circuit_breaker_clients,
    simulate_request_policy,
)
from .bayes import (
    ChainSessionEstimate,
    JointAvailabilityEstimate,
    estimate_chain_user_availability,
    estimate_joint_availability,
    sample_node_states,
)

__all__ = [
    "Simulator",
    "QueueSimulation",
    "QueueSimulationResult",
    "simulate_mm1k_response_times",
    "simulate_ctmc_occupancy",
    "simulate_web_service_availability",
    "SessionSimulation",
    "estimate_user_availability",
    "estimate_user_availability_with_retries",
    "RetrySimulationResult",
    "EndToEndResult",
    "FaultEvent",
    "simulate_user_availability_over_time",
    "CircuitBreakerSimulationResult",
    "RequestPolicySimulationResult",
    "simulate_circuit_breaker_clients",
    "simulate_request_policy",
    "ChainSessionEstimate",
    "JointAvailabilityEstimate",
    "estimate_chain_user_availability",
    "estimate_joint_availability",
    "sample_node_states",
]
