"""Simulation of client-side resilience policies.

Two estimators, each the stochastic cross-check of a closed form in
:mod:`repro.resilience.policies`:

* :func:`simulate_circuit_breaker_clients` runs one circuit-breaker
  client as a discrete-event simulation on the
  :class:`~repro.sim.des.Simulator` kernel — Poisson demand, the
  closed/open/half-open machine with consecutive-failure trip,
  exponential reset timer, and probe thinning in half-open.  Its served
  fraction converges to
  :func:`repro.resilience.policies.circuit_breaker_availability`
  (a population of independent, identical clients averages to the same
  number, so one long-run client *is* the population estimate).
* :func:`simulate_request_policy` Monte-Carlo-samples timeout and hedge
  sessions over the farm's analytic arrival-state mixture (PASTA: an
  arriving request sees the stationary M/M/c/K state; its response time
  is an Erlang wait behind the queue plus its own service), converging
  to :func:`repro.resilience.policies.request_policy_availability`.
  Queue-state correlation between a session's original and its hedge is
  deliberately out of scope — both draw from the stationary mixture,
  matching the i.i.d. assumption of the closed form (the same modeling
  boundary as :func:`~repro.sim.sessions.estimate_user_availability_with_retries`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from .._validation import check_positive_int, check_probability
from ..errors import ValidationError
from ..queueing.mmck import MMCKQueue
from .des import Simulator

__all__ = [
    "CircuitBreakerSimulationResult",
    "simulate_circuit_breaker_clients",
    "RequestPolicySimulationResult",
    "simulate_request_policy",
]


@dataclass(frozen=True)
class CircuitBreakerSimulationResult:
    """Outcome of one circuit-breaker client simulation.

    Attributes
    ----------
    requests:
        Demanded requests (every arrival, whatever the breaker did).
    served_fraction:
        Fraction of demand that reached the service and succeeded — the
        DES estimate of the user-perceived availability.
    short_circuit_fraction:
        Fraction of demand the breaker rejected locally (open state plus
        the non-probed share of half-open arrivals).
    trips:
        Times the breaker tripped open from closed or half-open.
    horizon:
        Simulated time consumed by the run.
    """

    requests: int
    served_fraction: float
    short_circuit_fraction: float
    trips: int
    horizon: float


def simulate_circuit_breaker_clients(
    availability: float,
    policy,
    requests: int,
    rng: np.random.Generator,
    cancellation=None,
) -> CircuitBreakerSimulationResult:
    """Discrete-event simulation of a circuit-breaker client population.

    One client demands the service as a Poisson stream at
    ``policy.request_rate``.  While closed, each attempt succeeds with
    probability *availability*; ``policy.failure_threshold`` consecutive
    failures trip the breaker.  The open sojourn is drawn exponential
    with mean ``policy.reset_timeout`` (matching the Markov closed form;
    same mean occupancy as a deterministic timer).  In half-open, an
    arrival probes with probability ``probe_rate / request_rate`` —
    success closes the breaker, failure re-opens it — and is
    short-circuited otherwise.

    Parameters
    ----------
    availability:
        Per-attempt availability the breaker observes.
    policy:
        A :class:`repro.resilience.CircuitBreakerPolicy` (anything with
        ``failure_threshold``, ``reset_timeout``, ``request_rate`` and
        ``probe_rate`` works).
    requests:
        Demanded requests to simulate.
    rng:
        Random generator; the caller owns seeding.
    cancellation:
        Optional :class:`~repro.runtime.CancellationToken`; the event
        kernel charges every arrival against it.

    Examples
    --------
    >>> from repro.resilience import CircuitBreakerPolicy
    >>> result = simulate_circuit_breaker_clients(
    ...     0.95, CircuitBreakerPolicy(failure_threshold=3,
    ...                                reset_timeout=5.0),
    ...     requests=4000, rng=np.random.default_rng(7))
    >>> 0.8 < result.served_fraction <= 1.0
    True
    """
    availability = check_probability(availability, "availability")
    requests = check_positive_int(requests, "requests")
    probe_share = policy.probe_rate / policy.request_rate
    mean_gap = 1.0 / policy.request_rate
    threshold = policy.failure_threshold

    sim = Simulator(cancellation=cancellation)
    state = {"mode": "closed", "streak": 0}
    counts = {"demanded": 0, "served": 0, "short": 0, "trips": 0}

    def trip_open() -> None:
        state["mode"] = "open"
        counts["trips"] += 1
        sim.schedule(rng.exponential(policy.reset_timeout), half_open)

    def half_open() -> None:
        state["mode"] = "half-open"

    def attempt_succeeds() -> bool:
        return bool(rng.random() < availability)

    def arrival() -> None:
        counts["demanded"] += 1
        mode = state["mode"]
        if mode == "closed":
            if attempt_succeeds():
                counts["served"] += 1
                state["streak"] = 0
            else:
                state["streak"] += 1
                if state["streak"] >= threshold:
                    state["streak"] = 0
                    trip_open()
        elif mode == "open":
            counts["short"] += 1
        else:  # half-open
            if probe_share >= 1.0 or rng.random() < probe_share:
                if attempt_succeeds():
                    counts["served"] += 1
                    state["mode"] = "closed"
                else:
                    trip_open()
            else:
                counts["short"] += 1
        if counts["demanded"] < requests:
            sim.schedule(rng.exponential(mean_gap), arrival)

    sim.schedule(rng.exponential(mean_gap), arrival)
    sim.run()  # at most one reset timer can outlive the last arrival
    return CircuitBreakerSimulationResult(
        requests=requests,
        served_fraction=counts["served"] / requests,
        short_circuit_fraction=counts["short"] / requests,
        trips=counts["trips"],
        horizon=sim.now,
    )


@dataclass(frozen=True)
class RequestPolicySimulationResult:
    """Outcome of a timeout/hedge request-policy simulation.

    Attributes
    ----------
    sessions:
        Simulated sessions.
    served_fraction:
        Fraction of sessions that got a timely, correct response — the
        Monte-Carlo estimate of the policy's effective availability.
    hedged_fraction:
        Fraction that issued the spare request (0 for a plain timeout).
    blocked_fraction:
        Fraction whose *original* request was rejected by the buffer.
    """

    sessions: int
    served_fraction: float
    hedged_fraction: float
    blocked_fraction: float


def simulate_request_policy(
    queue: MMCKQueue,
    policy,
    sessions: int,
    rng: np.random.Generator,
    attempt_availability: float = 1.0,
) -> RequestPolicySimulationResult:
    """Monte-Carlo estimate of a timeout or hedge policy's availability.

    Each request samples the queue state an arriving (Poisson) customer
    sees — the stationary distribution, by PASTA.  State ``K`` means the
    buffer rejects it; otherwise its response time is the Erlang wait
    behind the customers ahead plus its own exponential service, the
    exact representation behind
    :func:`repro.queueing.responsetime.response_time_survival`.  Session
    logic then follows the policy: a timeout session succeeds when the
    response beats the timeout; a hedge session issues a spare
    immediately on rejection or at the hedge delay, succeeding when
    either copy responds in time.  A session-level Bernoulli with
    *attempt_availability* models service-correctness (shared by both
    copies, matching the closed form).

    For a :class:`~repro.resilience.HedgePolicy`, pass the
    *load-adjusted* queue — e.g.
    ``analytic.effective_queue(nominal_queue)`` from
    :func:`repro.resilience.request_policy_availability` — so the sample
    sees the hedge-inflated farm state the closed form resolves via its
    fixed point.

    Parameters
    ----------
    queue:
        The farm queue the requests sample (see above for hedging).
    policy:
        A :class:`repro.resilience.TimeoutPolicy` or
        :class:`repro.resilience.HedgePolicy`.
    sessions:
        Sessions to simulate.
    rng:
        Random generator; the caller owns seeding.
    attempt_availability:
        Session-level service-correctness probability.
    """
    from ..resilience.policies import HedgePolicy, TimeoutPolicy

    sessions = check_positive_int(sessions, "sessions")
    m = check_probability(attempt_availability, "attempt_availability")
    if not isinstance(policy, (TimeoutPolicy, HedgePolicy)):
        raise ValidationError(
            f"policy must be a TimeoutPolicy or HedgePolicy, got {policy!r}"
        )
    dist = queue.state_distribution()
    capacity = queue.capacity
    servers = queue.servers
    mu = queue.service_rate

    def draw_arrivals() -> np.ndarray:
        return rng.choice(capacity + 1, size=sessions, p=dist)

    def response_times(states: np.ndarray) -> np.ndarray:
        # Erlang(n - c + 1, c mu) wait behind the queue (for n >= c),
        # plus the request's own Exp(mu) service.
        ahead = np.maximum(states - servers + 1, 1)
        wait = rng.gamma(ahead, 1.0 / (servers * mu))
        wait = np.where(states >= servers, wait, 0.0)
        return wait + rng.exponential(1.0 / mu, size=sessions)

    tau = policy.timeout
    first = draw_arrivals()
    blocked = first == capacity
    response = response_times(first)
    if isinstance(policy, TimeoutPolicy):
        timely = ~blocked & (response <= tau)
        hedged = np.zeros(sessions, dtype=bool)
    else:
        delay = policy.hedge_delay
        spare_states = draw_arrivals()
        spare_blocked = spare_states == capacity
        spare_response = response_times(spare_states)
        # Rejected original: the spare runs alone from time 0.  Accepted
        # original: it wins outright within tau, or the spare (issued at
        # the hedge delay, if accepted) finishes within the remainder.
        timely = np.where(
            blocked,
            ~spare_blocked & (spare_response <= tau),
            (response <= tau)
            | (
                (response > delay)
                & ~spare_blocked
                & (spare_response <= tau - delay)
            ),
        )
        hedged = blocked | (~blocked & (response > delay))
    correct = rng.random(sessions) < m if m < 1.0 else np.ones(sessions, dtype=bool)
    served = timely & correct
    return RequestPolicySimulationResult(
        sessions=sessions,
        served_fraction=float(np.mean(served)),
        hedged_fraction=float(np.mean(hedged)),
        blocked_fraction=float(np.mean(blocked)),
    )
