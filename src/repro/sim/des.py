"""A minimal event-driven simulation kernel.

Events are callables scheduled at absolute times; ties break in
scheduling order (FIFO), which keeps runs deterministic for a fixed
random seed.  The kernel knows nothing about queues or failures — the
domain simulators in this package build on it.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from .._validation import check_non_negative
from ..errors import SimulationError

__all__ = ["Simulator"]

Action = Callable[[], None]


class Simulator:
    """An event queue with a simulation clock.

    Examples
    --------
    >>> sim = Simulator()
    >>> hits = []
    >>> sim.schedule(2.0, lambda: hits.append(sim.now))
    >>> sim.schedule(1.0, lambda: hits.append(sim.now))
    >>> sim.run()
    >>> hits
    [1.0, 2.0]
    """

    def __init__(self):
        self._now = 0.0
        self._sequence = itertools.count()
        self._queue: List[Tuple[float, int, Action]] = []
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    def schedule(self, delay: float, action: Action) -> None:
        """Schedule *action* to run *delay* time units from now."""
        delay = check_non_negative(delay, "delay")
        self.schedule_at(self._now + delay, action)

    def schedule_at(self, time: float, action: Action) -> None:
        """Schedule *action* at absolute *time* (must not be in the past)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        heapq.heappush(self._queue, (time, next(self._sequence), action))

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        if not self._queue:
            return False
        time, _, action = heapq.heappop(self._queue)
        self._now = time
        self._events_processed += 1
        action()
        return True

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the queue drains (or *max_events* is hit)."""
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed >= max_events:
                return

    def run_until(self, horizon: float, max_events: int = 50_000_000) -> None:
        """Run all events with time <= *horizon*; the clock ends at *horizon*.

        Events scheduled beyond the horizon stay queued (useful for
        warm-started continuations).
        """
        horizon = check_non_negative(horizon, "horizon")
        if horizon < self._now:
            raise SimulationError(
                f"horizon {horizon} is before current time {self._now}"
            )
        executed = 0
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
            executed += 1
            if executed >= max_events:
                raise SimulationError(
                    f"run_until executed {max_events} events before reaching "
                    f"the horizon; possible event loop"
                )
        self._now = horizon
