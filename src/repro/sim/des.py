"""A minimal event-driven simulation kernel.

Events are callables scheduled at absolute times; ties break in
scheduling order (FIFO), which keeps runs deterministic for a fixed
random seed.  The kernel knows nothing about queues or failures — the
domain simulators in this package build on it.

Runaway protection
------------------
An event that unconditionally reschedules itself turns :meth:`Simulator.run`
into an infinite loop.  Both drivers therefore take guards: ``max_events``
and ``max_time`` raise a :class:`~repro.errors.SimulationError` naming
the guard that tripped, and an optional
:class:`~repro.runtime.CancellationToken` bounds a run by wall-clock
deadline or an externally shared event budget.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from .._validation import check_non_negative
from ..errors import SimulationError
from ..obs.clock import monotonic
from ..obs.context import active_metrics, active_perf

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..obs.metrics import Histogram, MetricsRegistry
    from ..obs.perf import PerfRecorder
    from ..runtime.budget import CancellationToken

__all__ = ["Simulator"]

Action = Callable[[], None]


def _action_name(action: Action) -> str:
    """A stable per-event-type name (class, or function qualname)."""
    name = getattr(type(action), "__qualname__", "")
    if name in ("function", "method"):
        name = getattr(action, "__qualname__", name)
    return name


class Simulator:
    """An event queue with a simulation clock.

    Parameters
    ----------
    cancellation:
        Optional :class:`~repro.runtime.CancellationToken` polled after
        every executed event; lets a deadline or caller cancel a long
        run at a clean event boundary.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; defaults to the
        ambient one (:func:`repro.obs.active_metrics`).  When present,
        the kernel records events processed, queue depths, and
        per-event-type execution-time histograms.  When absent — the
        default — every recording site is a single ``is not None``
        check, so the uninstrumented kernel stays at its original speed.
    perf:
        Optional :class:`~repro.obs.PerfRecorder`; defaults to the
        ambient one (:func:`repro.obs.active_perf`).  When present, the
        kernel accounts per-event-type counts and self-time and ticks
        the deterministic counter profiler — bound at construction like
        the metrics step, so disabled runs pay nothing.

    Examples
    --------
    >>> sim = Simulator()
    >>> hits = []
    >>> sim.schedule(2.0, lambda: hits.append(sim.now))
    >>> sim.schedule(1.0, lambda: hits.append(sim.now))
    >>> sim.run()
    >>> hits
    [1.0, 2.0]

    A self-rescheduling event trips the ``max_events`` guard with a
    diagnosable error instead of hanging:

    >>> runaway = Simulator()
    >>> def storm():
    ...     runaway.schedule(1.0, storm)
    >>> runaway.schedule(1.0, storm)
    >>> runaway.run(max_events=10)
    Traceback (most recent call last):
        ...
    repro.errors.SimulationError: run() executed max_events=10 events without draining the queue (1 still pending at sim-time 10); an event may be rescheduling itself forever
    """

    def __init__(
        self,
        cancellation: Optional["CancellationToken"] = None,
        metrics: Optional["MetricsRegistry"] = None,
        perf: Optional["PerfRecorder"] = None,
    ):
        self._now = 0.0
        self._sequence = itertools.count()
        self._queue: List[Tuple[float, int, Action]] = []
        self._events_processed = 0
        self._cancellation = cancellation
        self._metrics = metrics if metrics is not None else active_metrics()
        self._perf = perf if perf is not None else active_perf()
        if self._metrics is not None:
            from ..obs.metrics import DEFAULT_DEPTH_BOUNDS

            self._events_counter = self._metrics.counter(
                "sim_events",
                help="Events executed by the DES kernel.",
            )
            self._depth_gauge = self._metrics.gauge(
                "sim_queue_depth_max",
                help="High-water mark of the pending-event queue.",
            )
            self._depth_histogram = self._metrics.histogram(
                "sim_queue_depth",
                bounds=DEFAULT_DEPTH_BOUNDS,
                help="Pending-event queue depth sampled before each event.",
            )
            self._action_histograms: dict = {}
        # Bound once at construction — the disabled kernel never pays a
        # per-event check for either metrics or perf accounting.
        if self._perf is not None:
            self._accounting = self._perf.kernel
            self._profiler = self._perf.profiler
            self._step = self._step_profiled
        elif self._metrics is not None:
            self._step = self._step_instrumented
        else:
            self._step = self._step_fast

    def _action_histogram(self, action: Action) -> "Histogram":
        """Per-event-type execution-time histogram, cached by type name."""
        name = _action_name(action)
        histogram = self._action_histograms.get(name)
        if histogram is None:
            histogram = self._metrics.histogram(
                "sim_event_seconds",
                help="Wall-clock execution time per event type.",
                event=name,
            )
            self._action_histograms[name] = histogram
        return histogram

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def schedule(self, delay: float, action: Action) -> None:
        """Schedule *action* to run *delay* time units from now."""
        delay = check_non_negative(delay, "delay")
        self.schedule_at(self._now + delay, action)

    def schedule_at(self, time: float, action: Action) -> None:
        """Schedule *action* at absolute *time* (must not be in the past)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        heapq.heappush(self._queue, (time, next(self._sequence), action))

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        return self._step()

    def _step_fast(self) -> bool:
        # The uninstrumented hot path: bound once in __init__ so the
        # metrics check never runs per event.
        if not self._queue:
            return False
        time, _, action = heapq.heappop(self._queue)
        self._now = time
        self._events_processed += 1
        action()
        if self._cancellation is not None:
            self._cancellation.count_event()
        return True

    def _step_instrumented(self) -> bool:
        if not self._queue:
            return False
        depth = len(self._queue)
        self._events_counter.inc()
        self._depth_gauge.set_max(depth)
        self._depth_histogram.observe(depth)
        time, _, action = heapq.heappop(self._queue)
        self._now = time
        self._events_processed += 1
        started = monotonic()
        action()
        self._action_histogram(action).observe(monotonic() - started)
        if self._cancellation is not None:
            self._cancellation.count_event()
        return True

    def _step_profiled(self) -> bool:
        # The perf-accounting step: per-event-type self-time into the
        # recorder's KernelAccounting, a deterministic profiler tick,
        # and (when metrics are *also* active) everything the
        # instrumented step records.
        if not self._queue:
            return False
        metrics = self._metrics
        if metrics is not None:
            depth = len(self._queue)
            self._events_counter.inc()
            self._depth_gauge.set_max(depth)
            self._depth_histogram.observe(depth)
        time, _, action = heapq.heappop(self._queue)
        self._now = time
        self._events_processed += 1
        name = _action_name(action)
        self._profiler.tick_kernel(leaf=f"event:{name}")
        started = monotonic()
        action()
        elapsed = monotonic() - started
        self._accounting.record(name, elapsed)
        if metrics is not None:
            self._action_histogram(action).observe(elapsed)
        if self._cancellation is not None:
            self._cancellation.count_event()
        return True

    def run(
        self,
        max_events: Optional[int] = None,
        max_time: Optional[float] = None,
    ) -> None:
        """Run until the queue drains.

        Parameters
        ----------
        max_events:
            Guard against runaway event loops: if this many events
            execute and the queue is *still* not empty, a
            :class:`~repro.errors.SimulationError` is raised.  Draining
            exactly at the cap is not an error.
        max_time:
            Guard on simulated time: an event scheduled past *max_time*
            raises instead of executing (the clock stops at the last
            in-bounds event).  Use :meth:`run_until` for the
            non-exceptional "integrate up to a horizon" semantics.
        """
        executed = 0
        step = self._step
        while self._queue:
            if max_time is not None and self._queue[0][0] > max_time:
                raise SimulationError(
                    f"run() reached max_time={max_time:g} with "
                    f"{len(self._queue)} event(s) still pending (next at "
                    f"sim-time {self._queue[0][0]:g}); an event may be "
                    "rescheduling itself forever"
                )
            step()
            executed += 1
            if (
                max_events is not None
                and executed >= max_events
                and self._queue
            ):
                raise SimulationError(
                    f"run() executed max_events={max_events} events without "
                    f"draining the queue ({len(self._queue)} still pending "
                    f"at sim-time {self._now:g}); an event may be "
                    "rescheduling itself forever"
                )

    def run_until(self, horizon: float, max_events: int = 50_000_000) -> None:
        """Run all events with time <= *horizon*; the clock ends at *horizon*.

        Events scheduled beyond the horizon stay queued (useful for
        warm-started continuations).
        """
        horizon = check_non_negative(horizon, "horizon")
        if horizon < self._now:
            raise SimulationError(
                f"horizon {horizon} is before current time {self._now}"
            )
        executed = 0
        step = self._step
        while self._queue and self._queue[0][0] <= horizon:
            step()
            executed += 1
            if executed >= max_events:
                raise SimulationError(
                    f"run_until executed {max_events} events before reaching "
                    f"the horizon; possible event loop"
                )
        self._now = horizon
