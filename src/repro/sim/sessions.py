"""Monte-Carlo simulation of user sessions.

Two estimators:

* :class:`SessionSimulation` samples sessions from an operational
  profile and tallies the observed scenario mix — the empirical
  counterpart of :meth:`~repro.profiles.OperationalProfile.scenario_distribution`.
* :func:`estimate_user_availability` samples, per session, both the
  scenario (which functions are invoked) and the up/down state of every
  service, declaring the session successful when all services its
  functions touch are up.  This estimates the user-perceived
  availability (paper eq. 10) without any of the closed-form algebra.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Mapping

import numpy as np

from .._validation import check_positive_int, check_probability
from ..core import HierarchicalModel
from ..errors import ValidationError
from ..profiles import OperationalProfile, Scenario, ScenarioDistribution, UserClass

__all__ = ["SessionSimulation", "estimate_user_availability"]


class SessionSimulation:
    """Samples user sessions from an operational profile.

    Parameters
    ----------
    profile:
        The session graph to sample from.
    rng:
        Random generator; the caller owns seeding.

    Examples
    --------
    >>> profile = OperationalProfile({
    ...     ("Start", "home"): 1.0,
    ...     ("home", "Exit"): 0.5,
    ...     ("home", "search"): 0.5,
    ...     ("search", "Exit"): 1.0,
    ... })
    >>> sim = SessionSimulation(profile, np.random.default_rng(1))
    >>> mix = sim.empirical_scenario_distribution(2000)
    >>> abs(mix.probability_of({"home"}) - 0.5) < 0.05
    True
    """

    def __init__(self, profile: OperationalProfile, rng: np.random.Generator):
        self._profile = profile
        self._rng = rng

    def sample_sessions(self, count: int) -> Counter:
        """Sample *count* sessions; returns ``Counter`` over visited sets."""
        count = check_positive_int(count, "count")
        tally: Counter = Counter()
        for _ in range(count):
            visited = frozenset(self._profile.sample_session(self._rng))
            tally[visited] += 1
        return tally

    def empirical_scenario_distribution(self, count: int) -> ScenarioDistribution:
        """The observed scenario mix of *count* sampled sessions."""
        tally = self.sample_sessions(count)
        total = sum(tally.values())
        return ScenarioDistribution(
            [Scenario(fs, n / total) for fs, n in tally.items()]
        )


def estimate_user_availability(
    model: HierarchicalModel,
    user_class: UserClass,
    sessions: int,
    rng: np.random.Generator,
) -> float:
    """Monte-Carlo estimate of the user-perceived availability.

    Per session: draw the scenario from the user class, draw each
    function's touched-service set from its interaction diagram, draw
    every needed service's state as an independent Bernoulli with its
    analytic availability, and count the session as served when all
    needed services are up.

    Parameters
    ----------
    model:
        The hierarchical model supplying service availabilities and
        function service-usage distributions.
    user_class:
        Scenario mix to sample sessions from.
    sessions:
        Number of sessions to simulate.
    rng:
        Random generator.

    Returns
    -------
    float
        Fraction of successful sessions; converges to
        ``model.user_availability(user_class).availability``.
    """
    sessions = check_positive_int(sessions, "sessions")
    scenarios = user_class.scenarios
    probabilities = np.array([s.probability for s in scenarios])
    probabilities = probabilities / probabilities.sum()
    service_availability = model.service_availabilities()
    usage_by_function = {
        name: list(model.function_service_usage(name).items())
        for name in model.functions
    }
    common = frozenset(model.common_services)

    successes = 0
    for _ in range(sessions):
        scenario = scenarios[int(rng.choice(len(scenarios), p=probabilities))]
        needed = set(common)
        for function in scenario.functions:
            usage = usage_by_function[function]
            if len(usage) == 1:
                needed |= usage[0][0]
            else:
                weights = np.array([p for _, p in usage])
                index = int(rng.choice(len(usage), p=weights / weights.sum()))
                needed |= usage[index][0]
        if all(
            rng.random() < service_availability[service] for service in needed
        ):
            successes += 1
    return successes / sessions
