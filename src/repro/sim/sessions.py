"""Monte-Carlo simulation of user sessions.

Three estimators:

* :class:`SessionSimulation` samples sessions from an operational
  profile and tallies the observed scenario mix — the empirical
  counterpart of :meth:`~repro.profiles.OperationalProfile.scenario_distribution`.
* :func:`estimate_user_availability` samples, per session, both the
  scenario (which functions are invoked) and the up/down state of every
  service, declaring the session successful when all services its
  functions touch are up.  This estimates the user-perceived
  availability (paper eq. 10) without any of the closed-form algebra.
* :func:`estimate_user_availability_with_retries` extends the session
  loop with a user retry model: failed sessions are retried after an
  exponential backoff (scheduled through the event-driven
  :class:`~repro.sim.des.Simulator` kernel) until they succeed, the
  retry budget is exhausted, or the user abandons.  Its served fraction
  converges to the closed-form retry-adjusted availability of
  :mod:`repro.resilience.retry`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping

import numpy as np

from .._validation import check_positive_int, check_probability
from ..core import HierarchicalModel
from ..errors import ValidationError
from ..profiles import OperationalProfile, Scenario, ScenarioDistribution, UserClass
from .des import Simulator

__all__ = [
    "SessionSimulation",
    "estimate_user_availability",
    "estimate_user_availability_with_retries",
    "RetrySimulationResult",
]


class SessionSimulation:
    """Samples user sessions from an operational profile.

    Parameters
    ----------
    profile:
        The session graph to sample from.
    rng:
        Random generator; the caller owns seeding.

    Examples
    --------
    >>> profile = OperationalProfile({
    ...     ("Start", "home"): 1.0,
    ...     ("home", "Exit"): 0.5,
    ...     ("home", "search"): 0.5,
    ...     ("search", "Exit"): 1.0,
    ... })
    >>> sim = SessionSimulation(profile, np.random.default_rng(1))
    >>> mix = sim.empirical_scenario_distribution(2000)
    >>> abs(mix.probability_of({"home"}) - 0.5) < 0.05
    True
    """

    def __init__(self, profile: OperationalProfile, rng: np.random.Generator):
        self._profile = profile
        self._rng = rng

    def sample_sessions(self, count: int) -> Counter:
        """Sample *count* sessions; returns ``Counter`` over visited sets."""
        count = check_positive_int(count, "count")
        tally: Counter = Counter()
        for _ in range(count):
            visited = frozenset(self._profile.sample_session(self._rng))
            tally[visited] += 1
        return tally

    def empirical_scenario_distribution(self, count: int) -> ScenarioDistribution:
        """The observed scenario mix of *count* sampled sessions."""
        tally = self.sample_sessions(count)
        total = sum(tally.values())
        return ScenarioDistribution(
            [Scenario(fs, n / total) for fs, n in tally.items()]
        )


def estimate_user_availability(
    model: HierarchicalModel,
    user_class: UserClass,
    sessions: int,
    rng: np.random.Generator,
    on_session=None,
) -> float:
    """Monte-Carlo estimate of the user-perceived availability.

    Per session: draw the scenario from the user class, draw each
    function's touched-service set from its interaction diagram, draw
    every needed service's state as an independent Bernoulli with its
    analytic availability, and count the session as served when all
    needed services are up.

    Parameters
    ----------
    model:
        The hierarchical model supplying service availabilities and
        function service-usage distributions.
    user_class:
        Scenario mix to sample sessions from.
    sessions:
        Number of sessions to simulate.
    rng:
        Random generator.
    on_session:
        Optional callback ``on_session(time, success)`` invoked once per
        simulated session with the session index (as a float pseudo-time)
        and its boolean outcome — the hook a streaming consumer such as
        :meth:`repro.obs.slo.SLOMonitor.session` plugs into.  ``None``
        (the default) adds one ``is not None`` check per session; the
        returned estimate is bit-identical either way.

    Returns
    -------
    float
        Fraction of successful sessions; converges to
        ``model.user_availability(user_class).availability``.
    """
    sessions = check_positive_int(sessions, "sessions")
    scenarios = user_class.scenarios
    probabilities = np.array([s.probability for s in scenarios])
    probabilities = probabilities / probabilities.sum()
    service_availability = model.service_availabilities()
    usage_by_function = {
        name: list(model.function_service_usage(name).items())
        for name in model.functions
    }
    common = frozenset(model.common_services)

    successes = 0
    for i in range(sessions):
        scenario = scenarios[int(rng.choice(len(scenarios), p=probabilities))]
        needed = set(common)
        for function in scenario.functions:
            usage = usage_by_function[function]
            if len(usage) == 1:
                needed |= usage[0][0]
            else:
                weights = np.array([p for _, p in usage])
                index = int(rng.choice(len(usage), p=weights / weights.sum()))
                needed |= usage[index][0]
        # Sorted: set iteration order varies with PYTHONHASHSEED, and the
        # short-circuiting draws would consume the rng stream differently
        # across processes (breaking the engine's bit-identity contract).
        success = all(
            rng.random() < service_availability[service]
            for service in sorted(needed)
        )
        if success:
            successes += 1
        if on_session is not None:
            on_session(float(i), success)
    return successes / sessions


@dataclass(frozen=True)
class RetrySimulationResult:
    """Outcome of a session simulation with user retries.

    Attributes
    ----------
    sessions:
        Number of simulated sessions.
    served_fraction:
        Fraction of sessions that eventually succeeded — the retry-
        adjusted user-perceived availability.
    abandoned_fraction:
        Fraction whose user gave up after a failure (persistence draw).
    exhausted_fraction:
        Fraction that failed every allowed attempt.
    mean_attempts:
        Average number of attempts per session.
    mean_success_delay:
        Average backoff delay accumulated by *successful* sessions
        before they succeeded (0 when every session succeeds first try);
        ``nan`` when no session succeeded.
    """

    sessions: int
    served_fraction: float
    abandoned_fraction: float
    exhausted_fraction: float
    mean_attempts: float
    mean_success_delay: float


def estimate_user_availability_with_retries(
    model: HierarchicalModel,
    user_class: UserClass,
    policy,
    sessions: int,
    rng: np.random.Generator,
    cancellation=None,
    on_session=None,
) -> RetrySimulationResult:
    """Session simulation with retries under exponential backoff.

    Each session draws a scenario from the user class and attempts it;
    a failed attempt is retried after ``policy.backoff_delay(retry)``
    time units, provided the user persists (probability
    ``policy.persistence`` per failure) and the retry budget
    ``policy.max_retries`` is not exhausted.  Retries are scheduled as
    discrete events on the :class:`~repro.sim.des.Simulator` kernel, so
    backoff timing is part of the simulated timeline.

    Service states are redrawn independently per attempt (each retry is
    a fresh invocation against the steady-state model), which makes the
    served fraction converge to the closed-form
    :func:`repro.resilience.retry.retry_adjusted_user_availability` —
    the analytic model this simulation cross-validates.  Correlation
    *across* attempts (retrying into the same outage) is deliberately
    out of scope here; the fault-injection campaign engine
    (:mod:`repro.resilience.campaign`) measures that effect.

    Parameters
    ----------
    model:
        The hierarchical model supplying service availabilities.
    user_class:
        Scenario mix to sample sessions from.
    policy:
        Any object with ``max_retries``, ``persistence`` and
        ``backoff_delay(retry_index)`` — typically a
        :class:`repro.resilience.RetryPolicy`.
    sessions:
        Number of sessions to simulate.
    rng:
        Random generator.
    cancellation:
        Optional :class:`~repro.runtime.CancellationToken`; the event
        kernel charges every attempt against it, so deadlines and event
        budgets bound the retry simulation too.
    on_session:
        Optional callback ``on_session(time, success)`` invoked once per
        session at its *final* outcome (served, abandoned, or exhausted)
        with the simulated time of that outcome; lets a streaming
        consumer such as :meth:`repro.obs.slo.SLOMonitor.session` watch
        the retry-adjusted availability online.  ``None`` (the default)
        leaves the result bit-identical.
    """
    sessions = check_positive_int(sessions, "sessions")
    check_probability(policy.persistence, "policy.persistence")
    if policy.max_retries < 0:
        raise ValidationError(
            f"policy.max_retries must be >= 0, got {policy.max_retries}"
        )
    scenarios = user_class.scenarios
    probabilities = np.array([s.probability for s in scenarios])
    probabilities = probabilities / probabilities.sum()
    service_availability = model.service_availabilities()
    usage_by_function = {
        name: list(model.function_service_usage(name).items())
        for name in model.functions
    }
    common = frozenset(model.common_services)

    def attempt_succeeds(scenario: Scenario) -> bool:
        needed = set(common)
        for function in scenario.functions:
            usage = usage_by_function[function]
            if len(usage) == 1:
                needed |= usage[0][0]
            else:
                weights = np.array([p for _, p in usage])
                index = int(rng.choice(len(usage), p=weights / weights.sum()))
                needed |= usage[index][0]
        # Sorted for the same cross-process rng-stream stability as
        # :func:`estimate_user_availability`.
        return all(
            rng.random() < service_availability[service]
            for service in sorted(needed)
        )

    sim = Simulator(cancellation=cancellation)
    served = 0
    abandoned = 0
    exhausted = 0
    total_attempts = 0
    success_delays: List[float] = []

    def run_attempt(scenario: Scenario, retry_index: int, started: float) -> None:
        nonlocal served, abandoned, exhausted, total_attempts
        total_attempts += 1
        if attempt_succeeds(scenario):
            served += 1
            success_delays.append(sim.now - started)
            if on_session is not None:
                on_session(sim.now, True)
            return
        if retry_index >= policy.max_retries:
            exhausted += 1
            if on_session is not None:
                on_session(sim.now, False)
            return
        if policy.persistence < 1.0 and rng.random() >= policy.persistence:
            abandoned += 1
            if on_session is not None:
                on_session(sim.now, False)
            return
        delay = policy.backoff_delay(retry_index)
        sim.schedule(
            delay,
            lambda: run_attempt(scenario, retry_index + 1, started),
        )

    # Sessions arrive as a unit-rate Poisson stream; with per-attempt
    # states redrawn independently the arrival pattern only affects the
    # timeline, not the served fraction.
    arrival = 0.0
    for _ in range(sessions):
        arrival += rng.exponential(1.0)
        scenario = scenarios[int(rng.choice(len(scenarios), p=probabilities))]
        sim.schedule_at(
            arrival,
            (lambda s, t: lambda: run_attempt(s, 0, t))(scenario, arrival),
        )
    sim.run()

    return RetrySimulationResult(
        sessions=sessions,
        served_fraction=served / sessions,
        abandoned_fraction=abandoned / sessions,
        exhausted_fraction=exhausted / sessions,
        mean_attempts=total_attempts / sessions,
        mean_success_delay=(
            float(np.mean(success_delays)) if success_delays else float("nan")
        ),
    )
