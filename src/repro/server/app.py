"""The evaluation server: routes, streaming, and the self-model.

:class:`ReproServer` binds the pieces together on one asyncio event
loop:

* ``POST /v1/sweeps | /v1/policies | /v1/campaigns | /v1/probes`` —
  validate the JSON spec (400 on a bad one), admit through the
  M/M/c/K controller (503 + ``server_admission_rejections_total``
  when full), and answer 202 with the job document;
* ``GET /v1/jobs`` / ``GET /v1/jobs/{id}`` / ``DELETE /v1/jobs/{id}``
  — job table, job status/result, cooperative cancellation;
* ``GET /v1/jobs/{id}/profile`` — the performance-attribution document
  of a job submitted with ``"profile": true`` (404 otherwise);
* ``GET /v1/self`` — the server's own analytic M/M/c/K availability at
  its measured arrival/service rates, cross-checked against the
  observed rejection ratio;
* ``GET /metrics`` — the shared :class:`~repro.obs.MetricsRegistry` in
  OpenMetrics text (the same exposition ``repro stats --format
  openmetrics`` prints), including the ``server_*`` families;
* ``GET /v1/events`` — SSE stream of job transitions, engine progress
  heartbeats, admission rejections, periodic server heartbeats, and
  :class:`~repro.obs.SLOMonitor` burn-rate state;
* ``GET /healthz`` / ``GET /readyz`` — liveness and readiness.

The admission SLO: every submission is a session against the
``slo_objective`` availability target (accepted = success, 503 =
failure) on the server's uptime timeline, so the burn-rate alerting
built for the paper's model watches the server itself.

:class:`ServerThread` runs a server on a background thread with its
own event loop — the harness used by tests, the example, and the
throughput benchmark.
"""

from __future__ import annotations

import asyncio
import contextlib
import math
import re
import threading
import time
from dataclasses import asdict
from typing import Callable, List, Optional

from ..errors import ReproError, ServerError, ValidationError
from .http import (
    HttpProtocolError,
    Request,
    Response,
    SSEStream,
    json_response,
    read_request,
    write_response,
)
from .jobs import JobManager
from .work import execute_job, parse_spec

__all__ = ["ReproServer", "ServerThread"]

#: POST route segment -> job kind.
_SUBMIT_ROUTES = {
    "sweeps": "sweep",
    "policies": "policies",
    "campaigns": "campaign",
    "clouds": "cloud",
    "probes": "probe",
}


def _slo_summary_dict(summary) -> dict:
    """An :class:`~repro.obs.slo.SLOSummary` as JSON-safe data."""
    data = asdict(summary)
    for key, value in list(data.items()):
        if isinstance(value, float) and math.isnan(value):
            data[key] = None
    data["burn_rates"] = [
        None if math.isnan(rate) else rate for rate in summary.burn_rates
    ]
    if summary.confidence_interval is not None:
        data["confidence_interval"] = list(summary.confidence_interval)
    return data


class ReproServer:
    """The availability evaluation service (see module docstring).

    Parameters
    ----------
    host / port:
        Bind address; port 0 picks an ephemeral port, readable from
        :attr:`port` after :meth:`start`.
    slots:
        Concurrent evaluation slots ``c`` (``repro serve --workers``).
    queue_limit:
        Admission capacity ``K`` (running + queued jobs).
    journal:
        Optional job-journal path; a restart against the same path
        restores finished results and re-runs interrupted jobs.
    metrics:
        Shared registry for ``/metrics``; a private one by default.
    slo_objective:
        Admission availability objective watched by the SLO monitor.
    heartbeat_interval:
        Seconds between periodic SSE ``heartbeat`` events.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        slots: int = 2,
        queue_limit: int = 8,
        journal=None,
        metrics=None,
        slo_objective: float = 0.999,
        heartbeat_interval: float = 2.0,
        runner: Callable[..., dict] = execute_job,
    ):
        from .._validation import check_in_range, check_positive
        from ..obs import MetricsRegistry, SLOMonitor

        if not isinstance(port, int) or not 0 <= port <= 65535:
            raise ValidationError(f"port must be in 0..65535, got {port!r}")
        self.host = host
        self.port = port
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.jobs = JobManager(
            runner,
            slots=slots,
            capacity=queue_limit,
            journal=journal,
            metrics=self.metrics,
        )
        check_in_range(slo_objective, 0.0, 1.0, "slo_objective")
        check_positive(heartbeat_interval, "heartbeat_interval")
        self._heartbeat_interval = heartbeat_interval
        self.slo = SLOMonitor(
            objective=slo_objective,
            windows=(60.0, 600.0),
            burn_threshold=5.0,
            name="admission",
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._started_monotonic: Optional[float] = None
        self._started_wall: Optional[float] = None
        self._routes = self._build_routes()

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start workers; resolves :attr:`port`."""
        await self.jobs.start()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
        except OSError as exc:
            await self.jobs.stop()
            raise ServerError(
                f"cannot bind {self.host}:{self.port}: {exc}"
            ) from exc
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_monotonic = time.monotonic()
        self._started_wall = time.time()
        self._heartbeat_task = asyncio.create_task(self._heartbeat_loop())

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() was not awaited"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Close the socket and stop workers (journal stays resumable)."""
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._heartbeat_task
            self._heartbeat_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Open connections (idle keep-alives, SSE streams) outlive the
        # listening socket; cancel them so shutdown leaves no stragglers.
        for task in list(self._connections):
            task.cancel()
        await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        await self.jobs.stop()

    def uptime(self) -> float:
        if self._started_monotonic is None:
            return 0.0
        return time.monotonic() - self._started_monotonic

    # -- routing --------------------------------------------------------
    def _build_routes(self):
        return [
            ("POST", re.compile(r"^/v1/(sweeps|policies|campaigns|clouds|probes)$"),
             "/v1/{kind}", self._handle_submit),
            ("GET", re.compile(r"^/v1/jobs$"), "/v1/jobs",
             self._handle_jobs),
            ("GET", re.compile(r"^/v1/jobs/([^/]+)$"), "/v1/jobs/{id}",
             self._handle_job),
            ("GET", re.compile(r"^/v1/jobs/([^/]+)/profile$"),
             "/v1/jobs/{id}/profile", self._handle_job_profile),
            ("DELETE", re.compile(r"^/v1/jobs/([^/]+)$"), "/v1/jobs/{id}",
             self._handle_cancel),
            ("GET", re.compile(r"^/v1/self$"), "/v1/self",
             self._handle_self),
            ("GET", re.compile(r"^/v1/events$"), "/v1/events",
             self._handle_events),
            ("GET", re.compile(r"^/metrics$"), "/metrics",
             self._handle_metrics),
            ("GET", re.compile(r"^/healthz$"), "/healthz",
             self._handle_healthz),
            ("GET", re.compile(r"^/readyz$"), "/readyz",
             self._handle_readyz),
        ]

    def _route(self, request: Request):
        allowed: List[str] = []
        for method, pattern, label, handler in self._routes:
            match = pattern.match(request.path)
            if match is None:
                continue
            if method != request.method:
                allowed.append(method)
                continue
            request.params = {
                str(index): value
                for index, value in enumerate(match.groups(), start=1)
                if value is not None
            }
            return label, handler
        if allowed:
            return request.path, _method_not_allowed(allowed)
        return request.path, None

    # -- connection handling --------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while await self._serve_one(reader, writer):
                pass
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Shutdown cancels open connections (see stop()); end the
            # task normally so the streams callback that retrieves its
            # exception does not trip over the cancellation.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _serve_one(self, reader, writer) -> bool:
        """Serve one request; True when the connection can be reused."""
        try:
            request = await read_request(reader)
        except HttpProtocolError as exc:
            await write_response(
                writer,
                json_response(exc.status, {"error": str(exc)}),
                keep_alive=False,
            )
            return False
        if request is None:
            return False

        started = time.perf_counter()
        label, handler = self._route(request)
        if handler is None:
            response: Response = json_response(
                404, {"error": f"no route for {request.method} {request.path}"}
            )
        elif handler == self._handle_events:
            # SSE claims the connection; account for it, then stream.
            self._observe_request(request.method, label, 200, started)
            await self._handle_events(request, writer)
            return False
        else:
            try:
                response = await handler(request)
            except HttpProtocolError as exc:
                response = json_response(exc.status, {"error": str(exc)})
            except ValidationError as exc:
                response = json_response(400, {"error": str(exc)})
            except KeyError as exc:
                response = json_response(404, {"error": str(exc.args[0])})
            except ReproError as exc:
                response = json_response(400, {"error": str(exc)})
            except Exception as exc:  # never kill the connection handler
                response = json_response(
                    500, {"error": f"{type(exc).__name__}: {exc}"}
                )
        keep_alive = request.keep_alive
        await write_response(writer, response, keep_alive=keep_alive)
        self._observe_request(request.method, label, response.status, started)
        return keep_alive

    def _observe_request(
        self, method: str, route: str, code: int, started: float
    ) -> None:
        self.metrics.counter(
            "server_requests",
            help="HTTP requests served, by method, route, and status.",
            method=method,
            route=route,
            code=str(code),
        ).inc()
        self.metrics.histogram(
            "server_request_seconds",
            help="Request handling latency in seconds.",
            route=route,
        ).observe(time.perf_counter() - started)

    # -- handlers -------------------------------------------------------
    async def _handle_submit(self, request: Request) -> Response:
        kind = _SUBMIT_ROUTES[request.path.rsplit("/", 1)[-1]]
        spec = parse_spec(kind, request.json())  # ValidationError -> 400
        job = self.jobs.submit(kind, spec)
        accepted = job is not None
        self.slo.session(self.uptime(), accepted)
        self._emit_slo()
        if not accepted:
            return json_response(503, {
                "error": (
                    "admission queue is full "
                    f"({self.jobs.admission.in_system}/"
                    f"{self.jobs.admission.capacity} jobs in system); "
                    "retry after a job resolves"
                ),
                "rejected": True,
                "kind": kind,
            })
        return json_response(202, job.to_dict(include_result=False))

    async def _handle_jobs(self, request: Request) -> Response:
        return json_response(200, {
            "jobs": [
                job.to_dict(include_result=False)
                for job in self.jobs.jobs()
            ],
        })

    async def _handle_job(self, request: Request) -> Response:
        job = self.jobs.get(request.params["1"])  # KeyError -> 404
        return json_response(200, job.to_dict())

    async def _handle_job_profile(self, request: Request) -> Response:
        job = self.jobs.get(request.params["1"])  # KeyError -> 404
        result = job.result if isinstance(job.result, dict) else {}
        profile = result.get("profile")
        if profile is None:
            return json_response(404, {
                "error": (
                    f"job {job.id!r} has no profile; submit with "
                    '"profile": true in the spec (status: '
                    f"{job.status})"
                ),
            })
        return json_response(200, profile)

    async def _handle_cancel(self, request: Request) -> Response:
        job = self.jobs.cancel(request.params["1"])  # KeyError -> 404
        return json_response(200, job.to_dict(include_result=False))

    async def _handle_self(self, request: Request) -> Response:
        report = self.jobs.admission.report()
        report["uptime_seconds"] = self.uptime()
        report["slo"] = _slo_summary_dict(self.slo.summary())
        return json_response(200, report)

    async def _handle_metrics(self, request: Request) -> Response:
        text = self.metrics.render_openmetrics() + "\n"
        return Response(
            status=200,
            body=text.encode("utf-8"),
            content_type=(
                "application/openmetrics-text; version=1.0.0; charset=utf-8"
            ),
        )

    async def _handle_healthz(self, request: Request) -> Response:
        return json_response(200, {
            "status": "ok",
            "uptime_seconds": self.uptime(),
        })

    async def _handle_readyz(self, request: Request) -> Response:
        ready = self._server is not None
        return json_response(200 if ready else 503, {"ready": ready})

    async def _handle_events(self, request: Request, writer) -> None:
        stream = SSEStream(writer)
        queue = self.jobs.subscribe()
        try:
            await stream.start()
            await stream.send("hello", {
                "server": "repro",
                "uptime_seconds": self.uptime(),
                "in_system": self.jobs.admission.in_system,
                "capacity": self.jobs.admission.capacity,
            })
            while True:
                event, data = await queue.get()
                await stream.send(event, data)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            self.jobs.unsubscribe(queue)

    # -- periodic heartbeat + SLO state ---------------------------------
    def _emit_slo(self) -> None:
        self.jobs._emit("slo", _slo_summary_dict(self.slo.summary()))

    async def _heartbeat_loop(self) -> None:
        while True:
            await asyncio.sleep(self._heartbeat_interval)
            self.jobs._emit("heartbeat", {
                "uptime_seconds": self.uptime(),
                "in_system": self.jobs.admission.in_system,
                "capacity": self.jobs.admission.capacity,
                "arrivals": self.jobs.admission.arrivals,
                "rejections": self.jobs.admission.rejections,
            })
            self._emit_slo()


def _method_not_allowed(allowed: List[str]):
    async def handler(request: Request) -> Response:
        return json_response(405, {
            "error": (
                f"{request.method} is not allowed on {request.path}; "
                f"allowed: {sorted(set(allowed))}"
            ),
        })

    return handler


class ServerThread:
    """A :class:`ReproServer` on a background thread, for harnesses.

    ::

        with ServerThread(slots=2, queue_limit=8) as handle:
            client = ServerClient("127.0.0.1", handle.port)
            ...

    The thread owns its own event loop; ``__exit__`` stops the server,
    drains the default thread-pool executor, and joins the thread.
    Journals written by the server stay resumable across restarts.
    """

    def __init__(self, **kwargs):
        self._kwargs = kwargs
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.server: Optional[ReproServer] = None

    @property
    def port(self) -> int:
        assert self.server is not None
        return self.server.port

    def _main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self.server = ReproServer(**self._kwargs)
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surfaced in __enter__
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.stop())
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.run_until_complete(loop.shutdown_default_executor())
            loop.close()

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._main, name="repro-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise ServerError("server thread did not become ready in 30 s")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30.0)
        if self._thread.is_alive():  # pragma: no cover - diagnostics
            raise ServerError("server thread did not stop in 30 s")
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
