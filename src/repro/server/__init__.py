"""Availability-as-a-service: the library as a long-running server.

``repro.server`` wraps the batch evaluation library in an asyncio HTTP
service with **no dependencies beyond the standard library**:

* :mod:`~repro.server.http` — minimal HTTP/1.1 + SSE on asyncio
  streams;
* :mod:`~repro.server.admission` — the M/M/c/K admission controller
  that models the server itself ("the evaluator evaluates itself");
* :mod:`~repro.server.jobs` — the job table, bounded queue, worker
  slots, cancellation, and journal-backed restart;
* :mod:`~repro.server.work` — job-spec validation and execution on the
  canonical :mod:`repro.workloads`;
* :mod:`~repro.server.app` — :class:`ReproServer` (routes, SSE, SLO,
  ``/metrics``) and the :class:`ServerThread` test harness;
* :mod:`~repro.server.client` — the thin stdlib :class:`ServerClient`.

Start one from the command line with ``repro serve``; the full API is
documented in ``docs/SERVER.md``.
"""

from .admission import AdmissionController
from .app import ReproServer, ServerThread
from .client import ServerClient
from .jobs import Job, JobManager, TERMINAL_STATUSES
from .work import execute_job, parse_spec

__all__ = [
    "AdmissionController",
    "ReproServer",
    "ServerThread",
    "ServerClient",
    "Job",
    "JobManager",
    "TERMINAL_STATUSES",
    "execute_job",
    "parse_spec",
]
