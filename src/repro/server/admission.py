"""The server's own M/M/c/K model — the evaluator evaluating itself.

The job queue is literally an instance of the paper's web-farm model:
``c`` worker slots (parallel servers), a bounded system of capacity
``K`` (running + queued jobs), Poisson-ish job arrivals, and a 503 for
every arrival that finds the system full — the paper's eq. (3) blocking
probability made operational.

:class:`AdmissionController` owns the occupancy decision and keeps the
measurements needed to close the loop: it estimates the arrival rate
``lambda`` from observed inter-arrival times and the service rate
``mu`` from completed-job slot-holding times, feeds both into the
repo's analytic :class:`~repro.queueing.mmck.MMCKQueue` kernel for the
server's *own* (c, K), and cross-checks the predicted blocking
probability against the observed rejection ratio with a Wilson
confidence interval (``GET /v1/self``).

Model caveats, deliberately visible in the report rather than hidden:
service times are whatever the submitted jobs take (exponential only if
the traffic makes them so), and a job cancelled while still queued
leaves the system without receiving service — both deviations from the
textbook M/M/c/K are tiny under the saturation tests that exercise the
cross-check with exponential probe jobs.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from .._validation import check_positive_int
from ..errors import ValidationError

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded-occupancy admission with self-measurement.

    Parameters
    ----------
    slots:
        Concurrent job slots ``c`` (the worker count).
    capacity:
        Total system capacity ``K >= c`` — running plus queued jobs; an
        arrival finding ``K`` jobs in the system is rejected (503).
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        slots: int,
        capacity: int,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.slots = check_positive_int(slots, "slots")
        self.capacity = check_positive_int(capacity, "capacity")
        if self.capacity < self.slots:
            raise ValidationError(
                f"capacity ({capacity}) must be >= slots ({slots})"
            )
        self._clock = clock
        self.arrivals = 0
        self.accepted = 0
        self.rejections = 0
        self.completed = 0
        self.service_seconds = 0.0
        self._in_system = 0
        self._first_arrival: Optional[float] = None
        self._last_arrival: Optional[float] = None

    # -- occupancy ------------------------------------------------------
    @property
    def in_system(self) -> int:
        """Jobs currently running or queued."""
        return self._in_system

    def try_admit(self) -> bool:
        """Record one arrival; True when it fits, False when rejected."""
        now = self._clock()
        if self._first_arrival is None:
            self._first_arrival = now
        self._last_arrival = now
        self.arrivals += 1
        if self._in_system >= self.capacity:
            self.rejections += 1
            return False
        self.accepted += 1
        self._in_system += 1
        return True

    def occupy(self) -> None:
        """Claim a slot without counting an arrival (journal restore)."""
        if self._in_system >= self.capacity:
            raise ValidationError(
                f"cannot restore a job into a full system "
                f"({self._in_system}/{self.capacity})"
            )
        self._in_system += 1

    def release(self) -> None:
        """A job left without receiving service (cancelled while queued)."""
        if self._in_system <= 0:
            raise ValidationError("release() without a job in the system")
        self._in_system -= 1

    def complete(self, service_seconds: float) -> None:
        """A job finished after holding a slot for *service_seconds*."""
        if self._in_system <= 0:
            raise ValidationError("complete() without a job in the system")
        self._in_system -= 1
        self.completed += 1
        self.service_seconds += max(0.0, float(service_seconds))

    # -- measured rates -------------------------------------------------
    def observation_seconds(self) -> float:
        """Span of the arrival observation window."""
        if self._first_arrival is None or self._last_arrival is None:
            return 0.0
        return self._last_arrival - self._first_arrival

    def arrival_rate(self) -> Optional[float]:
        """Measured ``lambda`` (arrivals/s); None below two arrivals.

        With ``n`` arrivals spanning ``T`` seconds there are ``n - 1``
        inter-arrival gaps, so the unbiased-through-the-window estimate
        is ``(n - 1) / T``.
        """
        window = self.observation_seconds()
        if self.arrivals < 2 or window <= 0.0:
            return None
        return (self.arrivals - 1) / window

    def service_rate(self) -> Optional[float]:
        """Measured ``mu`` (1 / mean slot-holding time); None before
        the first completion."""
        if self.completed == 0 or self.service_seconds <= 0.0:
            return None
        return self.completed / self.service_seconds

    def rejection_ratio(self) -> Optional[float]:
        """Observed 503 fraction; None before the first arrival."""
        if self.arrivals == 0:
            return None
        return self.rejections / self.arrivals

    # -- the self-model -------------------------------------------------
    def self_model(self):
        """The analytic M/M/c/K of this server at its measured rates.

        Returns the :class:`~repro.queueing.metrics.QueueMetrics`, or
        None while either rate is still unmeasurable.
        """
        from ..queueing import MMCKQueue

        arrival = self.arrival_rate()
        service = self.service_rate()
        if arrival is None or service is None or arrival <= 0.0:
            return None
        return MMCKQueue(
            arrival_rate=arrival,
            service_rate=service,
            servers=self.slots,
            capacity=self.capacity,
        ).metrics()

    def report(self, confidence: float = 0.95) -> dict:
        """The full ``GET /v1/self`` payload.

        ``observed`` is raw counting, ``measured`` the rate estimates,
        ``model`` the analytic M/M/c/K evaluated at those estimates, and
        ``cross_check`` compares the predicted blocking probability with
        the Wilson interval around the observed rejection ratio.
        """
        payload = {
            "config": {"slots": self.slots, "capacity": self.capacity},
            "observed": {
                "arrivals": self.arrivals,
                "accepted": self.accepted,
                "rejected": self.rejections,
                "completed": self.completed,
                "in_system": self._in_system,
                "rejection_ratio": self.rejection_ratio(),
                "window_seconds": self.observation_seconds(),
            },
            "measured": None,
            "model": None,
            "cross_check": None,
        }
        arrival = self.arrival_rate()
        service = self.service_rate()
        if arrival is not None or service is not None:
            payload["measured"] = {
                "arrival_rate": arrival,
                "service_rate": service,
                "mean_service_seconds": (
                    self.service_seconds / self.completed
                    if self.completed
                    else None
                ),
                "offered_load": (
                    arrival / service
                    if arrival is not None and service is not None
                    else None
                ),
            }
        metrics = self.self_model()
        if metrics is not None:
            payload["model"] = {
                "blocking_probability": metrics.blocking_probability,
                "availability": 1.0 - metrics.blocking_probability,
                "utilization": metrics.utilization,
                "mean_number_in_system": metrics.mean_number_in_system,
                "mean_response_seconds": metrics.mean_response_time,
                "throughput": metrics.throughput,
            }
            if self.arrivals >= 1:
                from ..measurement import availability_confidence_interval

                low, high = availability_confidence_interval(
                    self.rejections, self.arrivals, confidence=confidence
                )
                predicted = metrics.blocking_probability
                payload["cross_check"] = {
                    "predicted_blocking": predicted,
                    "observed_rejection_ratio": self.rejection_ratio(),
                    "confidence": confidence,
                    "rejection_ci": [low, high],
                    "within_ci": bool(low <= predicted <= high),
                }
        return payload
