"""Job kinds: spec validation and execution.

Each job kind maps a JSON spec (the POST body) onto one of the
library's canonical workloads from :mod:`repro.workloads`:

``sweep``
    A Fig. 11/12 sensitivity grid; the result's ``text`` is
    byte-identical to ``repro sweep`` stdout for the same flags.
``policies``
    The client-policy comparison; ``text`` matches ``repro policies``.
``campaign``
    A fault-injection campaign; ``text`` matches ``repro inject``.
``cloud``
    The cloud deployment comparison; ``text`` matches ``repro cloud``.
``probe``
    A synthetic job that holds a worker slot for ``hold`` seconds —
    traffic with *known* (exponential, if the client draws them so)
    service times, used to exercise the admission controller's
    M/M/c/K self-model under saturation.

The engine-backed kinds (``sweep``/``policies``/``cloud``) accept an
optional ``"profile": true`` spec key: the job runs under an explicit
:class:`~repro.obs.PerfRecorder` and the result carries a ``profile``
document (attribution report, kernel accounting, collapsed/speedscope
flamegraph) served at ``GET /v1/jobs/<id>/profile``.

Specs are validated eagerly at submission time through the repo's
:mod:`repro._validation` helpers — a bad spec is a 400 before the job
ever enters the queue — and execution takes the engine's standard
cooperation points: a :class:`~repro.runtime.CancellationToken` checked
between cells and a heartbeat callback for progress events.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from .._validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_positive_int,
)
from ..errors import ValidationError
from .. import workloads

__all__ = ["JOB_KINDS", "parse_spec", "execute_job"]

#: Longest accepted probe hold, seconds (probes are test traffic).
MAX_PROBE_HOLD = 60.0


def _check_keys(spec: dict, allowed: frozenset, kind: str) -> None:
    unknown = sorted(set(spec) - allowed)
    if unknown:
        raise ValidationError(
            f"unknown {kind} spec key(s) {unknown}; allowed: "
            f"{sorted(allowed)}"
        )


def _check_profile(spec: dict, kind: str) -> bool:
    """The optional ``profile`` spec key (performance attribution)."""
    profile = spec.get("profile", False)
    if not isinstance(profile, bool):
        raise ValidationError(
            f"{kind} spec key 'profile' must be a boolean, got "
            f"{profile!r}"
        )
    return profile


def _parse_sweep(spec: dict) -> dict:
    _check_keys(
        spec,
        frozenset({"figure", "arrival_rate", "servers_max", "workers",
                   "profile"}),
        "sweep",
    )
    figure = str(spec.get("figure", "11"))
    if figure not in ("11", "12"):
        raise ValidationError(
            f"figure must be '11' or '12', got {figure!r}"
        )
    return {
        "figure": figure,
        "arrival_rate": check_positive(
            spec.get("arrival_rate", 100.0), "arrival_rate"
        ),
        "servers_max": check_positive_int(
            spec.get("servers_max", 10), "servers_max"
        ),
        "workers": check_positive_int(spec.get("workers", 1), "workers"),
        "profile": _check_profile(spec, "sweep"),
    }


def _parse_policies(spec: dict) -> dict:
    _check_keys(
        spec,
        frozenset({"arrival_rate", "service_rate", "servers", "buffer",
                   "workers", "profile"}),
        "policies",
    )
    return {
        "arrival_rate": check_positive(
            spec.get("arrival_rate", 100.0), "arrival_rate"
        ),
        "service_rate": check_positive(
            spec.get("service_rate", 100.0), "service_rate"
        ),
        "servers": check_positive_int(spec.get("servers", 4), "servers"),
        "buffer": check_positive_int(spec.get("buffer", 10), "buffer"),
        "workers": check_positive_int(spec.get("workers", 1), "workers"),
        "profile": _check_profile(spec, "policies"),
    }


def _parse_campaign(spec: dict) -> dict:
    _check_keys(
        spec,
        frozenset({"scenario", "architecture", "user_class", "horizon",
                   "replications", "seed", "workers"}),
        "campaign",
    )
    scenario = str(spec.get("scenario", "null"))
    if scenario not in workloads.FAULT_SCENARIOS:
        raise ValidationError(
            f"scenario must be one of {sorted(workloads.FAULT_SCENARIOS)}, "
            f"got {scenario!r}"
        )
    architecture = str(spec.get("architecture", "redundant"))
    if architecture not in ("basic", "redundant"):
        raise ValidationError(
            f"architecture must be 'basic' or 'redundant', "
            f"got {architecture!r}"
        )
    user_class = str(spec.get("user_class", "both"))
    if user_class not in ("A", "B", "both"):
        raise ValidationError(
            f"user_class must be 'A', 'B', or 'both', got {user_class!r}"
        )
    seed = spec.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ValidationError(f"seed must be an integer, got {seed!r}")
    return {
        "scenario": scenario,
        "architecture": architecture,
        "user_class": user_class,
        "horizon": check_positive(spec.get("horizon", 100.0), "horizon"),
        "replications": check_positive_int(
            spec.get("replications", 4), "replications"
        ),
        "seed": seed,
        "workers": check_positive_int(spec.get("workers", 1), "workers"),
    }


def _parse_cloud(spec: dict) -> dict:
    _check_keys(
        spec,
        frozenset({"arrival_rate", "service_rate", "zone_availability",
                   "workers", "profile"}),
        "cloud",
    )
    zone = check_positive(
        spec.get("zone_availability", 0.9995), "zone_availability"
    )
    check_in_range(zone, 0.0, 1.0, "zone_availability")
    return {
        "arrival_rate": check_positive(
            spec.get("arrival_rate", 100.0), "arrival_rate"
        ),
        "service_rate": check_positive(
            spec.get("service_rate", 100.0), "service_rate"
        ),
        "zone_availability": zone,
        "workers": check_positive_int(spec.get("workers", 1), "workers"),
        "profile": _check_profile(spec, "cloud"),
    }


def _parse_probe(spec: dict) -> dict:
    _check_keys(spec, frozenset({"hold"}), "probe")
    hold = check_non_negative(spec.get("hold", 0.0), "hold")
    check_in_range(hold, 0.0, MAX_PROBE_HOLD, "hold")
    return {"hold": hold}


#: kind -> spec parser; the route table is derived from this mapping.
JOB_KINDS: Dict[str, Callable[[dict], dict]] = {
    "sweep": _parse_sweep,
    "policies": _parse_policies,
    "campaign": _parse_campaign,
    "cloud": _parse_cloud,
    "probe": _parse_probe,
}


def parse_spec(kind: str, spec: dict) -> dict:
    """Validate *spec* for *kind*; returns the normalized spec."""
    try:
        parser = JOB_KINDS[kind]
    except KeyError:
        raise ValidationError(
            f"unknown job kind {kind!r}; expected one of "
            f"{sorted(JOB_KINDS)}"
        ) from None
    if not isinstance(spec, dict):
        raise ValidationError(
            f"{kind} spec must be a JSON object, got "
            f"{type(spec).__name__}"
        )
    return parser(spec)


def _engine(spec: dict, token, progress, metrics, perf=None):
    from ..engine import EvaluationEngine

    return EvaluationEngine(
        workers=spec["workers"],
        cancellation=token,
        heartbeat=progress,
        metrics=metrics,
        perf=perf,
    )


def _job_recorder(spec: dict):
    """A :class:`~repro.obs.PerfRecorder` when the spec asks for one.

    Server jobs run on concurrent worker threads, so the recorder is
    passed to the engine *explicitly* — the ambient activation used by
    the CLI is process-global and would mix concurrent jobs' timelines.
    A serial job therefore gets engine attribution but no in-process
    kernel accounting (pool workers still activate the recorder
    ambiently inside their own process and ship accounting back).
    """
    if not spec.get("profile"):
        return None
    from ..obs import PerfRecorder

    return PerfRecorder()


def _profile_document(recorder) -> dict:
    """The JSON-safe profile attachment for a job result."""
    from ..obs import format_attribution, format_kernel_accounting

    return {
        "attribution": recorder.to_dict(),
        "text": (
            format_attribution(recorder.batches)
            + "\n\n"
            + format_kernel_accounting(recorder.kernel)
        ),
        "collapsed": recorder.profiler.collapsed(),
        "speedscope": recorder.profiler.speedscope(),
    }


def execute_job(
    kind: str,
    spec: dict,
    token=None,
    progress=None,
    metrics=None,
) -> dict:
    """Run one validated job; returns the JSON-safe result document.

    Runs on a worker thread of the server — everything here is the
    synchronous library underneath, with *token* as the cooperative
    cancellation handle and *progress* a
    :data:`~repro.runtime.heartbeat.HeartbeatCallback`.
    """
    if kind == "probe":
        return _execute_probe(spec, token)
    if kind == "sweep":
        recorder = _job_recorder(spec)
        grid = workloads.run_fig_sweep(
            spec["figure"],
            spec["arrival_rate"],
            spec["servers_max"],
            engine=_engine(spec, token, progress, metrics, perf=recorder),
        )
        text = workloads.fig_sweep_text(
            spec["figure"], spec["arrival_rate"], spec["servers_max"], grid
        )
        result = {
            "text": text,
            "series": {
                f"{lam:g}": list(grid.row(lam).outputs)
                for lam in workloads.SWEEP_FAILURE_RATES
            },
            "cells": len(workloads.SWEEP_FAILURE_RATES) * spec["servers_max"],
        }
        if recorder is not None:
            result["profile"] = _profile_document(recorder)
        return result
    if kind == "policies":
        recorder = _job_recorder(spec)
        report = workloads.run_policy_comparison(
            arrival_rate=spec["arrival_rate"],
            service_rate=spec["service_rate"],
            servers=spec["servers"],
            buffer=spec["buffer"],
            engine=_engine(spec, token, progress, metrics, perf=recorder),
        )
        best = report.best
        result = {
            "text": workloads.policy_comparison_text(report),
            "best": {
                "policy": best.policy,
                "mean_availability": best.mean_availability,
                "worst_availability": best.worst_availability,
                "worst_scenario": best.worst_scenario,
            },
            "cells": len(report.cells),
        }
        if recorder is not None:
            result["profile"] = _profile_document(recorder)
        return result
    if kind == "cloud":
        recorder = _job_recorder(spec)
        report = workloads.run_cloud_comparison(
            arrival_rate=spec["arrival_rate"],
            service_rate=spec["service_rate"],
            zone_availability=spec["zone_availability"],
            engine=_engine(spec, token, progress, metrics, perf=recorder),
        )
        best = report.best
        result = {
            "text": workloads.cloud_comparison_text(
                report, spec["arrival_rate"], spec["zone_availability"]
            ),
            "best": {
                "deployment": best.scenario,
                "zones": best.zones,
                "mean_availability": best.mean,
            },
            "ranking": [cell.scenario for cell in report.ranking],
            "cells": len(report.cells),
        }
        if recorder is not None:
            result["profile"] = _profile_document(recorder)
        return result
    if kind == "campaign":
        results = workloads.run_fault_campaigns(
            spec["scenario"],
            architecture=spec["architecture"],
            user_class=spec["user_class"],
            horizon=spec["horizon"],
            replications=spec["replications"],
            seed=spec["seed"],
            workers=spec["workers"],
            cancellation=token,
            heartbeat=progress,
        )
        text, calibrated = workloads.campaign_text(
            results,
            spec["scenario"],
            spec["horizon"],
            spec["replications"],
            spec["seed"],
        )
        return {
            "text": text,
            "calibrated": calibrated,
            "campaigns": [
                {
                    "user_class": r.user_class,
                    "scenario": r.scenario,
                    "analytic_availability": r.analytic_availability,
                    "mean_availability": r.mean_availability,
                    "stderr": r.stderr,
                }
                for r in results
            ],
        }
    raise ValidationError(f"unknown job kind {kind!r}")


def _execute_probe(spec: dict, token) -> dict:
    """Hold a worker slot for ``hold`` seconds, cancellably.

    Sleeps in short slices polling the token, so ``DELETE`` on a
    running probe takes effect within ~20 ms rather than after the
    full hold.
    """
    deadline = time.monotonic() + spec["hold"]
    while True:
        if token is not None:
            token.check()
        remaining = deadline - time.monotonic()
        if remaining <= 0.0:
            break
        time.sleep(min(0.02, remaining))
    return {"held_seconds": spec["hold"]}
