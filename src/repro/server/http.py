"""Minimal HTTP/1.1 + SSE on :mod:`asyncio` streams.

The server deliberately speaks a small, strict subset of HTTP/1.1 with
no third-party dependencies, so CI stays hermetic and the whole wire
layer fits in one reviewable module:

* request line + headers + ``Content-Length`` bodies (no chunked
  uploads, no continuation lines, no trailers);
* ``keep-alive`` connection reuse (the default in HTTP/1.1), honoring
  ``Connection: close``;
* Server-Sent Events responses for the ``/v1/events`` stream.

Every protocol violation raises :class:`HttpProtocolError` carrying the
status code the connection handler should answer with before closing.
Hard limits bound each request: header block, header count, and body
size — a malformed or hostile peer cannot make the server buffer an
unbounded request.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..errors import ServerError

__all__ = [
    "HttpProtocolError",
    "Request",
    "Response",
    "json_response",
    "read_request",
    "write_response",
    "SSEStream",
    "MAX_HEADER_BYTES",
    "MAX_HEADERS",
    "MAX_BODY_BYTES",
]

#: Longest accepted request line or single header line, bytes.
MAX_HEADER_BYTES = 16384
#: Most headers accepted on one request.
MAX_HEADERS = 100
#: Largest accepted request body, bytes (model specs are small).
MAX_BODY_BYTES = 1 << 20

REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpProtocolError(ServerError):
    """A request violated the supported HTTP subset.

    ``status`` is the response code the connection handler answers with
    before closing the connection (the stream position is unknown after
    a parse failure, so the connection is never reused).
    """

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    path: str
    query: str
    headers: Dict[str, str]
    body: bytes
    #: Path parameters captured by the router (e.g. the job id).
    params: Dict[str, str] = field(default_factory=dict)

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> dict:
        """The body as a JSON object (empty body = empty object)."""
        if not self.body:
            return {}
        try:
            document = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpProtocolError(
                400, f"request body is not valid JSON: {exc}"
            ) from exc
        if not isinstance(document, dict):
            raise HttpProtocolError(
                400,
                "request body must be a JSON object, got "
                f"{type(document).__name__}",
            )
        return document


@dataclass(frozen=True)
class Response:
    """One HTTP response to be serialized by :func:`write_response`."""

    status: int
    body: bytes = b""
    content_type: str = "application/json; charset=utf-8"
    headers: Tuple[Tuple[str, str], ...] = ()


def json_response(status: int, payload) -> Response:
    """A JSON response (newline-terminated, stable for curl and tests)."""
    return Response(
        status=status,
        body=(json.dumps(payload) + "\n").encode("utf-8"),
    )


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as exc:
        raise HttpProtocolError(400, "header line too long") from exc
    if len(line) > MAX_HEADER_BYTES:
        raise HttpProtocolError(400, "header line too long")
    return line


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request; None when the peer closed between requests."""
    line = await _read_line(reader)
    if not line:
        return None  # clean EOF before a new request
    parts = line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3:
        raise HttpProtocolError(400, f"malformed request line: {line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HttpProtocolError(400, f"unsupported protocol {version!r}")

    headers: Dict[str, str] = {}
    while True:
        raw = await _read_line(reader)
        if not raw or raw in (b"\r\n", b"\n"):
            break
        if len(headers) >= MAX_HEADERS:
            raise HttpProtocolError(400, "too many headers")
        name, separator, value = raw.decode("latin-1").partition(":")
        if not separator:
            raise HttpProtocolError(400, f"malformed header line: {raw!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise HttpProtocolError(400, "chunked request bodies are unsupported")
    length_field = headers.get("content-length", "0")
    try:
        length = int(length_field)
    except ValueError as exc:
        raise HttpProtocolError(
            400, f"invalid Content-Length {length_field!r}"
        ) from exc
    if length < 0:
        raise HttpProtocolError(400, f"invalid Content-Length {length}")
    if length > MAX_BODY_BYTES:
        raise HttpProtocolError(
            413, f"request body of {length} bytes exceeds {MAX_BODY_BYTES}"
        )
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpProtocolError(
                400, "connection closed mid-body"
            ) from exc

    path, _, query = target.partition("?")
    return Request(
        method=method.upper(),
        target=target,
        path=path,
        query=query,
        headers=headers,
        body=body,
    )


def _head(status: int, headers: Sequence[Tuple[str, str]]) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def write_response(
    writer: asyncio.StreamWriter,
    response: Response,
    keep_alive: bool = True,
) -> None:
    """Serialize *response* with explicit framing headers."""
    headers = [
        ("content-type", response.content_type),
        ("content-length", str(len(response.body))),
        ("connection", "keep-alive" if keep_alive else "close"),
        *response.headers,
    ]
    writer.write(_head(response.status, headers) + response.body)
    await writer.drain()


class SSEStream:
    """A Server-Sent Events response on an open connection.

    The stream claims the connection (``Connection: close``): SSE never
    ends with a length-delimited body, so the connection cannot be
    reused afterwards.
    """

    def __init__(self, writer: asyncio.StreamWriter):
        self._writer = writer

    async def start(self) -> None:
        self._writer.write(_head(200, [
            ("content-type", "text/event-stream"),
            ("cache-control", "no-cache"),
            ("connection", "close"),
        ]))
        await self._writer.drain()

    async def send(self, event: str, data) -> None:
        """Emit one event with a JSON payload."""
        frame = f"event: {event}\ndata: {json.dumps(data)}\n\n"
        self._writer.write(frame.encode("utf-8"))
        await self._writer.drain()
