"""Job lifecycle: bounded queue, worker slots, cancellation, restart.

:class:`JobManager` owns every job the server has accepted:

* admission is delegated to the
  :class:`~repro.server.admission.AdmissionController` (the M/M/c/K
  self-model) — a rejected submission never creates a job;
* accepted jobs wait on one :class:`asyncio.Queue` drained by ``c``
  worker tasks, each running the synchronous evaluation on a thread
  via :func:`asyncio.to_thread`;
* cancellation is cooperative through the job's own
  :class:`~repro.runtime.CancellationToken`: cancelling a *queued* job
  resolves it immediately, cancelling a *running* job requests a stop
  at the evaluation's next cooperation point, and cancelling a
  *terminal* job is a no-op that returns the settled status;
* with a journal, every submission and every terminal transition is a
  durable record — exactly one ``job_result`` per job, guarded by the
  terminal-state check — so a restarted server restores finished
  results and re-enqueues interrupted jobs.

Concurrency model: all state mutation happens on the event-loop thread
(submissions, cancellations, finalization in the worker coroutines);
the evaluation threads touch only their own job's work and a private
per-job metrics registry that is merged into the shared one back on
the loop thread.  Progress heartbeats cross from the evaluation thread
via ``loop.call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import CancelledError, ReproError
from .admission import AdmissionController

__all__ = ["Job", "JobManager", "TERMINAL_STATUSES"]

#: Statuses a job can never leave.
TERMINAL_STATUSES = ("done", "failed", "cancelled")


@dataclass
class Job:
    """One accepted job and its lifecycle state."""

    id: str
    kind: str
    spec: dict
    status: str = "queued"
    submitted: float = 0.0
    started: Optional[float] = None
    finished: Optional[float] = None
    result: Optional[dict] = None
    error: Optional[str] = None
    cancel_requested: bool = False
    restored: bool = False
    token: Any = None

    def to_dict(self, include_result: bool = True) -> dict:
        document = {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "spec": self.spec,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "cancel_requested": self.cancel_requested,
            "error": self.error,
        }
        if include_result:
            result = self.result
            # The profile document (flamegraph + attribution) can dwarf
            # the rest of the result; the job document carries a link
            # and GET /v1/jobs/{id}/profile serves the real thing.
            if isinstance(result, dict) and "profile" in result:
                result = dict(result)
                result["profile"] = {"href": f"/v1/jobs/{self.id}/profile"}
            document["result"] = result
        return document


class JobManager:
    """The server's job table, queue, and worker pool.

    Parameters
    ----------
    runner:
        ``runner(kind, spec, token, progress, metrics) -> dict`` — the
        synchronous evaluation, run on a worker thread.
    slots:
        Concurrent evaluations ``c``.
    capacity:
        Admission capacity ``K`` (running + queued).
    journal:
        Optional path; submissions/results are journaled and a restart
        against the same path restores them.
    metrics:
        Optional shared :class:`~repro.obs.MetricsRegistry` for the
        ``server_*`` families and merged per-job engine metrics.
    """

    def __init__(
        self,
        runner: Callable[..., dict],
        slots: int,
        capacity: int,
        journal=None,
        metrics=None,
        clock=time.monotonic,
    ):
        self.admission = AdmissionController(slots, capacity, clock)
        self._runner = runner
        self._metrics = metrics
        self._clock = clock
        self._jobs: Dict[str, Job] = {}
        self._counter = 0
        self._queue: Optional[asyncio.Queue] = None
        self._workers: List[asyncio.Task] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._subscribers: List[asyncio.Queue] = []
        self._pending_restore: List[str] = []
        self._journal = None
        if journal is not None:
            from ..runtime import Journal

            # Opening repairs any torn tail; then restore the durable
            # records and continue appending to the same file.
            self._journal = Journal(journal)
            self._restore(journal)

    # -- journal restore ------------------------------------------------
    def _restore(self, path) -> None:
        from ..runtime import read_journal

        for record in read_journal(path, missing_ok=True):
            kind = record.get("kind")
            if kind == "job_submitted":
                job = Job(
                    id=record["id"],
                    kind=record["job_kind"],
                    spec=record["spec"],
                    submitted=record["submitted"],
                    restored=True,
                    token=self._new_token(),
                )
                self._jobs[job.id] = job
                suffix = job.id.rsplit("-", 1)[-1]
                if suffix.isdigit():
                    self._counter = max(self._counter, int(suffix))
            elif kind == "job_result" and record.get("id") in self._jobs:
                job = self._jobs[record["id"]]
                job.status = record["status"]
                job.result = record.get("result")
                job.error = record.get("error")
        for job in self._jobs.values():
            if job.status not in TERMINAL_STATUSES:
                # Interrupted last time: occupy a slot again and re-run.
                self.admission.occupy()
                self._pending_restore.append(job.id)

    @staticmethod
    def _new_token():
        from ..runtime import CancellationToken

        return CancellationToken()

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Spawn the worker tasks and re-enqueue restored jobs."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        for job_id in self._pending_restore:
            self._queue.put_nowait(job_id)
        self._pending_restore = []
        self._set_depth()
        self._workers = [
            asyncio.create_task(
                self._worker(), name=f"repro-server-worker-{index}"
            )
            for index in range(self.admission.slots)
        ]

    async def stop(self) -> None:
        """Stop the workers; interrupted jobs stay journal-resumable.

        Running evaluations are asked to stop through their tokens (so
        their threads unwind at the next cooperation point), but no
        terminal record is written for them — a restart against the
        same journal re-runs them.
        """
        for job in self._jobs.values():
            if job.status == "running":
                job.token.cancel("server shutdown")
        for task in self._workers:
            task.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._journal is not None:
            self._journal.close()

    # -- submission and cancellation (event-loop thread only) -----------
    def submit(self, kind: str, spec: dict) -> Optional[Job]:
        """Admit and enqueue a job; None when the system is full (503)."""
        if not self.admission.try_admit():
            if self._metrics is not None:
                self._metrics.counter(
                    "server_admission_rejections",
                    help=(
                        "Submissions rejected by the M/M/c/K admission "
                        "controller (503s)."
                    ),
                    kind=kind,
                ).inc()
            self._emit("rejected", {
                "kind": kind,
                "in_system": self.admission.in_system,
                "capacity": self.admission.capacity,
            })
            return None
        self._counter += 1
        job = Job(
            id=f"job-{self._counter:06d}",
            kind=kind,
            spec=spec,
            submitted=time.time(),
            token=self._new_token(),
        )
        self._jobs[job.id] = job
        if self._journal is not None:
            self._journal.append(
                "job_submitted",
                id=job.id,
                job_kind=job.kind,
                spec=job.spec,
                submitted=job.submitted,
            )
        assert self._queue is not None, "JobManager.start() was not awaited"
        self._queue.put_nowait(job.id)
        self._emit("job", job.to_dict(include_result=False))
        self._set_depth()
        return job

    def get(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"no such job: {job_id}") from None

    def jobs(self) -> List[Job]:
        """All known jobs, in submission order."""
        return list(self._jobs.values())

    def cancel(self, job_id: str) -> Job:
        """Request cancellation; returns the job in its settled state.

        Queued jobs resolve to ``cancelled`` immediately; running jobs
        get a cooperative stop request; terminal jobs are untouched
        (cancelling twice, or after completion, is a no-op).
        """
        job = self.get(job_id)
        if job.status in TERMINAL_STATUSES:
            return job
        job.cancel_requested = True
        if job.status == "queued":
            job.token.cancel("cancelled while queued")
            self.admission.release()
            self._finish(job, "cancelled", error="cancelled while queued")
            return job
        job.token.cancel(f"job {job.id} cancelled via DELETE")
        self._emit("job", job.to_dict(include_result=False))
        return job

    # -- the worker loop ------------------------------------------------
    async def _worker(self) -> None:
        assert self._queue is not None
        while True:
            job_id = await self._queue.get()
            job = self._jobs.get(job_id)
            if job is None or job.status != "queued":
                continue  # cancelled while queued; already settled
            job.status = "running"
            job.started = time.time()
            self._emit("job", job.to_dict(include_result=False))
            started = self._clock()
            outcome, payload = await asyncio.to_thread(self._run, job)
            self.admission.complete(self._clock() - started)
            if outcome == "done":
                result, job_metrics = payload
                if self._metrics is not None and job_metrics is not None:
                    self._metrics.merge(job_metrics)
                self._finish(job, "done", result=result)
            elif outcome == "cancelled":
                self._finish(job, "cancelled", error=payload)
            else:
                self._finish(job, "failed", error=payload)

    def _run(self, job: Job):
        """The thread half: run the evaluation, never raise."""
        from ..obs import MetricsRegistry

        job_metrics = MetricsRegistry() if self._metrics is not None else None
        try:
            result = self._runner(
                job.kind,
                job.spec,
                job.token,
                self._progress_callback(job),
                job_metrics,
            )
            return ("done", (result, job_metrics))
        except CancelledError as exc:
            return ("cancelled", str(exc))
        except ReproError as exc:
            return ("failed", str(exc))
        except Exception as exc:  # job bugs must not kill the worker
            return ("failed", f"{type(exc).__name__}: {exc}")

    def _finish(
        self,
        job: Job,
        status: str,
        result: Optional[dict] = None,
        error: Optional[str] = None,
    ) -> None:
        if job.status in TERMINAL_STATUSES:
            return  # exactly one terminal transition (and journal record)
        job.status = status
        job.finished = time.time()
        job.result = result
        job.error = error
        if self._journal is not None:
            self._journal.append(
                "job_result",
                id=job.id,
                status=status,
                result=result,
                error=error,
            )
        if self._metrics is not None:
            self._metrics.counter(
                "server_jobs",
                help="Jobs resolved, by kind and terminal status.",
                kind=job.kind,
                status=status,
            ).inc()
        self._emit("job", job.to_dict(include_result=False))
        self._set_depth()

    # -- events ---------------------------------------------------------
    def subscribe(self) -> asyncio.Queue:
        """A queue of ``(event, data)`` pairs for one SSE consumer."""
        queue: asyncio.Queue = asyncio.Queue(maxsize=256)
        self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        if queue in self._subscribers:
            self._subscribers.remove(queue)

    def _emit(self, event: str, data: dict) -> None:
        for queue in self._subscribers:
            try:
                queue.put_nowait((event, data))
            except asyncio.QueueFull:
                pass  # a stalled consumer loses events, not the server

    def _progress_callback(self, job: Job):
        """A heartbeat callback safe to invoke from the worker thread."""
        loop = self._loop

        def progress(event) -> None:
            data = {
                "job": job.id,
                "phase": event.phase,
                "completed": event.completed,
                "total": event.total,
            }
            try:
                loop.call_soon_threadsafe(self._emit, "progress", data)
            except RuntimeError:
                pass  # loop already closed (shutdown race)

        return progress

    def _set_depth(self) -> None:
        if self._metrics is not None:
            self._metrics.gauge(
                "server_queue_depth",
                help="Jobs in the system (running + queued).",
            ).set(self.admission.in_system)
