"""A thin stdlib client for the evaluation server.

:class:`ServerClient` wraps :mod:`http.client` — no dependencies, one
connection per call (simple and thread-safe), JSON in/out.  It is the
client the tests, the example, the benchmark, and the CI smoke job
drive the server with; anything it can do, plain ``curl`` can do too
(see ``docs/SERVER.md``).

Transport failures and non-2xx responses raise
:class:`~repro.errors.ServerError`; admission rejections (503) can be
surfaced as data instead via ``raise_for_reject=False``, which the
saturation tests use to count 503s.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Iterator, List, Optional, Tuple

from ..errors import ServerError

__all__ = ["ServerClient"]


class ServerClient:
    """Synchronous client for one :class:`~repro.server.ReproServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8033,
        timeout: float = 60.0,
    ):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)

    # -- transport ------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> Tuple[int, bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        except OSError as exc:
            raise ServerError(
                f"cannot reach repro server at {self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            connection.close()

    def _json(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        ok: Tuple[int, ...] = (200, 202),
        raise_for_reject: bool = True,
    ) -> dict:
        status, raw = self._request(method, path, payload)
        try:
            document = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServerError(
                f"{method} {path} returned {status} with a non-JSON body"
            ) from exc
        if status in ok:
            return document
        if status == 503 and not raise_for_reject:
            document.setdefault("rejected", True)
            document["http_status"] = status
            return document
        detail = document.get("error", repr(raw[:200]))
        raise ServerError(f"{method} {path} -> {status}: {detail}")

    # -- submissions ----------------------------------------------------
    def submit(
        self, kind: str, spec: Optional[dict] = None,
        raise_for_reject: bool = True,
    ) -> dict:
        """Submit one job; returns the 202 job document.

        With ``raise_for_reject=False`` a 503 returns the rejection
        document (``rejected: true``) instead of raising.
        """
        routes = {
            "sweep": "/v1/sweeps",
            "policies": "/v1/policies",
            "campaign": "/v1/campaigns",
            "cloud": "/v1/clouds",
            "probe": "/v1/probes",
        }
        try:
            path = routes[kind]
        except KeyError:
            raise ServerError(
                f"unknown job kind {kind!r}; expected one of {sorted(routes)}"
            ) from None
        return self._json(
            "POST", path, spec or {}, raise_for_reject=raise_for_reject
        )

    def submit_sweep(self, **spec) -> dict:
        return self.submit("sweep", spec)

    def submit_policies(self, **spec) -> dict:
        return self.submit("policies", spec)

    def submit_campaign(self, **spec) -> dict:
        return self.submit("campaign", spec)

    def submit_cloud(self, **spec) -> dict:
        return self.submit("cloud", spec)

    def submit_probe(self, **spec) -> dict:
        return self.submit("probe", spec)

    # -- job table ------------------------------------------------------
    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> List[dict]:
        return self._json("GET", "/v1/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._json("DELETE", f"/v1/jobs/{job_id}")

    def job_profile(self, job_id: str) -> dict:
        """The performance-attribution document of a profiled job.

        404 (no ``"profile": true`` in the spec, or not finished yet)
        raises :class:`~repro.errors.ServerError`.
        """
        return self._json("GET", f"/v1/jobs/{job_id}/profile")

    def wait(
        self, job_id: str, timeout: float = 120.0, poll: float = 0.05
    ) -> dict:
        """Poll until the job settles; returns the full job document."""
        deadline = time.monotonic() + timeout
        while True:
            document = self.job(job_id)
            if document["status"] in ("done", "failed", "cancelled"):
                return document
            if time.monotonic() >= deadline:
                raise ServerError(
                    f"job {job_id} did not settle within {timeout:g} s "
                    f"(last status: {document['status']!r})"
                )
            time.sleep(poll)

    def run(self, kind: str, spec: Optional[dict] = None, **wait_kwargs):
        """Submit and wait; raises on a failed or cancelled job."""
        job = self.submit(kind, spec)
        done = self.wait(job["id"], **wait_kwargs)
        if done["status"] != "done":
            raise ServerError(
                f"job {done['id']} ended {done['status']}: {done['error']}"
            )
        return done

    def sweep_text(self, **spec) -> str:
        """Run a sweep job and return its rendered grid text."""
        return self.run("sweep", spec)["result"]["text"]

    def cloud_text(self, **spec) -> str:
        """Run a cloud comparison job and return its rendered text."""
        return self.run("cloud", spec)["result"]["text"]

    # -- introspection --------------------------------------------------
    def self_report(self) -> dict:
        return self._json("GET", "/v1/self")

    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def readyz(self) -> bool:
        return self._json("GET", "/readyz", ok=(200, 503)).get(
            "ready", False
        )

    def metrics_text(self) -> str:
        status, raw = self._request("GET", "/metrics")
        if status != 200:
            raise ServerError(f"GET /metrics -> {status}")
        return raw.decode("utf-8")

    # -- events (SSE) ---------------------------------------------------
    def events(
        self, count: int = 1, timeout: float = 10.0
    ) -> List[Tuple[str, dict]]:
        """Collect *count* events from ``/v1/events`` (including hello).

        Returns up to *count* ``(event, data)`` pairs; stops early when
        *timeout* elapses between events.
        """
        collected: List[Tuple[str, dict]] = []
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=timeout
            ) as sock:
                sock.sendall(
                    b"GET /v1/events HTTP/1.1\r\n"
                    b"host: repro\r\naccept: text/event-stream\r\n\r\n"
                )
                for event in _parse_sse(sock, timeout):
                    collected.append(event)
                    if len(collected) >= count:
                        break
        except OSError as exc:
            if not collected:
                raise ServerError(
                    f"cannot stream events from {self.host}:{self.port}: "
                    f"{exc}"
                ) from exc
        return collected


def _parse_sse(sock, timeout: float) -> Iterator[Tuple[str, dict]]:
    """Yield ``(event, data)`` pairs from a raw SSE socket."""
    handle = sock.makefile("rb")
    # Skip the response head.
    while True:
        line = handle.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
    event: Optional[str] = None
    try:
        while True:
            line = handle.readline()
            if not line:
                return
            text = line.decode("utf-8").rstrip("\r\n")
            if text.startswith("event: "):
                event = text[len("event: "):]
            elif text.startswith("data: ") and event is not None:
                yield event, json.loads(text[len("data: "):])
                event = None
    except (OSError, ValueError):
        return
