"""Interaction diagrams of the TA functions (Figs. 3-6 of the paper).

Service names used throughout the TA model:

================  =============================================
``"web"``         the web service (server farm + queueing)
``"application"`` the application service
``"database"``    the database service
``"flight"``      flight reservation (1-of-N_F external systems)
``"hotel"``       hotel reservation (1-of-N_H external systems)
``"car"``         car rental (1-of-N_C external systems)
``"payment"``     the external payment system
``"net"``         the TA's Internet connectivity
``"lan"``         the internal LAN
================  =============================================
"""

from __future__ import annotations

from ..core import InteractionDiagram
from .parameters import TAParameters

__all__ = [
    "browse_diagram",
    "search_diagram",
    "book_diagram",
    "pay_diagram",
    "WEB",
    "APPLICATION",
    "DATABASE",
    "FLIGHT",
    "HOTEL",
    "CAR",
    "PAYMENT",
    "NET",
    "LAN",
]

WEB = "web"
APPLICATION = "application"
DATABASE = "database"
FLIGHT = "flight"
HOTEL = "hotel"
CAR = "car"
PAYMENT = "payment"
NET = "net"
LAN = "lan"


def browse_diagram(params: TAParameters) -> InteractionDiagram:
    """Fig. 3: the Browse function's three execution scenarios.

    * cache hit (probability ``q23``): web server only;
    * dynamic page (``q24 * q45``): web + application servers;
    * database-backed page (``q24 * q47``): web + application + database.
    """
    d = InteractionDiagram("browse")
    d.add_node("request", services=[WEB])
    d.add_node("cache-hit", services=[WEB])
    d.add_node("app-processing", services=[APPLICATION])
    d.add_node("dynamic-page", services=[WEB])
    d.add_node("db-query", services=[DATABASE])
    d.add_node("db-page", services=[WEB])
    d.add_edge("Begin", "request")
    d.add_edge("request", "cache-hit", params.q_cache)
    d.add_edge("request", "app-processing", params.q_application)
    d.add_edge("cache-hit", "End")
    d.add_edge("app-processing", "dynamic-page", params.q_app_direct)
    d.add_edge("app-processing", "db-query", params.q_app_database)
    d.add_edge("dynamic-page", "End")
    d.add_edge("db-query", "db-page")
    d.add_edge("db-page", "End")
    return d


def search_diagram(params: TAParameters) -> InteractionDiagram:
    """Fig. 4: Search — web, application, database, then the AND-split
    query to the flight, hotel and car reservation services.

    The paper's node 3 (input-format exception returned to the user) is
    a successful *service* outcome that touches only the web server; its
    probability is not quantified in the paper, so the diagram models
    the nominal path (the exception path would only raise the Search
    availability by routing around the backend).
    """
    d = InteractionDiagram("search")
    d.add_node("validate", services=[WEB])
    d.add_node("query-db", services=[APPLICATION, DATABASE])
    d.add_node("fan-out", services=[FLIGHT, HOTEL, CAR])
    d.add_node("format", services=[APPLICATION])
    d.add_node("respond", services=[WEB])
    d.add_edge("Begin", "validate")
    d.add_edge("validate", "query-db")
    d.add_edge("query-db", "fan-out")
    d.add_edge("fan-out", "format")
    d.add_edge("format", "respond")
    d.add_edge("respond", "End")
    return d


def book_diagram(params: TAParameters) -> InteractionDiagram:
    """Fig. 5: Book — same service set as Search (the paper assumes Book
    succeeds whenever Search did, using a subset of its resources)."""
    d = InteractionDiagram("book")
    d.add_node("order", services=[WEB])
    d.add_node("book-items", services=[APPLICATION, FLIGHT, HOTEL, CAR])
    d.add_node("store-refs", services=[DATABASE])
    d.add_node("confirm", services=[WEB])
    d.add_edge("Begin", "order")
    d.add_edge("order", "book-items")
    d.add_edge("book-items", "store-refs")
    d.add_edge("store-refs", "confirm")
    d.add_edge("confirm", "End")
    return d


def pay_diagram(params: TAParameters) -> InteractionDiagram:
    """Fig. 6: Pay — web, application, the external payment service, and
    the order update in the database."""
    d = InteractionDiagram("pay")
    d.add_node("payment-call", services=[WEB])
    d.add_node("check-booking", services=[APPLICATION])
    d.add_node("authorize", services=[PAYMENT])
    d.add_node("update-orders", services=[DATABASE])
    d.add_node("confirm", services=[WEB])
    d.add_edge("Begin", "payment-call")
    d.add_edge("payment-call", "check-booking")
    d.add_edge("check-booking", "authorize")
    d.add_edge("authorize", "update-orders")
    d.add_edge("update-orders", "confirm")
    d.add_edge("confirm", "End")
    return d
