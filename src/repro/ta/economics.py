"""Business-impact analysis: lost transactions and lost revenue.

Section 5.2 of the paper translates the unavailability of the
payment-reaching scenarios (category SC4) into lost transactions and
lost revenue: with a transaction rate of 100 sessions per second, class
A loses millions of payment transactions per year, class B roughly three
times more — the argument for why the operational profile matters to the
business case.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import check_non_negative, check_rate
from ..core import UserLevelResult
from .userclasses import PAY

__all__ = ["RevenueModel", "RevenueLossEstimate"]

SECONDS_PER_YEAR = 365.0 * 24.0 * 3600.0


@dataclass(frozen=True)
class RevenueLossEstimate:
    """Yearly business impact of user-perceived unavailability.

    Attributes
    ----------
    user_class:
        Name of the evaluated user class.
    payment_scenario_share:
        Share of sessions that try to reach payment (SC4 mass).
    lost_payment_sessions_per_year:
        Expected payment-reaching sessions that fail per year.
    lost_revenue_per_year:
        Lost sessions multiplied by the average revenue.
    """

    user_class: str
    payment_scenario_share: float
    lost_payment_sessions_per_year: float
    lost_revenue_per_year: float


class RevenueModel:
    """Converts availability results into yearly business impact.

    Parameters
    ----------
    session_rate:
        User sessions per second (the paper uses 100/s).
    average_revenue:
        Revenue per completed payment session (the paper uses $100).

    Examples
    --------
    >>> from repro.ta import CLASS_B, TravelAgencyModel
    >>> estimate = RevenueModel(100.0, 100.0).estimate(
    ...     TravelAgencyModel().user_availability(CLASS_B))
    >>> estimate.lost_payment_sessions_per_year > 0
    True
    """

    def __init__(self, session_rate: float, average_revenue: float):
        self.session_rate = check_rate(session_rate, "session_rate")
        self.average_revenue = check_non_negative(
            average_revenue, "average_revenue"
        )

    def sessions_per_year(self) -> float:
        """Total user sessions per year."""
        return self.session_rate * SECONDS_PER_YEAR

    def estimate(
        self, result: UserLevelResult, pay_function: str = PAY
    ) -> RevenueLossEstimate:
        """Estimate yearly lost payment sessions and revenue.

        A payment-reaching session is *lost* when any function it
        invokes is unavailable, so the loss rate of category SC4 is its
        unavailability contribution ``sum_{i in SC4} pi_i (1 - A_i)``.
        """
        share = 0.0
        loss_probability = 0.0
        for item in result.per_scenario:
            if pay_function in item.scenario.functions:
                share += item.scenario.probability
                loss_probability += item.unavailability_contribution
        lost_sessions = self.sessions_per_year() * loss_probability
        return RevenueLossEstimate(
            user_class=result.user_class,
            payment_scenario_share=share,
            lost_payment_sessions_per_year=lost_sessions,
            lost_revenue_per_year=lost_sessions * self.average_revenue,
        )
