"""Assembling the TA architectures (Figs. 7 and 8) into hierarchical models.

Both architectures share the external resources (flight/hotel/car
reservation systems and the payment system, each a black box) and the
LAN / Internet connectivity.  They differ in the internal resources:

* **basic** (Fig. 7): one dedicated host per server — a single web
  server, one application host, one database host with one disk;
* **redundant** (Fig. 8): a farm of ``NW`` load-balanced web servers,
  two application hosts, two database hosts with two mirrored disks.
"""

from __future__ import annotations

from ..availability import WebServiceModel
from ..core import HierarchicalModel
from ..errors import ValidationError
from ..rbd import parallel, series
from . import diagrams
from .diagrams import (
    APPLICATION,
    CAR,
    DATABASE,
    FLIGHT,
    HOTEL,
    LAN,
    NET,
    PAYMENT,
    WEB,
)
from .parameters import TAParameters
from .userclasses import BOOK, BROWSE, HOME, PAY, SEARCH

__all__ = ["build_travel_agency", "web_service_model", "ARCHITECTURES"]

#: Supported architecture names.
ARCHITECTURES = ("basic", "redundant")


def web_service_model(params: TAParameters, architecture: str) -> WebServiceModel:
    """The composite web-service model for an architecture.

    The basic architecture runs one web server (perfect coverage is
    irrelevant with a single server *plus* no automatic failover to
    model, matching eq. 2); the redundant architecture uses ``NW``
    servers with the configured coverage.
    """
    if architecture == "basic":
        return WebServiceModel(
            servers=1,
            arrival_rate=params.arrival_rate,
            service_rate=params.service_rate,
            buffer_capacity=params.buffer_size,
            failure_rate=params.web_failure_rate,
            repair_rate=params.web_repair_rate,
        )
    if architecture == "redundant":
        return WebServiceModel(
            servers=params.web_servers,
            arrival_rate=params.arrival_rate,
            service_rate=params.service_rate,
            buffer_capacity=params.buffer_size,
            failure_rate=params.web_failure_rate,
            repair_rate=params.web_repair_rate,
            coverage=params.web_coverage,
            reconfiguration_rate=params.web_reconfiguration_rate,
        )
    raise ValidationError(
        f"unknown architecture {architecture!r}; expected one of {ARCHITECTURES}"
    )


def build_travel_agency(
    params: TAParameters = TAParameters(),
    architecture: str = "redundant",
) -> HierarchicalModel:
    """Build the full four-level TA model.

    Parameters
    ----------
    params:
        Model parameters (defaults to the paper's values).
    architecture:
        ``"basic"`` (Fig. 7) or ``"redundant"`` (Fig. 8).

    Returns
    -------
    HierarchicalModel
        With resources, the nine services of Table 2, the five functions,
        and the ``net``/``lan`` services marked as required everywhere.

    Examples
    --------
    >>> model = build_travel_agency()
    >>> sorted(model.functions)
    ['book', 'browse', 'home', 'pay', 'search']
    """
    if architecture not in ARCHITECTURES:
        raise ValidationError(
            f"unknown architecture {architecture!r}; expected one of {ARCHITECTURES}"
        )
    model = HierarchicalModel()

    # ------------------------------------------------------------------
    # Resource level
    # ------------------------------------------------------------------
    model.add_resource("internet-link", params.internet_availability)
    model.add_resource("lan-segment", params.lan_availability)
    model.add_resource("web-farm", web_service_model(params, architecture))

    if architecture == "basic":
        model.add_resource("app-host", params.application_host_availability)
        model.add_resource("db-host", params.database_host_availability)
        model.add_resource("db-disk", params.disk_availability)
        application_structure = series("app-host")
        database_structure = series("db-host", "db-disk")
    else:
        model.add_resource("app-host-1", params.application_host_availability)
        model.add_resource("app-host-2", params.application_host_availability)
        model.add_resource("db-host-1", params.database_host_availability)
        model.add_resource("db-host-2", params.database_host_availability)
        model.add_resource("db-disk-1", params.disk_availability)
        model.add_resource("db-disk-2", params.disk_availability)
        application_structure = parallel("app-host-1", "app-host-2")
        database_structure = series(
            parallel("db-host-1", "db-host-2"),
            parallel("db-disk-1", "db-disk-2"),
        )

    for kind, count, availability in (
        ("flight", params.n_flight, params.reservation_availability),
        ("hotel", params.n_hotel, params.reservation_availability),
        ("car", params.n_car, params.reservation_availability),
    ):
        for index in range(1, count + 1):
            model.add_resource(f"{kind}-system-{index}", availability)
    model.add_resource("payment-system", params.payment_availability)

    # ------------------------------------------------------------------
    # Service level (Table 2 columns)
    # ------------------------------------------------------------------
    model.add_service(NET, "internet-link")
    model.add_service(LAN, "lan-segment")
    model.add_service(WEB, "web-farm")
    model.add_service(APPLICATION, application_structure)
    model.add_service(DATABASE, database_structure)
    model.add_service(
        FLIGHT,
        parallel(*[f"flight-system-{i}" for i in range(1, params.n_flight + 1)]),
    )
    model.add_service(
        HOTEL,
        parallel(*[f"hotel-system-{i}" for i in range(1, params.n_hotel + 1)]),
    )
    model.add_service(
        CAR,
        parallel(*[f"car-system-{i}" for i in range(1, params.n_car + 1)]),
    )
    model.add_service(PAYMENT, "payment-system")

    # ------------------------------------------------------------------
    # Function level (Figs. 3-6, Table 2 rows)
    # ------------------------------------------------------------------
    model.add_function(HOME, services=[WEB])
    model.add_function(BROWSE, diagram=diagrams.browse_diagram(params))
    model.add_function(SEARCH, diagram=diagrams.search_diagram(params))
    model.add_function(BOOK, diagram=diagrams.book_diagram(params))
    model.add_function(PAY, diagram=diagrams.pay_diagram(params))

    # Connectivity is needed by every function (Section 4.2).
    model.require_everywhere([NET, LAN])
    return model
