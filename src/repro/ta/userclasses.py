"""Functions, scenarios and user classes of the Travel Agency (Table 1).

The paper fixes five site functions and twelve user scenarios.  Class A
models information seekers (few purchases); class B models buyers
(about 20% of sessions end in a payment).  Scenario probabilities are
published in percent rounded to one decimal; they sum to exactly 100 for
both classes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from ..profiles import Scenario, UserClass

__all__ = [
    "FUNCTIONS",
    "HOME",
    "BROWSE",
    "SEARCH",
    "BOOK",
    "PAY",
    "SCENARIO_FUNCTION_SETS",
    "PAPER_SCENARIO_LABELS",
    "CLASS_A",
    "CLASS_B",
    "TA_PROFILE_EDGES",
    "scenario_category",
]

HOME = "home"
BROWSE = "browse"
SEARCH = "search"
BOOK = "book"
PAY = "pay"

#: The five TA functions, in the paper's presentation order.
FUNCTIONS: Tuple[str, ...] = (HOME, BROWSE, SEARCH, BOOK, PAY)

#: Function set of each of the paper's twelve scenarios (Table 1 row -> set).
SCENARIO_FUNCTION_SETS: Dict[int, FrozenSet[str]] = {
    1: frozenset({HOME}),
    2: frozenset({BROWSE}),
    3: frozenset({HOME, BROWSE}),
    4: frozenset({HOME, SEARCH}),
    5: frozenset({BROWSE, SEARCH}),
    6: frozenset({HOME, BROWSE, SEARCH}),
    7: frozenset({HOME, SEARCH, BOOK}),
    8: frozenset({BROWSE, SEARCH, BOOK}),
    9: frozenset({HOME, BROWSE, SEARCH, BOOK}),
    10: frozenset({HOME, SEARCH, BOOK, PAY}),
    11: frozenset({BROWSE, SEARCH, BOOK, PAY}),
    12: frozenset({HOME, BROWSE, SEARCH, BOOK, PAY}),
}

#: The paper's path-style labels for the twelve scenarios.
PAPER_SCENARIO_LABELS: Dict[int, str] = {
    1: "St-Ho-Ex",
    2: "St-Br-Ex",
    3: "St-{Ho-Br}*-Ex",
    4: "St-Ho-Se-Ex",
    5: "St-Br-Se-Ex",
    6: "St-{Ho-Br}*-Se-Ex",
    7: "St-Ho-{Se-Bo}*-Ex",
    8: "St-Br-{Se-Bo}*-Ex",
    9: "St-{Ho-Br}*-{Se-Bo}*-Ex",
    10: "St-Ho-{Se-Bo}*-Pa-Ex",
    11: "St-Br-{Se-Bo}*-Pa-Ex",
    12: "St-{Ho-Br}*-{Se-Bo}*-Pa-Ex",
}

_CLASS_A_PERCENT = {
    1: 10.0, 2: 26.7, 3: 11.3, 4: 18.4, 5: 12.2, 6: 7.6,
    7: 3.0, 8: 2.0, 9: 1.3, 10: 3.6, 11: 2.4, 12: 1.5,
}
_CLASS_B_PERCENT = {
    1: 10.0, 2: 6.6, 3: 4.2, 4: 13.9, 5: 20.4, 6: 9.7,
    7: 4.7, 8: 6.9, 9: 3.3, 10: 6.4, 11: 9.4, 12: 4.5,
}


def _user_class(name: str, percents: Dict[int, float]) -> UserClass:
    return UserClass.from_probabilities(
        name,
        {
            SCENARIO_FUNCTION_SETS[i]: percents[i] / 100.0
            for i in SCENARIO_FUNCTION_SETS
        },
    )


#: Table 1 class A: mostly information seekers (~7.5% reach payment).
CLASS_A: UserClass = _user_class("class A", _CLASS_A_PERCENT)

#: Table 1 class B: buyers (~20% of sessions reach payment).
CLASS_B: UserClass = _user_class("class B", _CLASS_B_PERCENT)

#: Allowed transitions of the Fig. 2 operational-profile graph, used when
#: calibrating transition probabilities from the published scenario mix.
TA_PROFILE_EDGES: Tuple[Tuple[str, str], ...] = (
    ("Start", HOME),
    ("Start", BROWSE),
    (HOME, BROWSE),
    (HOME, SEARCH),
    (HOME, "Exit"),
    (BROWSE, HOME),
    (BROWSE, SEARCH),
    (BROWSE, "Exit"),
    (SEARCH, BOOK),
    (SEARCH, "Exit"),
    (BOOK, SEARCH),
    (BOOK, PAY),
    (BOOK, "Exit"),
    (PAY, "Exit"),
)


def scenario_category(scenario: Scenario) -> str:
    """The paper's SC1-SC4 grouping of user scenarios (Fig. 13).

    * ``"SC1"`` — Home/Browse only (scenarios 1-3);
    * ``"SC2"`` — reaches Search but not Book (scenarios 4-6);
    * ``"SC3"`` — reaches Book but not Pay (scenarios 7-9);
    * ``"SC4"`` — reaches Pay (scenarios 10-12).
    """
    if PAY in scenario.functions:
        return "SC4"
    if BOOK in scenario.functions:
        return "SC3"
    if SEARCH in scenario.functions:
        return "SC2"
    return "SC1"
