"""High-level facade over the Travel Agency availability model.

:class:`TravelAgencyModel` bundles the parameters, the chosen
architecture and the assembled hierarchical model behind a small API
that the examples and the benchmark harness drive:

* per-level availabilities (service, function, user);
* the Table 8 sweep over the number of reservation systems, with and
  without the retry-adjusted column;
* the Fig. 13 scenario-category decomposition;
* a closed-form cross-check against the paper's eq. (10).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..core import HierarchicalModel, UserLevelResult
from ..errors import ValidationError
from ..profiles import UserClass
from . import equations
from .architecture import ARCHITECTURES, build_travel_agency, web_service_model
from .parameters import TAParameters
from .userclasses import SCENARIO_FUNCTION_SETS, scenario_category

__all__ = ["TravelAgencyModel"]


class TravelAgencyModel:
    """The Travel Agency of the paper, ready to evaluate.

    Parameters
    ----------
    params:
        Model parameters; defaults to the paper's Table 7 /
        Section 5.2 configuration.
    architecture:
        ``"basic"`` (Fig. 7) or ``"redundant"`` (Fig. 8, the default).

    Examples
    --------
    >>> from repro.ta import CLASS_A, TravelAgencyModel
    >>> ta = TravelAgencyModel()
    >>> result = ta.user_availability(CLASS_A)
    >>> 0.97 < result.availability < 0.99
    True
    """

    def __init__(
        self,
        params: TAParameters = TAParameters(),
        architecture: str = "redundant",
    ):
        if architecture not in ARCHITECTURES:
            raise ValidationError(
                f"unknown architecture {architecture!r}; expected one of "
                f"{ARCHITECTURES}"
            )
        self.params = params
        self.architecture = architecture
        self._model = build_travel_agency(params, architecture)

    # ------------------------------------------------------------------
    @property
    def hierarchical_model(self) -> HierarchicalModel:
        """The underlying four-level model."""
        return self._model

    def with_params(self, **changes) -> "TravelAgencyModel":
        """A new model with some parameters changed."""
        return TravelAgencyModel(self.params.replace(**changes), self.architecture)

    # ------------------------------------------------------------------
    # Level accessors
    # ------------------------------------------------------------------
    def web_service_availability(self) -> float:
        """A(WS): the composite web-service availability."""
        return web_service_model(self.params, self.architecture).availability()

    def service_availabilities(self) -> Dict[str, float]:
        """All service-level availabilities."""
        return self._model.service_availabilities()

    def function_availabilities(self) -> Dict[str, float]:
        """All function-level availabilities (Table 6)."""
        return {
            name: self._model.function_availability(name)
            for name in self._model.functions
        }

    def user_availability(self, user_class: UserClass) -> UserLevelResult:
        """User-perceived availability for a user class (eq. 10)."""
        return self._model.user_availability(user_class)

    # ------------------------------------------------------------------
    # Paper-specific analyses
    # ------------------------------------------------------------------
    def closed_form_user_availability(self, user_class: UserClass) -> float:
        """Eq. (10) evaluated through the paper's explicit formula.

        An independent computation path from
        :meth:`user_availability` (which goes through the generic
        hierarchical engine); the two agree to machine precision and the
        test suite enforces it.
        """
        pi = {
            i: user_class.distribution.probability_of(fs)
            for i, fs in SCENARIO_FUNCTION_SETS.items()
        }
        return equations.user_availability(self.params, pi, self.architecture)

    def reservation_sweep(
        self, user_class: UserClass, counts: Iterable[int]
    ) -> List[Tuple[int, float]]:
        """The Table 8 sweep: user availability vs ``N_F = N_H = N_C``."""
        results = []
        for count in counts:
            model = TravelAgencyModel(
                self.params.with_reservation_systems(count), self.architecture
            )
            results.append(
                (count, model.user_availability(user_class).availability)
            )
        return results

    def retry_adjusted_availability(
        self, user_class: UserClass, policy=None
    ):
        """User-perceived availability with bounded user retries.

        The closed-form extension of eq. (10) from
        :func:`repro.resilience.retry.retry_adjusted_user_availability`:
        failed sessions are retried up to ``policy.max_retries`` times
        (persisting with probability ``policy.persistence`` per
        failure), each attempt an independent draw from the steady
        state.  Defaults to a three-retry fully-persistent policy.

        Examples
        --------
        >>> from repro.ta import CLASS_A, TravelAgencyModel
        >>> ta = TravelAgencyModel()
        >>> result = ta.retry_adjusted_availability(CLASS_A)
        >>> result.adjusted_availability > result.availability
        True
        """
        from ..resilience.retry import RetryPolicy, retry_adjusted_user_availability

        if policy is None:
            policy = RetryPolicy()
        return retry_adjusted_user_availability(self._model, user_class, policy)

    def reservation_sweep_with_retries(
        self,
        user_class: UserClass,
        counts: Iterable[int],
        policy=None,
    ) -> List[Tuple[int, float, float]]:
        """Table 8 with a retry-adjusted column.

        Per reservation-system count ``N_F = N_H = N_C``, the
        single-submission eq.-(10) availability and the retry-adjusted
        value under *policy* (default: three fully-persistent retries).
        """
        from ..resilience.retry import RetryPolicy

        if policy is None:
            policy = RetryPolicy()
        results = []
        for count in counts:
            model = TravelAgencyModel(
                self.params.with_reservation_systems(count), self.architecture
            )
            adjusted = model.retry_adjusted_availability(user_class, policy)
            results.append(
                (count, adjusted.availability, adjusted.adjusted_availability)
            )
        return results

    def category_breakdown(self, user_class: UserClass) -> Dict[str, float]:
        """Fig. 13: unavailability contribution of SC1-SC4.

        Contributions ``sum_i pi_i (1 - A_i)`` per category; they add up
        to the total user-perceived unavailability.
        """
        result = self.user_availability(user_class)
        return result.contribution_by(scenario_category)

    def user_availability_at(
        self,
        user_class: UserClass,
        time: float,
        initial_servers: int = None,
    ) -> float:
        """User-perceived availability at a point in time.

        The web farm is the only resource with interesting dynamics on
        operational timescales (its repair/reconfiguration rates are
        per-hour); the other services are taken at steady state, and the
        web service's *transient* composite availability at *time*
        (hours) replaces its steady-state value in the user-level
        evaluation.  Answers questions like "what do users see in the
        first hours after we bring the farm up on one server?".
        """
        services = self._model.service_availabilities()
        web = web_service_model(self.params, self.architecture)
        services["web"] = web.transient_availability(
            time, initial_servers=initial_servers
        )
        return sum(
            scenario.probability
            * self._model.scenario_availability(
                scenario.functions, service_availability=services
            )
            for scenario in user_class.scenarios
        )

    def service_importance(self, user_class: UserClass) -> Dict[str, float]:
        """First-order influence of each service on user availability."""
        return self._model.service_importance(user_class)

    def __repr__(self) -> str:
        return (
            f"TravelAgencyModel(architecture={self.architecture!r}, "
            f"NW={self.params.web_servers}, "
            f"N_res=({self.params.n_flight},{self.params.n_hotel},{self.params.n_car}))"
        )
