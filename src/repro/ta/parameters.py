"""Model parameters for the Travel Agency study.

Defaults reproduce the paper's Table 7 together with the web-service
configuration stated in Section 5.2 (NW = 4 servers, imperfect coverage
c = 0.98, arrival rate alpha = 100/s, failure rate lambda = 1e-4/h,
service rate nu = 100/s, repair rate mu = 1/h, reconfiguration rate
beta = 12/h, buffer size K = 10).

Rate units: the availability-model rates (``web_failure_rate``,
``web_repair_rate``, ``web_reconfiguration_rate``) are per *hour*; the
performance-model rates (``arrival_rate``, ``service_rate``) are per
*second*.  The composite model only combines dimensionless probabilities
from the two sides, so the units never mix (see
:mod:`repro.availability.webservice`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from .._validation import (
    check_positive_int,
    check_probability,
    check_rate,
)
from ..errors import ValidationError

__all__ = ["TAParameters"]


@dataclass(frozen=True)
class TAParameters:
    """All parameters of the Travel Agency availability model.

    Attributes
    ----------
    internet_availability:
        ``A_net``, availability of the TA's Internet connectivity.
    lan_availability:
        ``A_LAN``, availability of the internal LAN.
    application_host_availability:
        ``A(C_AS)``, availability of one application-server host.
    database_host_availability:
        ``A(C_DS)``, availability of one database-server host.
    disk_availability:
        ``A(Disk)``, availability of one database disk.
    payment_availability:
        ``A_PS``, availability of the external payment system.
    reservation_availability:
        Availability of each individual flight/hotel/car reservation
        system (the paper assumes a common value 0.9).
    n_flight, n_hotel, n_car:
        ``N_F, N_H, N_C`` — number of reservation systems per trip item.
    q_cache, q_application, q_app_direct, q_app_database:
        Browse-diagram branch probabilities ``q23, q24, q45, q47``
        (Fig. 3): cache hit; forward to application server; answer
        without the database; involve the database.
    web_servers:
        ``NW``, number of web servers (1 = the basic architecture's
        single host).
    arrival_rate:
        Request arrival rate ``alpha`` (per second).
    service_rate:
        Per-server request service rate ``nu`` (per second).
    buffer_size:
        Web input-buffer capacity ``K``.
    web_failure_rate:
        Per-server failure rate ``lambda`` (per hour).
    web_repair_rate:
        Shared repair rate ``mu`` (per hour).
    web_coverage:
        Failure coverage ``c``; 1.0 selects the perfect-coverage model.
    web_reconfiguration_rate:
        Manual reconfiguration rate ``beta`` (per hour).
    """

    # Table 7 availabilities
    internet_availability: float = 0.9966
    lan_availability: float = 0.9966
    application_host_availability: float = 0.996
    database_host_availability: float = 0.996
    disk_availability: float = 0.9
    payment_availability: float = 0.9
    reservation_availability: float = 0.9
    # External supplier counts (Table 8 sweeps these)
    n_flight: int = 5
    n_hotel: int = 5
    n_car: int = 5
    # Browse interaction-diagram branch probabilities (Fig. 3 / Table 7)
    q_cache: float = 0.2
    q_application: float = 0.8
    q_app_direct: float = 0.4
    q_app_database: float = 0.6
    # Web service configuration (Section 5.2)
    web_servers: int = 4
    arrival_rate: float = 100.0
    service_rate: float = 100.0
    buffer_size: int = 10
    web_failure_rate: float = 1e-4
    web_repair_rate: float = 1.0
    web_coverage: float = 0.98
    web_reconfiguration_rate: float = 12.0

    def __post_init__(self):
        for name in (
            "internet_availability",
            "lan_availability",
            "application_host_availability",
            "database_host_availability",
            "disk_availability",
            "payment_availability",
            "reservation_availability",
            "q_cache",
            "q_application",
            "q_app_direct",
            "q_app_database",
            "web_coverage",
        ):
            check_probability(getattr(self, name), name)
        for name in ("n_flight", "n_hotel", "n_car", "web_servers", "buffer_size"):
            check_positive_int(getattr(self, name), name)
        for name in (
            "arrival_rate",
            "service_rate",
            "web_failure_rate",
            "web_repair_rate",
            "web_reconfiguration_rate",
        ):
            check_rate(getattr(self, name), name)
        if abs(self.q_cache + self.q_application - 1.0) > 1e-9:
            raise ValidationError(
                "q_cache + q_application must equal 1 "
                f"(got {self.q_cache} + {self.q_application})"
            )
        if abs(self.q_app_direct + self.q_app_database - 1.0) > 1e-9:
            raise ValidationError(
                "q_app_direct + q_app_database must equal 1 "
                f"(got {self.q_app_direct} + {self.q_app_database})"
            )

    def replace(self, **changes) -> "TAParameters":
        """A copy with the given fields changed (validation re-runs)."""
        return dataclasses.replace(self, **changes)

    @property
    def offered_load(self) -> float:
        """Web system load ``alpha / nu``."""
        return self.arrival_rate / self.service_rate

    def with_reservation_systems(self, count: int) -> "TAParameters":
        """A copy with ``N_F = N_H = N_C = count`` (the Table 8 sweep)."""
        return self.replace(n_flight=count, n_hotel=count, n_car=count)
