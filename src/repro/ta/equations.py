"""The paper's closed-form availability equations (Tables 3-6, eq. 10).

These are transcribed directly from the paper as an *independent*
implementation: the test suite checks that the generic hierarchical
engine (:mod:`repro.core`) reproduces them exactly, which validates both
the engine and the transcription.

Two OCR corrections are applied, documented in DESIGN.md:

* Table 4's redundant forms read ``1 - 2(1 - A)`` in the scan; the
  two-unit parallel redundancy described in the text is
  ``1 - (1 - A)^2``, which is what the functions below compute.
* The web-service equations of Table 5 live in
  :mod:`repro.availability.webservice`; the imperfect-coverage down-state
  sums run over every ``y_i`` (i = 1..NW).
"""

from __future__ import annotations

from typing import Dict, Mapping

from .._validation import check_probability
from ..availability import WebServiceModel
from .parameters import TAParameters
from .userclasses import SCENARIO_FUNCTION_SETS

__all__ = [
    "external_service_availability",
    "application_service_availability",
    "database_service_availability",
    "service_availabilities",
    "function_availabilities",
    "user_availability",
]


def external_service_availability(per_system: float, count: int) -> float:
    """Table 3: 1-of-N availability, ``1 - (1 - A)^N``."""
    per_system = check_probability(per_system, "per_system")
    return 1.0 - (1.0 - per_system) ** count


def application_service_availability(
    host_availability: float, redundant: bool
) -> float:
    """Table 4: ``A(C_AS)`` (basic) or ``1 - (1 - A(C_AS))^2`` (redundant)."""
    a = check_probability(host_availability, "host_availability")
    if redundant:
        return 1.0 - (1.0 - a) ** 2
    return a


def database_service_availability(
    host_availability: float, disk_availability: float, redundant: bool
) -> float:
    """Table 4: host and disk in series; duplicated when redundant."""
    host = check_probability(host_availability, "host_availability")
    disk = check_probability(disk_availability, "disk_availability")
    if redundant:
        return (1.0 - (1.0 - host) ** 2) * (1.0 - (1.0 - disk) ** 2)
    return host * disk


def service_availabilities(
    params: TAParameters, architecture: str = "redundant"
) -> Dict[str, float]:
    """All nine service availabilities under the closed forms.

    Keys match the service names of :mod:`repro.ta.diagrams`.
    """
    from .architecture import web_service_model  # local import avoids a cycle

    redundant = architecture == "redundant"
    return {
        "net": params.internet_availability,
        "lan": params.lan_availability,
        "web": web_service_model(params, architecture).availability(),
        "application": application_service_availability(
            params.application_host_availability, redundant
        ),
        "database": database_service_availability(
            params.database_host_availability, params.disk_availability, redundant
        ),
        "flight": external_service_availability(
            params.reservation_availability, params.n_flight
        ),
        "hotel": external_service_availability(
            params.reservation_availability, params.n_hotel
        ),
        "car": external_service_availability(
            params.reservation_availability, params.n_car
        ),
        "payment": params.payment_availability,
    }


def function_availabilities(
    params: TAParameters, services: Mapping[str, float]
) -> Dict[str, float]:
    """Table 6: the five function availabilities.

    ``services`` maps service names to availabilities (as produced by
    :func:`service_availabilities`).  Every equation carries the common
    factor ``A_net * A_LAN``.
    """
    common = services["net"] * services["lan"]
    a_ws = services["web"]
    a_as = services["application"]
    a_ds = services["database"]
    browse_term = params.q_cache + a_as * (
        params.q_application * params.q_app_direct
        + params.q_application * params.q_app_database * a_ds
    )
    search = (
        common
        * a_ws
        * a_as
        * a_ds
        * services["flight"]
        * services["hotel"]
        * services["car"]
    )
    return {
        "home": common * a_ws,
        "browse": common * a_ws * browse_term,
        "search": search,
        "book": search,  # Book succeeds whenever Search did (Section 4.2)
        "pay": common * a_ws * a_as * a_ds * services["payment"],
    }


def user_availability(
    params: TAParameters,
    scenario_probabilities: Mapping[int, float],
    architecture: str = "redundant",
) -> float:
    """Equation (10): the user-perceived availability.

    Parameters
    ----------
    scenario_probabilities:
        ``{scenario id (1-12): probability}`` following the Table 1
        numbering; probabilities must cover all twelve scenarios.

    Returns
    -------
    float
        ``A(user) = A_net A_LAN A(WS) [ pi_1
        + (pi_2 + pi_3) {q23 + A(AS)(q24 q45 + q24 q47 A(DS))}
        + A(AS) A(DS) A(F) A(H) A(C) {(pi_4..pi_9)
        + (pi_10..pi_12) A(PS)} ]``
    """
    missing = [i for i in SCENARIO_FUNCTION_SETS if i not in scenario_probabilities]
    if missing:
        from ..errors import ValidationError

        raise ValidationError(f"missing scenario probabilities for ids {missing}")
    services = service_availabilities(params, architecture)
    pi = {i: float(scenario_probabilities[i]) for i in SCENARIO_FUNCTION_SETS}
    a_as = services["application"]
    a_ds = services["database"]
    browse_term = params.q_cache + a_as * (
        params.q_application * params.q_app_direct
        + params.q_application * params.q_app_database * a_ds
    )
    reservation_product = (
        a_as * a_ds * services["flight"] * services["hotel"] * services["car"]
    )
    bracket = (
        pi[1]
        + (pi[2] + pi[3]) * browse_term
        + reservation_product
        * (
            (pi[4] + pi[5] + pi[6] + pi[7] + pi[8] + pi[9])
            + (pi[10] + pi[11] + pi[12]) * services["payment"]
        )
    )
    return services["net"] * services["lan"] * services["web"] * bracket
