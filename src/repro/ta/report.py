"""A complete text report of a Travel Agency evaluation.

Bundles everything an availability review needs into one rendered
document: per-level availabilities, the user-class results with downtime
budgets, the scenario-category breakdown, service importance and the
business impact — the artifact a provider would circulate after running
the paper's methodology.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional

from ..profiles import UserClass
from ..reporting import format_downtime, format_table
from .economics import RevenueModel
from .model import TravelAgencyModel
from .userclasses import CLASS_A, CLASS_B, FUNCTIONS

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..engine import EvaluationEngine

__all__ = ["availability_report"]


def _user_level_cell(payload):
    """Engine work function for one user-class evaluation (picklable)."""
    model, users = payload
    return model.user_availability(users), model.category_breakdown(users)


def availability_report(
    model: TravelAgencyModel,
    user_classes: Iterable[UserClass] = (CLASS_A, CLASS_B),
    session_rate: float = 100.0,
    average_revenue: float = 100.0,
    engine: Optional["EvaluationEngine"] = None,
) -> str:
    """Render the full evaluation as a text document.

    Parameters
    ----------
    model:
        The Travel Agency model to report on.
    user_classes:
        Populations to evaluate (defaults to the paper's classes A and B).
    session_rate / average_revenue:
        Economics assumptions for the lost-revenue section (the paper
        uses 100 sessions/s and $100 per completed payment session).
    engine:
        Optional :class:`~repro.engine.EvaluationEngine`; the per-class
        user-level evaluations (the expensive cells of the report) run
        through it as one batch — in parallel across classes when the
        engine has workers — with rendered output identical to the
        serial path.
    """
    user_classes = list(user_classes)
    sections: List[str] = []

    if engine is not None:
        cells = engine.map(
            _user_level_cell,
            [(model, users) for users in user_classes],
            phase="ta-report",
        ).outputs
        user_results = {
            users.name: cell[0]
            for users, cell in zip(user_classes, cells)
        }
        breakdowns = {
            users.name: cell[1]
            for users, cell in zip(user_classes, cells)
        }
    else:
        user_results = {
            users.name: model.user_availability(users)
            for users in user_classes
        }
        breakdowns = {
            users.name: model.category_breakdown(users)
            for users in user_classes
        }

    header = (
        f"USER-PERCEIVED AVAILABILITY REPORT\n"
        f"architecture: {model.architecture};  "
        f"web farm: NW = {model.params.web_servers}, "
        f"coverage = {model.params.web_coverage};  "
        f"reservation systems per item: "
        f"{model.params.n_flight}/{model.params.n_hotel}/{model.params.n_car}"
    )
    sections.append(header)

    # --- user level ----------------------------------------------------
    rows = []
    results = user_results
    for users in user_classes:
        result = results[users.name]
        rows.append([
            users.name,
            f"{result.availability:.5f}",
            format_downtime(result.availability),
            f"{users.buying_intent() * 100:.1f}%",
        ])
    sections.append(format_table(
        ["user class", "A(user)", "downtime", "buyers"],
        rows,
        title="1. User-perceived availability (eq. 10)",
    ))

    # --- category breakdown ---------------------------------------------
    rows = []
    for users in user_classes:
        breakdown = breakdowns[users.name]
        for category in sorted(breakdown):
            rows.append([
                users.name, category,
                f"{breakdown[category] * 8760.0:.1f}",
            ])
    sections.append(format_table(
        ["user class", "scenario category", "downtime share (h/year)"],
        rows,
        title="2. Where the downtime comes from (Fig. 13 grouping)",
    ))

    # --- function level --------------------------------------------------
    functions = model.function_availabilities()
    sections.append(format_table(
        ["function", "availability", "downtime"],
        [
            [name, f"{functions[name]:.6f}", format_downtime(functions[name])]
            for name in FUNCTIONS
            if name in functions
        ],
        title="3. Function availabilities (Table 6)",
    ))

    # --- service level + importance --------------------------------------
    services = model.service_availabilities()
    importance = model.service_importance(user_classes[0])
    sections.append(format_table(
        ["service", "availability", f"importance ({user_classes[0].name})"],
        [
            [name, f"{services[name]:.9f}", f"{importance[name]:.4f}"]
            for name, _ in sorted(
                importance.items(), key=lambda kv: -kv[1]
            )
        ],
        title="4. Services, ranked by influence on user availability",
    ))

    # --- economics --------------------------------------------------------
    revenue = RevenueModel(session_rate=session_rate,
                           average_revenue=average_revenue)
    rows = []
    for users in user_classes:
        estimate = revenue.estimate(results[users.name])
        rows.append([
            users.name,
            f"{estimate.lost_payment_sessions_per_year:.3e}",
            f"${estimate.lost_revenue_per_year:.3e}",
        ])
    sections.append(format_table(
        ["user class", "lost payment sessions / year", "lost revenue / year"],
        rows,
        title=(
            f"5. Business impact ({session_rate:g} sessions/s, "
            f"${average_revenue:g} per transaction)"
        ),
    ))

    return "\n\n".join(sections)
