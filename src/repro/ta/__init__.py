"""The web-based Travel Agency (TA) case study of the paper.

This subpackage instantiates the hierarchical framework on the paper's
running example:

* :class:`TAParameters` — every model parameter, defaulting to the
  paper's Table 7 values and Section 5 configuration.
* :data:`CLASS_A` / :data:`CLASS_B` — the Table 1 user classes.
* :func:`build_travel_agency` / :class:`TravelAgencyModel` — the basic
  (Fig. 7) and redundant (Fig. 8) architectures assembled into a
  :class:`~repro.core.HierarchicalModel`.
* :mod:`repro.ta.equations` — the paper's closed-form equations
  (Tables 3-6 and eq. 10), kept as an independent implementation that
  the test suite cross-checks against the generic engine.
* :mod:`repro.ta.economics` — the lost-transaction / lost-revenue
  analysis of Section 5.2.
"""

from .parameters import TAParameters
from .userclasses import (
    CLASS_A,
    CLASS_B,
    FUNCTIONS,
    PAPER_SCENARIO_LABELS,
    SCENARIO_FUNCTION_SETS,
    TA_PROFILE_EDGES,
    scenario_category,
)
from .architecture import build_travel_agency
from .model import TravelAgencyModel
from .economics import RevenueModel, RevenueLossEstimate

__all__ = [
    "TAParameters",
    "CLASS_A",
    "CLASS_B",
    "FUNCTIONS",
    "PAPER_SCENARIO_LABELS",
    "SCENARIO_FUNCTION_SETS",
    "TA_PROFILE_EDGES",
    "scenario_category",
    "build_travel_agency",
    "TravelAgencyModel",
    "RevenueModel",
    "RevenueLossEstimate",
]
