"""Host-side chaos injectors: damage state at rest, deterministically.

:class:`~repro.chaos.ChaosPlan` hurts *running* tasks; these injectors
hurt the *artifacts* a run leaves behind — the on-disk memo cache and
the resume journal — so the recovery paths of
:class:`repro.engine.MemoCache` (checksum validation + quarantine) and
:class:`repro.runtime.Journal` (torn-tail repair + resume) can be
exercised end to end.  Both are driven by a
:class:`numpy.random.SeedSequence`, so a given ``(seed, target)`` pair
always damages the same bytes.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

import numpy as np

from ..errors import ChaosError

__all__ = ["corrupt_cache_entries", "truncate_journal_tail"]

PathLike = Union[str, Path]


def _cache_entry_files(cache_dir: Path) -> List[Path]:
    """Every framed cache entry under *cache_dir*, in sorted order.

    Entries live in two-hex-digit shard directories; the ``quarantine/``
    directory (already-detected damage) is not a target.
    """
    files = [
        path
        for path in sorted(cache_dir.glob("??/*.pkl"))
        if path.parent.name != "quarantine"
    ]
    return files


def corrupt_cache_entries(
    cache_dir: PathLike, seed: int, count: int = 1
) -> List[Path]:
    """Damage *count* seed-chosen on-disk cache entries; returns them.

    Two damage modes, also seed-chosen per entry: truncation to half the
    file (a torn write) and payload byte flips (bit rot).  Either breaks
    the entry's checksum frame, so the next lookup must detect it,
    quarantine the file, and recompute.
    """
    cache_dir = Path(cache_dir)
    files = _cache_entry_files(cache_dir)
    if not files:
        raise ChaosError(
            f"no cache entries to corrupt under {cache_dir}"
        )
    if count < 1:
        raise ChaosError(f"count must be >= 1, got {count}")
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    chosen = rng.choice(len(files), size=min(count, len(files)),
                        replace=False)
    corrupted: List[Path] = []
    for file_index in sorted(int(i) for i in chosen):
        path = files[file_index]
        raw = path.read_bytes()
        if rng.integers(2) == 0 and len(raw) > 1:
            # Torn write: keep only the first half of the file.
            path.write_bytes(raw[: len(raw) // 2])
        else:
            # Bit rot: flip three bytes spread over the payload.
            damaged = bytearray(raw)
            for offset in rng.integers(len(raw), size=3):
                damaged[int(offset)] ^= 0xFF
            path.write_bytes(bytes(damaged))
        corrupted.append(path)
    return corrupted


def truncate_journal_tail(
    path: PathLike, seed: int, records: int = 1
) -> int:
    """Tear the tail off a journal: drop its last *records* records.

    The last dropped record is replaced by a seed-chosen partial prefix
    of its bytes (no trailing newline) — exactly the torn write a crash
    mid-append leaves.  Returns the number of complete records removed.
    A resume must restore everything before the tear and recompute the
    rest.
    """
    path = Path(path)
    if not path.exists():
        raise ChaosError(f"journal {path} does not exist; nothing to tear")
    raw = path.read_bytes()
    lines = [line for line in raw.splitlines(keepends=True) if line.strip()]
    if records < 1:
        raise ChaosError(f"records must be >= 1, got {records}")
    if len(lines) <= records:
        raise ChaosError(
            f"journal {path} holds only {len(lines)} records; cannot tear "
            f"{records} and keep a non-empty prefix"
        )
    kept, dropped = lines[:-records], lines[-records:]
    torn_source = dropped[0].rstrip(b"\n")
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    cut = int(rng.integers(1, max(2, len(torn_source) - 1)))
    path.write_bytes(b"".join(kept) + torn_source[:cut])
    return len(dropped)
