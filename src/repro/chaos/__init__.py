"""Deterministic chaos harness for the evaluation engine.

Fault tolerance that is never exercised is fault tolerance that does
not exist.  This package injects the faults the engine claims to
survive — worker deaths, transient task failures, cache corruption,
torn journals — *deterministically* (every injection site is drawn from
a :class:`numpy.random.SeedSequence`), then lets the caller verify the
recovery contract: the disturbed run's output must be byte-identical to
the undisturbed serial reference.

* :mod:`~repro.chaos.plan` — :class:`ChaosPlan`: in-band injections
  wired into :class:`repro.engine.EvaluationEngine` task dispatch
  (worker kills via ``os._exit``, transient
  :class:`~repro.errors.TransientTaskError` faults), with sentinel-file
  once-only semantics that hold across pool respawns;
* :mod:`~repro.chaos.injectors` — at-rest damage:
  :func:`corrupt_cache_entries` breaks checksum-framed memo-cache files,
  :func:`truncate_journal_tail` tears a resume journal the way a crash
  mid-append does.

The ``repro chaos`` CLI subcommand runs a Fig. 11 sweep under each
injector and checks bit-identity against a clean run; see
``docs/RESILIENCE.md`` ("Engine fault tolerance & chaos testing").
"""

from .injectors import corrupt_cache_entries, truncate_journal_tail
from .plan import ChaosPlan, plan_transient_faults, plan_worker_kills

__all__ = [
    "ChaosPlan",
    "corrupt_cache_entries",
    "plan_transient_faults",
    "plan_worker_kills",
    "truncate_journal_tail",
]
