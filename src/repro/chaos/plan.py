"""Deterministic fault-injection plans for the evaluation engine.

A :class:`ChaosPlan` names, ahead of time, exactly which task indices
of an engine batch get hurt and how: a *kill* injection terminates the
pool worker running the task (``os._exit``, no cleanup — the closest
portable stand-in for an OOM kill or segfault), a *transient* injection
raises :class:`~repro.errors.TransientTaskError` for the task's first
``transient_failures`` attempts.  Planners
(:func:`plan_worker_kills` / :func:`plan_transient_faults`) draw the
indices from a :class:`numpy.random.SeedSequence`, so a chaos run is
reproducible from ``(seed, n_tasks, count)`` alone.

Injections must fire *once* even though the engine re-runs hurt tasks
(that is the point), and even though the task may re-run in a different
worker process of a respawned pool.  Cross-process once-only semantics
use sentinel files in ``state_dir``: the first process to atomically
create the tag file (``O_CREAT | O_EXCL``) owns the injection; every
later attempt sees the file and leaves the task alone.  The same files
double as the harness's evidence that each planned fault actually fired
(:meth:`ChaosPlan.fired`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Tuple

import numpy as np

from ..errors import ChaosError, TransientTaskError

__all__ = ["ChaosPlan", "plan_worker_kills", "plan_transient_faults"]

#: Exit status of a chaos-killed worker; distinctive in core-dump-less
#: post-mortems (113 = "kill injected", outside the shell's 1/2/126+ set).
KILL_EXIT_CODE = 113


@dataclass(frozen=True)
class ChaosPlan:
    """Which engine tasks get hurt, and how.

    Parameters
    ----------
    state_dir:
        Directory for the once-only sentinel files.  Must be shared by
        every process of the run (the plan is pickled into pool
        workers); one plan per directory.
    kill_tasks:
        Task indices whose worker is terminated mid-task, once each.
    transient_tasks:
        Task indices that raise
        :class:`~repro.errors.TransientTaskError`, once per attempt for
        the first *transient_failures* attempts.
    transient_failures:
        Failing attempts per transient task before it is allowed to
        succeed.  Keep below the retry policy's ``max_attempts`` when
        the run is expected to recover.

    Examples
    --------
    >>> import tempfile
    >>> plan = ChaosPlan(state_dir=tempfile.mkdtemp(), transient_tasks=(2,))
    >>> plan.before_task(0, in_worker=False)  # unplanned index: no-op
    >>> plan.fired()
    0
    """

    state_dir: str
    kill_tasks: Tuple[int, ...] = ()
    transient_tasks: Tuple[int, ...] = ()
    transient_failures: int = 1
    kill_exit_code: int = KILL_EXIT_CODE

    def __post_init__(self):
        if not self.state_dir:
            raise ChaosError("a chaos plan needs a state_dir")
        object.__setattr__(
            self, "kill_tasks", tuple(int(i) for i in self.kill_tasks)
        )
        object.__setattr__(
            self, "transient_tasks",
            tuple(int(i) for i in self.transient_tasks),
        )
        for index in self.kill_tasks + self.transient_tasks:
            if index < 0:
                raise ChaosError(
                    f"chaos task indices must be >= 0, got {index}"
                )
        if self.transient_failures < 1:
            raise ChaosError(
                f"transient_failures must be >= 1, got "
                f"{self.transient_failures}"
            )
        Path(self.state_dir).mkdir(parents=True, exist_ok=True)

    # -- once-only bookkeeping -----------------------------------------
    def _claim(self, tag: str) -> bool:
        """Atomically claim *tag*; True for exactly one process ever."""
        path = Path(self.state_dir) / tag
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def fired(self) -> int:
        """How many planned injections have fired so far."""
        return sum(
            1 for entry in Path(self.state_dir).iterdir()
            if entry.name.startswith(("kill-", "transient-"))
        )

    # -- the injection point -------------------------------------------
    def before_task(self, index: int, in_worker: bool) -> None:
        """Engine hook, called before each attempt of task *index*.

        Raises
        ------
        TransientTaskError
            For a planned transient fault (retryable by the engine's
            default :class:`~repro.engine.TaskRetryPolicy`).
        ChaosError
            For a kill injection reached outside a pool worker — firing
            it would take down the supervising process itself, which is
            a harness misconfiguration (kills need ``workers >= 2``).
        """
        if index in self.kill_tasks and self._claim(f"kill-{index}"):
            if not in_worker:
                raise ChaosError(
                    f"kill injection for task {index} reached the "
                    "supervising process; worker kills need a process "
                    "pool (workers >= 2)"
                )
            os._exit(self.kill_exit_code)
        if index in self.transient_tasks:
            for attempt in range(self.transient_failures):
                if self._claim(f"transient-{index}-attempt{attempt}"):
                    raise TransientTaskError(
                        f"chaos: injected transient failure for task "
                        f"{index} (attempt {attempt + 1})"
                    )


def _draw_indices(n_tasks: int, seed: int, count: int) -> Tuple[int, ...]:
    if n_tasks < 1:
        raise ChaosError(f"n_tasks must be >= 1, got {n_tasks}")
    if count < 1:
        raise ChaosError(f"count must be >= 1, got {count}")
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    chosen = rng.choice(n_tasks, size=min(count, n_tasks), replace=False)
    return tuple(sorted(int(i) for i in chosen))


def plan_worker_kills(
    n_tasks: int, seed: int, count: int, state_dir: str
) -> ChaosPlan:
    """A plan killing the workers of *count* seed-chosen task indices.

    Examples
    --------
    >>> import tempfile
    >>> plan = plan_worker_kills(9, seed=0, count=2,
    ...                          state_dir=tempfile.mkdtemp())
    >>> plan.kill_tasks == plan_worker_kills(
    ...     9, 0, 2, tempfile.mkdtemp()).kill_tasks
    True
    """
    return ChaosPlan(
        state_dir=state_dir,
        kill_tasks=_draw_indices(n_tasks, seed, count),
    )


def plan_transient_faults(
    n_tasks: int, seed: int, count: int, state_dir: str, failures: int = 1
) -> ChaosPlan:
    """A plan raising transient faults at *count* seed-chosen indices."""
    return ChaosPlan(
        state_dir=state_dir,
        transient_tasks=_draw_indices(n_tasks, seed, count),
        transient_failures=failures,
    )
