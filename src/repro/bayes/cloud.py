"""Cloud availability building blocks on the Bayesian-network core.

Three constructs recast the paper's 2003 web farm onto a cloud
deployment:

* **k-out-of-n replica sets** — a service is up while at least *k* of
  its *n* replicas are (``k_of_n_cpt`` builds the deterministic CPT);
* **zonal common-cause failure** — each availability zone is a root
  node; every replica placed in a zone has it as a parent and is down
  whenever the zone is, which correlates same-zone replicas exactly the
  way independence-based RBD models cannot;
* **an autoscaling web farm** — a node whose conditional availability
  given the set of surviving zones is the paper's parametric M/M/c/K
  blocking model (:class:`~repro.availability.WebServiceModel`) with
  ``c = zones_up * servers_per_zone``: losing a zone does not just
  remove capacity, it re-solves the queueing model at the smaller farm.

:func:`replica_set_availability` and :func:`farm_availability` are the
closed forms for the marginals of those constructs; the tier-1 tests
check them against both exact network inference and Monte-Carlo
sampling (:mod:`repro.sim.bayes`).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .._validation import (
    check_positive,
    check_positive_int,
    check_probability,
)
from ..errors import ValidationError
from .network import BayesianNetwork

__all__ = [
    "CloudModelBuilder",
    "farm_availability",
    "k_of_n_cpt",
    "replica_set_availability",
]


def k_of_n_cpt(n: int, k: int) -> Tuple[float, ...]:
    """The deterministic CPT of a k-out-of-n node over *n* parents.

    Row value is 1.0 when at least *k* of the *n* parent bits are set
    (``k = 1`` is a parallel/OR block, ``k = n`` a series/AND block).
    """
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    if k > n:
        raise ValidationError(f"k must be in 1..{n} (n replicas), got {k}")
    return tuple(
        1.0 if bin(row).count("1") >= k else 0.0 for row in range(1 << n)
    )


def replica_set_availability(
    replicas_per_zone: Sequence[int],
    quorum: int,
    replica_availability: float,
    zone_availability: float = 1.0,
) -> float:
    """Closed-form availability of a zoned k-out-of-n replica set.

    Each zone is up independently with probability *zone_availability*;
    a replica is up with probability *replica_availability* if its zone
    is up and down otherwise.  The set serves while at least *quorum*
    replicas are up.  Exact: the up-replica count is a convolution of
    per-zone zero-inflated binomials.
    """
    counts = [check_positive_int(m, "replicas_per_zone") for m in replicas_per_zone]
    if not counts:
        raise ValidationError(
            "replicas_per_zone must name at least one zone, got []"
        )
    total = sum(counts)
    quorum = check_positive_int(quorum, "quorum")
    if quorum > total:
        raise ValidationError(
            f"quorum must be in 1..{total} (total replicas), got {quorum}"
        )
    a = check_probability(replica_availability, "replica_availability")
    zone = check_probability(zone_availability, "zone_availability")
    pmf = np.array([1.0])
    for m in counts:
        binom = np.array(
            [
                math.comb(m, j) * a**j * (1.0 - a) ** (m - j)
                for j in range(m + 1)
            ]
        )
        zone_pmf = zone * binom
        zone_pmf[0] += 1.0 - zone
        pmf = np.convolve(pmf, zone_pmf)
    return float(pmf[quorum:].sum())


def farm_availability(
    zones: int,
    zone_availability: float,
    servers_per_zone: int,
    arrival_rate: float,
    service_rate: float,
    buffer_capacity: int,
    failure_rate: float,
    repair_rate: float,
) -> float:
    """Closed-form availability of the autoscaling multi-zone web farm.

    Conditions on the number of surviving zones (binomial, zones are
    exchangeable) and weighs each regime by the paper's composite
    M/M/c/K web-service availability at the surviving capacity; zero
    surviving zones means the farm is down.
    """
    zones = check_positive_int(zones, "zones")
    zone = check_probability(zone_availability, "zone_availability")
    value = 0.0
    for up in range(1, zones + 1):
        weight = (
            math.comb(zones, up)
            * zone**up
            * (1.0 - zone) ** (zones - up)
        )
        value += weight * _farm_regime_availability(
            up * servers_per_zone,
            arrival_rate,
            service_rate,
            buffer_capacity,
            failure_rate,
            repair_rate,
        )
    return value


def _farm_regime_availability(
    servers: int,
    arrival_rate: float,
    service_rate: float,
    buffer_capacity: int,
    failure_rate: float,
    repair_rate: float,
) -> float:
    from ..availability import WebServiceModel

    return WebServiceModel(
        servers=servers,
        arrival_rate=arrival_rate,
        service_rate=service_rate,
        buffer_capacity=buffer_capacity,
        failure_rate=failure_rate,
        repair_rate=repair_rate,
    ).availability()


class CloudModelBuilder:
    """Assemble a cloud deployment as a :class:`BayesianNetwork`.

    Declare zones first, then place replica sets and farms into them;
    :meth:`build` returns the network (validating the DAG).  Node
    naming: a replica set *name* adds replicas ``name-1 .. name-n``
    plus the quorum node *name* itself.

    Examples
    --------
    >>> builder = CloudModelBuilder()
    >>> z1 = builder.add_zone("zone-1", 0.999)
    >>> z2 = builder.add_zone("zone-2", 0.999)
    >>> _ = builder.add_replica_set("db", [z1, z1, z2], quorum=2,
    ...                             replica_availability=0.99)
    >>> net = builder.build()
    >>> net.marginal("db") < 0.999 * 0.99  # same-zone pair correlates
    True
    """

    def __init__(self) -> None:
        self._network = BayesianNetwork()
        self._zones: Dict[str, float] = {}

    def add_zone(self, name: str, availability: float) -> str:
        """One availability zone: a common-cause root node."""
        check_probability(availability, f"zone {name!r} availability")
        self._network.add_node(name, cpt=float(availability))
        self._zones[name] = float(availability)
        return name

    def add_service(self, name: str, availability: float) -> str:
        """An independent root service (internet, payment gateway, ...)."""
        check_probability(availability, f"service {name!r} availability")
        self._network.add_node(name, cpt=float(availability))
        return name

    def add_replica_set(
        self,
        name: str,
        zones: Sequence[Optional[str]],
        quorum: int,
        replica_availability: float,
    ) -> str:
        """A k-out-of-n replica set, one *zones* entry per replica.

        A ``None`` zone entry makes that replica an independent root
        (externally hosted); a named zone makes the replica down
        whenever the zone is.
        """
        if not zones:
            raise ValidationError(
                f"replica set {name!r} needs at least one replica, got "
                "an empty zone list"
            )
        quorum = check_positive_int(quorum, f"replica set {name!r} quorum")
        if quorum > len(zones):
            raise ValidationError(
                f"replica set {name!r} quorum must be in 1..{len(zones)} "
                f"(replicas), got {quorum}"
            )
        a = check_probability(
            replica_availability, f"replica set {name!r} availability"
        )
        replicas: List[str] = []
        for i, zone in enumerate(zones):
            replica = f"{name}-{i + 1}"
            if zone is None:
                self._network.add_node(replica, cpt=a)
            else:
                self._check_zone(name, zone)
                self._network.add_node(replica, parents=(zone,), cpt=(0.0, a))
            replicas.append(replica)
        self._network.add_node(
            name,
            parents=tuple(replicas),
            cpt=k_of_n_cpt(len(replicas), quorum),
        )
        return name

    def add_farm(
        self,
        name: str,
        zones: Sequence[str],
        servers_per_zone: int,
        arrival_rate: float,
        service_rate: float,
        buffer_capacity: int,
        failure_rate: float,
        repair_rate: float,
    ) -> str:
        """The autoscaling web farm node, parented on its zones.

        Each CPT row solves the paper's composite M/M/c/K model at the
        surviving capacity ``zones_up * servers_per_zone``.
        """
        if not zones:
            raise ValidationError(
                f"farm {name!r} needs at least one zone, got an empty list"
            )
        if len(set(zones)) != len(zones):
            raise ValidationError(
                f"farm {name!r} lists a duplicate zone: {list(zones)}"
            )
        for zone in zones:
            self._check_zone(name, zone)
        servers_per_zone = check_positive_int(
            servers_per_zone, f"farm {name!r} servers_per_zone"
        )
        check_positive_int(buffer_capacity, f"farm {name!r} buffer_capacity")
        if buffer_capacity < len(zones) * servers_per_zone:
            raise ValidationError(
                f"farm {name!r} buffer_capacity must be >= "
                f"{len(zones) * servers_per_zone} (the full farm), got "
                f"{buffer_capacity}"
            )
        check_positive(arrival_rate, f"farm {name!r} arrival_rate")
        check_positive(service_rate, f"farm {name!r} service_rate")
        check_positive(failure_rate, f"farm {name!r} failure_rate")
        check_positive(repair_rate, f"farm {name!r} repair_rate")
        table = []
        regimes: Dict[int, float] = {0: 0.0}
        for row in range(1 << len(zones)):
            up = bin(row).count("1")
            if up not in regimes:
                regimes[up] = _farm_regime_availability(
                    up * servers_per_zone,
                    arrival_rate,
                    service_rate,
                    buffer_capacity,
                    failure_rate,
                    repair_rate,
                )
            table.append(regimes[up])
        self._network.add_node(name, parents=tuple(zones), cpt=table)
        return name

    def build(self) -> BayesianNetwork:
        """The assembled network; validates the DAG."""
        self._network.topological_order()
        return self._network

    def _check_zone(self, owner: str, zone: str) -> None:
        if zone not in self._zones:
            raise ValidationError(
                f"{owner!r} references undeclared zone {zone!r}; declared "
                f"zones: {sorted(self._zones)}"
            )
