"""Discrete Bayesian networks of binary availability nodes.

The cloud-era models (multi-zone replica sets, common-cause zonal
failures) need dependence structure the paper's series/parallel
hierarchy cannot express: two replicas in the same zone are *not*
independent — both fail when the zone does.  A Bayesian network over
binary up/down nodes captures exactly that: each node carries a
conditional probability table (CPT) giving its probability of being
*up* for every assignment of its parents, and any joint or conditional
availability is an exact inference query.

Inference is exact variable elimination over factors (small numpy
arrays, one axis per variable), with a deterministic greedy
min-degree elimination order — the networks here are tens of nodes, so
exactness is cheap.  :meth:`BayesianNetwork.brute_force_probability`
enumerates the full joint as an independent oracle for tests and for
the ``bench_bayes_inference.py`` speed guard.

Conventions
-----------
* A node state is a boolean: ``True`` = up.
* A CPT row is indexed by the parent assignment with ``parents[0]`` as
  the most significant bit and bit value 1 meaning *up*; the row value
  is ``P(node up | that assignment)``.
* Roots take a single float (their availability).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_probability
from ..errors import ModelStructureError, ValidationError
from ..obs.clock import monotonic
from ..obs.context import active_metrics

__all__ = ["BayesianNetwork", "Node"]

#: Enumeration guard: the brute-force oracle materializes 2^n states.
MAX_ENUMERATION_NODES = 24


@dataclass(frozen=True)
class Node:
    """One binary availability node: name, parents, and its CPT.

    ``table[row]`` is ``P(up | parent assignment)`` where *row* encodes
    the parent states with ``parents[0]`` as the most significant bit
    (bit 1 = up).  Roots hold a one-entry table.
    """

    name: str
    parents: Tuple[str, ...]
    table: Tuple[float, ...]


class BayesianNetwork:
    """A DAG of binary availability nodes with exact inference.

    Examples
    --------
    >>> net = BayesianNetwork()
    >>> _ = net.add_node("zone", cpt=0.99)
    >>> _ = net.add_node("replica", parents=("zone",), cpt=(0.0, 0.95))
    >>> round(net.marginal("replica"), 4)
    0.9405
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, Node] = {}
        self._order: Optional[Tuple[str, ...]] = None

    # -- construction --------------------------------------------------

    def add_node(
        self,
        name: str,
        parents: Sequence[str] = (),
        cpt=None,
    ) -> Node:
        """Declare one node; parents may be declared later (forward refs).

        *cpt* is a float for roots, a sequence of ``2**len(parents)``
        row probabilities, or a ``{parent-state tuple: probability}``
        mapping covering every row.
        """
        if not isinstance(name, str) or not name:
            raise ValidationError(
                f"node name must be a non-empty string, got {name!r}"
            )
        if name in self._nodes:
            raise ValidationError(f"duplicate node {name!r}")
        parents = tuple(parents)
        for parent in parents:
            if not isinstance(parent, str) or not parent:
                raise ValidationError(
                    f"node {name!r} parent must be a non-empty string, "
                    f"got {parent!r}"
                )
        if len(set(parents)) != len(parents):
            raise ValidationError(
                f"node {name!r} lists a duplicate parent: {list(parents)}"
            )
        if name in parents:
            raise ValidationError(f"node {name!r} cannot be its own parent")
        table = self._normalize_cpt(name, parents, cpt)
        node = Node(name=name, parents=parents, table=table)
        self._nodes[name] = node
        self._order = None
        return node

    @staticmethod
    def _normalize_cpt(
        name: str, parents: Tuple[str, ...], cpt
    ) -> Tuple[float, ...]:
        rows = 1 << len(parents)
        if cpt is None:
            raise ValidationError(f"node {name!r} needs a CPT, got None")
        if isinstance(cpt, Mapping):
            table: List[Optional[float]] = [None] * rows
            for key, value in cpt.items():
                if (
                    not isinstance(key, tuple)
                    or len(key) != len(parents)
                    or not all(isinstance(b, (bool, np.bool_)) for b in key)
                ):
                    raise ValidationError(
                        f"node {name!r} CPT key must be a tuple of "
                        f"{len(parents)} booleans (one per parent), "
                        f"got {key!r}"
                    )
                row = 0
                for bit in key:
                    row = (row << 1) | int(bit)
                if table[row] is not None:
                    raise ValidationError(
                        f"node {name!r} CPT repeats row {key!r}"
                    )
                table[row] = check_probability(
                    value, f"node {name!r} CPT row {key!r}"
                )
            missing = [i for i, v in enumerate(table) if v is None]
            if missing:
                raise ValidationError(
                    f"node {name!r} CPT is missing {len(missing)} of "
                    f"{rows} rows (first missing row index: {missing[0]})"
                )
            return tuple(float(v) for v in table)  # type: ignore[arg-type]
        if isinstance(cpt, (int, float)) and not isinstance(cpt, bool):
            values: Sequence[float] = (float(cpt),)
        elif isinstance(cpt, Sequence) and not isinstance(cpt, str):
            values = tuple(cpt)
        else:
            raise ValidationError(
                f"node {name!r} CPT must be a probability, a sequence of "
                f"{rows} row probabilities, or a mapping, got {cpt!r}"
            )
        if len(values) != rows:
            raise ValidationError(
                f"node {name!r} CPT must have {rows} rows "
                f"(2^{len(parents)} parent assignments), got {len(values)}"
            )
        return tuple(
            check_probability(v, f"node {name!r} CPT row {i}")
            for i, v in enumerate(values)
        )

    @classmethod
    def from_spec(cls, spec: Mapping) -> "BayesianNetwork":
        """Build a network from a JSON-style specification.

        ``{"nodes": [{"name": ..., "parents": [...], "cpt": ...}, ...]}``
        — ``parents`` is optional, ``cpt`` is a number (roots) or a list
        of ``2**len(parents)`` row probabilities.  Unknown keys are
        rejected naming the node; the structure is validated eagerly
        (undefined parents, cycles).
        """
        if not isinstance(spec, Mapping):
            raise ValidationError(
                f"network spec must be a mapping, got {type(spec).__name__}"
            )
        unknown = sorted(set(spec) - {"nodes"})
        if unknown:
            raise ValidationError(
                f"unknown network spec key(s) {unknown}; allowed: ['nodes']"
            )
        nodes = spec.get("nodes")
        if not isinstance(nodes, Sequence) or isinstance(nodes, str):
            raise ValidationError(
                "network spec 'nodes' must be a list of node objects, "
                f"got {type(nodes).__name__}"
            )
        network = cls()
        for index, entry in enumerate(nodes):
            if not isinstance(entry, Mapping):
                raise ValidationError(
                    f"node spec #{index} must be a mapping, got "
                    f"{type(entry).__name__}"
                )
            label = entry.get("name", f"#{index}")
            unknown = sorted(set(entry) - {"name", "parents", "cpt"})
            if unknown:
                raise ValidationError(
                    f"node {label!r}: unknown key(s) {unknown}; allowed: "
                    "['cpt', 'name', 'parents']"
                )
            if "name" not in entry:
                raise ValidationError(f"node spec #{index} is missing 'name'")
            if "cpt" not in entry:
                raise ValidationError(f"node {label!r} is missing 'cpt'")
            parents = entry.get("parents", ())
            if isinstance(parents, str) or not isinstance(parents, Sequence):
                raise ValidationError(
                    f"node {label!r} 'parents' must be a list of node "
                    f"names, got {parents!r}"
                )
            network.add_node(
                entry["name"], parents=tuple(parents), cpt=entry["cpt"]
            )
        network.topological_order()  # validate structure eagerly
        return network

    # -- structure -----------------------------------------------------

    @property
    def nodes(self) -> Tuple[str, ...]:
        """Node names in insertion order."""
        return tuple(self._nodes)

    def node(self, name: str) -> Node:
        """The :class:`Node` for *name* (unknown names are an error)."""
        try:
            return self._nodes[name]
        except KeyError:
            raise ValidationError(
                f"unknown node {name!r}; known nodes: {sorted(self._nodes)}"
            ) from None

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def topological_order(self) -> Tuple[str, ...]:
        """Parents-before-children order; validates the DAG.

        Undefined parents and dependency cycles raise
        :class:`~repro.errors.ModelStructureError`, a cycle naming one
        offending edge.
        """
        if self._order is not None:
            return self._order
        for node in self._nodes.values():
            for parent in node.parents:
                if parent not in self._nodes:
                    raise ModelStructureError(
                        f"node {node.name!r} references undefined parent "
                        f"{parent!r}; defined nodes: {sorted(self._nodes)}"
                    )
        order: List[str] = []
        placed: set = set()
        remaining = list(self._nodes)
        while remaining:
            progressed = False
            for name in list(remaining):
                if all(p in placed for p in self._nodes[name].parents):
                    order.append(name)
                    placed.add(name)
                    remaining.remove(name)
                    progressed = True
            if not progressed:
                raise ModelStructureError(self._describe_cycle(remaining))
        self._order = tuple(order)
        return self._order

    def _describe_cycle(self, stuck: Sequence[str]) -> str:
        # Walk child -> first-stuck-parent until a node repeats; the
        # edge (revisited parent -> current child) lies on the cycle.
        stuck_set = set(stuck)
        current = stuck[0]
        seen = {current}
        while True:
            parent = next(
                p for p in self._nodes[current].parents if p in stuck_set
            )
            if parent in seen:
                return (
                    "dependency cycle through edge "
                    f"{parent!r} -> {current!r}"
                )
            seen.add(parent)
            current = parent

    # -- inference -----------------------------------------------------

    def probability_of(self, assignment: Mapping[str, bool]) -> float:
        """Exact joint probability of a (partial) node-state assignment.

        Unmentioned nodes are marginalized out by variable elimination.
        """
        evidence = self._validate_assignment(assignment, "assignment")
        metrics = active_metrics()
        started = monotonic() if metrics is not None else 0.0
        order = self.topological_order()
        index = {name: i for i, name in enumerate(order)}
        factors = [
            _reduce(self._node_factor(name), evidence) for name in order
        ]
        hidden = [name for name in order if name not in evidence]
        for var in _elimination_order(factors, hidden, index):
            factors = _eliminate(factors, var, index)
        value = 1.0
        for factor in factors:
            value *= float(factor.values)
        if metrics is not None:
            metrics.counter(
                "bayes_inference_queries",
                help="Exact variable-elimination inference queries.",
            ).inc()
            metrics.histogram(
                "bayes_inference_seconds",
                help="Wall-clock time of variable-elimination queries.",
            ).observe(monotonic() - started)
        return min(max(value, 0.0), 1.0)

    def marginal(
        self,
        name: str,
        evidence: Optional[Mapping[str, bool]] = None,
    ) -> float:
        """``P(name is up | evidence)`` (prior marginal without evidence)."""
        self.node(name)
        if not evidence:
            return self.probability_of({name: True})
        conditions = self._validate_assignment(evidence, "evidence")
        if name in conditions:
            return 1.0 if conditions[name] else 0.0
        denominator = self.probability_of(conditions)
        if denominator <= 0.0:
            raise ValidationError(
                f"evidence {dict(sorted(conditions.items()))} has "
                "probability zero; cannot condition on it"
            )
        return self.probability_of({**conditions, name: True}) / denominator

    def probability_all_up(self, names: Sequence[str]) -> float:
        """Joint probability that every node in *names* is up."""
        if not names:
            raise ValidationError(
                "probability_all_up needs at least one node name"
            )
        return self.probability_of({name: True for name in names})

    def brute_force_probability(self, assignment: Mapping[str, bool]) -> float:
        """The same query as :meth:`probability_of`, by full enumeration.

        Vectorized over all ``2**n`` joint states — an independent
        oracle for tests and the inference speed benchmark, usable up
        to ``MAX_ENUMERATION_NODES`` nodes.
        """
        evidence = self._validate_assignment(assignment, "assignment")
        order = self.topological_order()
        n = len(order)
        if n > MAX_ENUMERATION_NODES:
            raise ValidationError(
                f"brute-force enumeration is capped at "
                f"{MAX_ENUMERATION_NODES} nodes, got {n}"
            )
        column = {name: i for i, name in enumerate(order)}
        # states[s, i] = state of node order[i] in joint state s.
        codes = np.arange(1 << n, dtype=np.int64)
        states = (codes[:, None] >> (n - 1 - np.arange(n))) & 1
        weight = np.ones(1 << n)
        for name in order:
            node = self._nodes[name]
            table = np.asarray(node.table)
            rows = np.zeros(1 << n, dtype=np.int64)
            for parent in node.parents:
                rows = (rows << 1) | states[:, column[parent]]
            up = table[rows]
            weight *= np.where(states[:, column[name]] == 1, up, 1.0 - up)
        mask = np.ones(1 << n, dtype=bool)
        for name, state in evidence.items():
            mask &= states[:, column[name]] == int(state)
        return float(weight[mask].sum())

    # -- internals -----------------------------------------------------

    def _validate_assignment(
        self, assignment: Mapping[str, bool], what: str
    ) -> Dict[str, bool]:
        if not isinstance(assignment, Mapping) or not assignment:
            raise ValidationError(
                f"{what} must be a non-empty mapping of node name to "
                f"boolean state, got {assignment!r}"
            )
        validated: Dict[str, bool] = {}
        for name, state in assignment.items():
            self.node(name)
            if isinstance(state, (bool, np.bool_)):
                validated[name] = bool(state)
            elif isinstance(state, (int, np.integer)) and state in (0, 1):
                validated[name] = bool(state)
            else:
                raise ValidationError(
                    f"{what} state for node {name!r} must be a boolean, "
                    f"got {state!r}"
                )
        return validated

    def _node_factor(self, name: str) -> "_Factor":
        node = self._nodes[name]
        k = len(node.parents)
        up = np.asarray(node.table).reshape((2,) * k)
        return _Factor(
            node.parents + (name,), np.stack([1.0 - up, up], axis=-1)
        )


class _Factor:
    """A nonnegative table over binary variables (one axis each)."""

    __slots__ = ("vars", "values")

    def __init__(self, vars: Tuple[str, ...], values: np.ndarray) -> None:
        self.vars = vars
        self.values = values


def _reduce(factor: _Factor, evidence: Mapping[str, bool]) -> _Factor:
    """Slice observed variables out of *factor*."""
    values = factor.values
    kept: List[str] = []
    axis = 0
    for var in factor.vars:
        if var in evidence:
            values = np.take(values, int(evidence[var]), axis=axis)
        else:
            kept.append(var)
            axis += 1
    return _Factor(tuple(kept), values)


def _multiply(
    factors: Sequence[_Factor], index: Mapping[str, int]
) -> _Factor:
    """Pointwise product, axes ordered by node insertion index."""
    out_vars = tuple(
        sorted({v for f in factors for v in f.vars}, key=index.__getitem__)
    )
    axis_of = {v: i for i, v in enumerate(out_vars)}
    out = np.ones((2,) * len(out_vars))
    for factor in factors:
        perm = sorted(
            range(len(factor.vars)), key=lambda i: axis_of[factor.vars[i]]
        )
        aligned = np.transpose(factor.values, perm)
        present = set(factor.vars)
        shape = tuple(2 if v in present else 1 for v in out_vars)
        out = out * aligned.reshape(shape)
    return _Factor(out_vars, out)


def _eliminate(
    factors: List[_Factor], var: str, index: Mapping[str, int]
) -> List[_Factor]:
    """Sum *var* out of the factor list."""
    related = [f for f in factors if var in f.vars]
    rest = [f for f in factors if var not in f.vars]
    product = _multiply(related, index)
    axis = product.vars.index(var)
    rest.append(
        _Factor(
            tuple(v for v in product.vars if v != var),
            product.values.sum(axis=axis),
        )
    )
    return rest


def _elimination_order(
    factors: Sequence[_Factor],
    hidden: Sequence[str],
    index: Mapping[str, int],
) -> List[str]:
    """Greedy min-degree order, ties broken by node insertion order.

    Deterministic by construction — candidates are scanned in insertion
    order with a strict comparison — so parallel workers eliminate in
    the same order and produce bit-identical floats.
    """
    clusters = [set(f.vars) for f in factors]
    remaining = sorted(hidden, key=index.__getitem__)
    order: List[str] = []
    while remaining:
        best_var: Optional[str] = None
        best_degree = 0
        best_neighbors: set = set()
        for var in remaining:
            neighbors: set = set()
            for cluster in clusters:
                if var in cluster:
                    neighbors |= cluster
            neighbors.discard(var)
            if best_var is None or len(neighbors) < best_degree:
                best_var, best_degree = var, len(neighbors)
                best_neighbors = neighbors
        assert best_var is not None
        order.append(best_var)
        remaining.remove(best_var)
        clusters = [c for c in clusters if best_var not in c]
        clusters.append(best_neighbors)
    return order
