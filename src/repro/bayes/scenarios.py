"""Ranked comparison of cloud deployment scenarios.

The unit behind ``repro cloud``: each :class:`CloudScenario` names one
:class:`~repro.bayes.chains.CloudDeployment`, is evaluated to a
:class:`CloudScenarioResult` (both Table 1 user classes plus the farm
marginal), and the grid is ranked by mean user-perceived availability.
Evaluation runs through the engine :class:`~repro.engine.TaskGraph`
(one keyed task per scenario, so ``--workers N`` is byte-identical and
``--cache-dir`` memoizes unchanged deployments across runs) — the same
pattern as the ``repro policies`` comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import ValidationError
from .chains import CloudDeployment, CloudTravelAgency

__all__ = [
    "CloudComparisonReport",
    "CloudScenario",
    "CloudScenarioResult",
    "compare_cloud_scenarios",
    "evaluate_cloud_scenario",
    "format_cloud_comparison",
]

HOURS_PER_YEAR = 8760.0


@dataclass(frozen=True)
class CloudScenario:
    """One named deployment alternative of the comparison grid."""

    name: str
    deployment: CloudDeployment

    def __post_init__(self):
        if not self.name:
            raise ValidationError("cloud scenario name must be non-empty")


@dataclass(frozen=True)
class CloudScenarioResult:
    """The evaluated availabilities of one deployment scenario."""

    scenario: str
    zones: int
    class_a: float
    class_b: float
    web: float

    @property
    def mean(self) -> float:
        """Mean user-perceived availability over the two user classes."""
        return (self.class_a + self.class_b) / 2.0

    @property
    def downtime_hours_per_year(self) -> float:
        return (1.0 - self.mean) * HOURS_PER_YEAR


@dataclass(frozen=True)
class CloudComparisonReport:
    """All scenario results plus the availability ranking."""

    cells: Tuple[CloudScenarioResult, ...]
    ranking: Tuple[CloudScenarioResult, ...]

    @property
    def best(self) -> CloudScenarioResult:
        return self.ranking[0]


def evaluate_cloud_scenario(scenario: CloudScenario) -> CloudScenarioResult:
    """Evaluate one deployment (module-level: picklable for workers)."""
    from ..ta import CLASS_A, CLASS_B

    agency = CloudTravelAgency(scenario.deployment)
    return CloudScenarioResult(
        scenario=scenario.name,
        zones=scenario.deployment.zones,
        class_a=agency.user_availability(CLASS_A).availability,
        class_b=agency.user_availability(CLASS_B).availability,
        web=agency.web_availability(),
    )


def compare_cloud_scenarios(
    scenarios: Sequence[CloudScenario],
    engine=None,
) -> CloudComparisonReport:
    """Evaluate and rank *scenarios* through the evaluation engine.

    ``engine=None`` uses the in-process serial reference backend; any
    worker count produces bit-identical results (cells are assembled by
    task name, and each cell is deterministic).
    """
    if not scenarios:
        raise ValidationError(
            "compare_cloud_scenarios needs at least one scenario"
        )
    names = [s.name for s in scenarios]
    if len(set(names)) != len(names):
        raise ValidationError(
            f"cloud scenario names must be unique, got {names}"
        )
    from ..engine import EvaluationEngine, TaskGraph
    from ..engine.tasks import cloud_scenario_task

    if engine is None:
        engine = EvaluationEngine()
    graph = TaskGraph()
    order = []
    for i, scenario in enumerate(scenarios):
        name = f"scenario-{i}"
        cloud_scenario_task(graph, name, scenario)
        order.append(name)
    result = engine.run_graph(graph, phase="cloud-comparison")
    cells = tuple(result.values[name] for name in order)
    ranking = tuple(
        sorted(cells, key=lambda cell: (-cell.mean, cell.scenario))
    )
    return CloudComparisonReport(cells=cells, ranking=ranking)


def format_cloud_comparison(
    report: CloudComparisonReport, title: Optional[str] = None
) -> str:
    """Fixed-width ranking table, best deployment first."""
    from ..reporting import format_downtime, format_table

    rows = []
    for cell in report.ranking:
        rows.append([
            cell.scenario,
            str(cell.zones),
            f"{cell.class_a:.7f}",
            f"{cell.class_b:.7f}",
            f"{cell.mean:.7f}",
            format_downtime(cell.mean),
        ])
    return format_table(
        ["deployment", "zones", "A(class A)", "A(class B)", "mean",
         "downtime"],
        rows,
        title=title,
    )
