"""Cloud-era availability models: Bayesian networks and service chains.

The paper's hierarchy assumes independent services composed in
series/parallel.  Cloud deployments break that assumption — replicas
share availability zones (common-cause failure), quorum systems are
k-out-of-n, and an autoscaled farm's capacity *depends on* which zones
survive.  This package models all of that exactly:

* :mod:`~repro.bayes.network` — a discrete Bayesian-network core:
  binary up/down nodes with CPTs, exact inference by variable
  elimination, a brute-force enumeration oracle, and
  ``BayesianNetwork.from_spec`` JSON-style parsing with one-line
  validation errors naming the node/CPT;
* :mod:`~repro.bayes.cloud` — the cloud building blocks (k-out-of-n
  replica sets, zonal common-cause roots, the autoscaling M/M/c/K farm
  node) plus their closed-form marginals;
* :mod:`~repro.bayes.chains` — service-function chains composing
  user-perceived availability through the existing four-level
  hierarchy, and :class:`CloudTravelAgency`, the Table 6 functions
  recast on a multi-zone deployment;
* :mod:`~repro.bayes.scenarios` — the ranked deployment comparison
  behind ``repro cloud`` and the server's ``cloud`` job kind.

Every closed form is cross-validated against Monte-Carlo sampling of
the network (:mod:`repro.sim.bayes`) as tier-1 tests, the same
discipline the repo applies to eq. (10) and the client policies.  See
``docs/CLOUD.md``.
"""

from .network import BayesianNetwork, Node
from .cloud import (
    CloudModelBuilder,
    farm_availability,
    k_of_n_cpt,
    replica_set_availability,
)
from .chains import (
    CLOUD_CHAINS,
    CloudDeployment,
    CloudTravelAgency,
    ServiceFunctionChain,
    chain_availability,
    chain_user_availability,
)
from .scenarios import (
    CloudComparisonReport,
    CloudScenario,
    CloudScenarioResult,
    compare_cloud_scenarios,
    evaluate_cloud_scenario,
    format_cloud_comparison,
)

__all__ = [
    "BayesianNetwork",
    "CLOUD_CHAINS",
    "CloudComparisonReport",
    "CloudDeployment",
    "CloudModelBuilder",
    "CloudScenario",
    "CloudScenarioResult",
    "CloudTravelAgency",
    "Node",
    "ServiceFunctionChain",
    "chain_availability",
    "chain_user_availability",
    "compare_cloud_scenarios",
    "evaluate_cloud_scenario",
    "farm_availability",
    "format_cloud_comparison",
    "k_of_n_cpt",
    "replica_set_availability",
]
