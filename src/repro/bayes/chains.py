"""Service-function chains: user-perceived availability on the cloud.

The paper composes user-perceived availability through a four-level
hierarchy (user -> function -> service -> resource).  On the cloud
deployment the resource layer is the Bayesian network of
:mod:`repro.bayes.cloud`, and the function -> service mapping becomes a
*service-function chain*: the ordered set of services a function's
request traverses (ingress, web tier, data tier, external suppliers).
A function is available when every service on its chain is up — a joint
inference query, NOT a product of marginals, because chains share
common-cause zone nodes.

:class:`CloudTravelAgency` recasts the paper's Table 6 functions onto a
multi-zone deployment: the web tier is the autoscaling M/M/c/K farm,
the database a quorum replica set spread round-robin over the zones,
and the flight/hotel/car reservation systems external 1-out-of-n sets.
User-level results reuse the core
:class:`~repro.core.model.UserLevelResult` dataclasses, so Table 8
style reporting works unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from .._validation import (
    check_positive,
    check_positive_int,
    check_probability,
)
from ..core.model import ScenarioAvailability, UserLevelResult
from ..errors import ValidationError
from ..ta.userclasses import BOOK, BROWSE, HOME, PAY, SEARCH
from .cloud import CloudModelBuilder
from .network import BayesianNetwork

__all__ = [
    "CLOUD_CHAINS",
    "CloudDeployment",
    "CloudTravelAgency",
    "ServiceFunctionChain",
    "chain_availability",
    "chain_user_availability",
]


@dataclass(frozen=True)
class ServiceFunctionChain:
    """The services one user-visible function traverses."""

    name: str
    services: Tuple[str, ...]

    def __post_init__(self):
        if not self.name:
            raise ValidationError("chain name must be non-empty")
        if not self.services:
            raise ValidationError(
                f"chain {self.name!r} must traverse at least one service"
            )
        if len(set(self.services)) != len(self.services):
            raise ValidationError(
                f"chain {self.name!r} lists a duplicate service: "
                f"{list(self.services)}"
            )


def chain_availability(
    network: BayesianNetwork, chain: ServiceFunctionChain
) -> float:
    """Probability that every service on *chain* is simultaneously up."""
    return network.probability_all_up(chain.services)


def chain_user_availability(
    network: BayesianNetwork,
    chains: Mapping[str, ServiceFunctionChain],
    user_class,
) -> UserLevelResult:
    """Eq.-(10) user-perceived availability over service chains.

    For each scenario of *user_class*, the visited functions' chains
    are merged into one service set and evaluated as a single joint
    query — shared zones and services are counted once, with their
    common-cause correlation intact — then weighted by the scenario's
    activation probability.
    """
    per_scenario = []
    total = 0.0
    for scenario in user_class.scenarios:
        services = set()
        for function in sorted(scenario.functions):
            if function not in chains:
                raise ValidationError(
                    f"no service chain for function {function!r}; chains "
                    f"cover {sorted(chains)}"
                )
            services.update(chains[function].services)
        availability = network.probability_all_up(tuple(sorted(services)))
        per_scenario.append(ScenarioAvailability(scenario, availability))
        total += scenario.probability * availability
    return UserLevelResult(
        user_class=user_class.name,
        availability=total,
        per_scenario=tuple(per_scenario),
    )


@dataclass(frozen=True)
class CloudDeployment:
    """Parameters of the cloud Travel Agency deployment.

    Defaults give a three-zone deployment with a 2-of-3 database
    quorum, sized so the nominal farm matches the paper's NW = 4..6
    regime (rates per hour for failures/repairs, per second for
    traffic, as in the paper).
    """

    zones: int = 3
    zone_availability: float = 0.9995
    web_servers_per_zone: int = 2
    arrival_rate: float = 100.0
    service_rate: float = 100.0
    buffer_capacity: int = 10
    web_failure_rate: float = 1e-4
    web_repair_rate: float = 1.0
    db_replicas: int = 3
    db_quorum: int = 2
    db_replica_availability: float = 0.9999
    reservation_systems: int = 2
    reservation_availability: float = 0.99925
    payment_availability: float = 0.9998
    internet_availability: float = 0.99962

    def __post_init__(self):
        check_positive_int(self.zones, "zones")
        check_probability(self.zone_availability, "zone_availability")
        check_positive_int(self.web_servers_per_zone, "web_servers_per_zone")
        check_positive(self.arrival_rate, "arrival_rate")
        check_positive(self.service_rate, "service_rate")
        check_positive_int(self.buffer_capacity, "buffer_capacity")
        check_positive(self.web_failure_rate, "web_failure_rate")
        check_positive(self.web_repair_rate, "web_repair_rate")
        check_positive_int(self.db_replicas, "db_replicas")
        check_positive_int(self.db_quorum, "db_quorum")
        if self.db_quorum > self.db_replicas:
            raise ValidationError(
                f"db_quorum must be in 1..{self.db_replicas} (db_replicas), "
                f"got {self.db_quorum}"
            )
        check_positive_int(self.reservation_systems, "reservation_systems")
        check_probability(
            self.db_replica_availability, "db_replica_availability"
        )
        check_probability(
            self.reservation_availability, "reservation_availability"
        )
        check_probability(self.payment_availability, "payment_availability")
        check_probability(self.internet_availability, "internet_availability")


#: The Table 6 function -> service-chain mapping on the cloud deployment.
CLOUD_CHAINS: Dict[str, ServiceFunctionChain] = {
    HOME: ServiceFunctionChain(HOME, ("internet", "web")),
    BROWSE: ServiceFunctionChain(BROWSE, ("internet", "web", "db")),
    SEARCH: ServiceFunctionChain(
        SEARCH, ("internet", "web", "db", "flight", "hotel", "car")
    ),
    BOOK: ServiceFunctionChain(
        BOOK, ("internet", "web", "db", "flight", "hotel", "car")
    ),
    PAY: ServiceFunctionChain(PAY, ("internet", "web", "db", "payment")),
}


class CloudTravelAgency:
    """The paper's Travel Agency recast on a multi-zone cloud.

    Zones are common-cause roots; ``web`` is the autoscaling M/M/c/K
    farm over all zones; ``db`` is a ``db_quorum``-of-``db_replicas``
    set placed round-robin across the zones; ``flight``/``hotel``/
    ``car`` are external 1-out-of-n reservation systems; ``payment``
    and ``internet`` are independent services.  The five Table 6
    functions map onto :data:`CLOUD_CHAINS`.
    """

    def __init__(self, deployment: CloudDeployment = CloudDeployment()):
        self.deployment = deployment
        builder = CloudModelBuilder()
        zones = [
            builder.add_zone(f"zone-{i + 1}", deployment.zone_availability)
            for i in range(deployment.zones)
        ]
        builder.add_farm(
            "web",
            zones,
            deployment.web_servers_per_zone,
            arrival_rate=deployment.arrival_rate,
            service_rate=deployment.service_rate,
            buffer_capacity=deployment.buffer_capacity,
            failure_rate=deployment.web_failure_rate,
            repair_rate=deployment.web_repair_rate,
        )
        builder.add_replica_set(
            "db",
            [zones[i % len(zones)] for i in range(deployment.db_replicas)],
            quorum=deployment.db_quorum,
            replica_availability=deployment.db_replica_availability,
        )
        for supplier in ("flight", "hotel", "car"):
            builder.add_replica_set(
                supplier,
                [None] * deployment.reservation_systems,
                quorum=1,
                replica_availability=deployment.reservation_availability,
            )
        builder.add_service("payment", deployment.payment_availability)
        builder.add_service("internet", deployment.internet_availability)
        self._network = builder.build()

    @property
    def network(self) -> BayesianNetwork:
        return self._network

    @property
    def chains(self) -> Dict[str, ServiceFunctionChain]:
        return dict(CLOUD_CHAINS)

    def function_availability(self, function: str) -> float:
        """Availability of one Table 6 function's service chain."""
        if function not in CLOUD_CHAINS:
            raise ValidationError(
                f"unknown function {function!r}; functions: "
                f"{sorted(CLOUD_CHAINS)}"
            )
        return chain_availability(self._network, CLOUD_CHAINS[function])

    def user_availability(self, user_class) -> UserLevelResult:
        """Eq.-(10) user-perceived availability for *user_class*."""
        return chain_user_availability(
            self._network, CLOUD_CHAINS, user_class
        )

    def web_availability(self) -> float:
        """Marginal of the autoscaling farm node."""
        return self._network.marginal("web")

    def db_availability(self) -> float:
        """Marginal of the database quorum node."""
        return self._network.marginal("db")
