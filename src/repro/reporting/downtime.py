"""Conversions between availability and yearly downtime budgets."""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._validation import check_non_negative, check_probability

__all__ = [
    "MINUTES_PER_YEAR",
    "HOURS_PER_YEAR",
    "DowntimeBudget",
    "downtime_hours_per_year",
    "downtime_minutes_per_year",
    "availability_from_downtime",
    "format_downtime",
    "nines",
]

HOURS_PER_YEAR = 8760.0
MINUTES_PER_YEAR = HOURS_PER_YEAR * 60.0


def downtime_hours_per_year(availability: float) -> float:
    """Expected downtime in hours per year for a steady-state availability."""
    availability = check_probability(availability, "availability")
    return (1.0 - availability) * HOURS_PER_YEAR


def downtime_minutes_per_year(availability: float) -> float:
    """Expected downtime in minutes per year."""
    availability = check_probability(availability, "availability")
    return (1.0 - availability) * MINUTES_PER_YEAR


def availability_from_downtime(
    downtime: float, unit: str = "minutes"
) -> float:
    """The availability corresponding to a yearly downtime budget.

    Parameters
    ----------
    downtime:
        Allowed downtime per year.
    unit:
        ``"minutes"`` or ``"hours"``.

    Examples
    --------
    The paper's "5 min/year" requirement corresponds to roughly five
    nines:

    >>> availability_from_downtime(5.0) > 0.99999
    True
    """
    downtime = check_non_negative(downtime, "downtime")
    if unit == "minutes":
        total = MINUTES_PER_YEAR
    elif unit == "hours":
        total = HOURS_PER_YEAR
    else:
        from ..errors import ValidationError

        raise ValidationError(f"unknown unit {unit!r}; expected 'minutes' or 'hours'")
    if downtime > total:
        from ..errors import ValidationError

        raise ValidationError(
            f"downtime ({downtime} {unit}) exceeds a full year ({total} {unit})"
        )
    return 1.0 - downtime / total


def nines(availability: float) -> float:
    """The "number of nines": ``-log10(1 - A)``; ``inf`` for A = 1."""
    availability = check_probability(availability, "availability")
    if availability == 1.0:
        return float("inf")
    return -math.log10(1.0 - availability)


def format_downtime(availability: float) -> str:
    """Human-readable yearly downtime, choosing a sensible unit.

    Examples
    --------
    >>> format_downtime(0.99999)
    '5.3 min/year'
    """
    minutes = downtime_minutes_per_year(availability)
    if minutes < 1.0:
        return f"{minutes * 60.0:.1f} s/year"
    if minutes < 120.0:
        return f"{minutes:.1f} min/year"
    hours = minutes / 60.0
    if hours < 48.0:
        return f"{hours:.1f} h/year"
    return f"{hours / 24.0:.1f} days/year"


@dataclass(frozen=True)
class DowntimeBudget:
    """A yearly downtime requirement, comparable against model results.

    Examples
    --------
    >>> budget = DowntimeBudget(minutes_per_year=5.0)
    >>> budget.met_by(0.999999)
    True
    >>> budget.met_by(0.999)
    False
    """

    minutes_per_year: float

    def __post_init__(self):
        check_non_negative(self.minutes_per_year, "minutes_per_year")

    @property
    def required_availability(self) -> float:
        """Minimum availability meeting the budget."""
        return availability_from_downtime(self.minutes_per_year, unit="minutes")

    def met_by(self, availability: float) -> bool:
        """Does *availability* satisfy the budget?"""
        return (
            check_probability(availability, "availability")
            >= self.required_availability
        )
