"""Reporting helpers: downtime conversions and text tables/series.

The paper discusses results in operational terms ("unavailability lower
than 5 min/year", "173 hours per year"); :mod:`repro.reporting.downtime`
converts between availabilities and downtime budgets.  The table and
series formatters produce the text output of the benchmark harness — the
same rows and curves the paper's tables and figures report.
"""

from .downtime import (
    DowntimeBudget,
    availability_from_downtime,
    downtime_hours_per_year,
    downtime_minutes_per_year,
    format_downtime,
    nines,
)
from .tables import format_table
from .series import format_series, log_bucket_label

__all__ = [
    "DowntimeBudget",
    "availability_from_downtime",
    "downtime_hours_per_year",
    "downtime_minutes_per_year",
    "format_downtime",
    "nines",
    "format_table",
    "format_series",
    "log_bucket_label",
]
