"""Plain-text rendering of figure-style data series.

The paper's Figs. 11-13 plot unavailability on logarithmic axes; the
benchmark harness prints the same series as rows of numbers plus a
coarse log-scale bar so that curve shapes (the U-shape of imperfect
coverage, the exponential drop of perfect coverage) are visible in text
output.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..errors import ValidationError

__all__ = ["format_series", "log_bucket_label"]


def log_bucket_label(value: float, floor_exponent: int = -12) -> str:
    """A crude log-scale bar: one ``#`` per decade above the floor.

    Examples
    --------
    >>> log_bucket_label(1e-3, floor_exponent=-6)
    '###'
    """
    if value <= 0.0:
        return ""
    exponent = math.log10(value)
    bars = int(round(exponent - floor_exponent))
    return "#" * max(bars, 0)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    value_format: str = "{:.3e}",
    log_bars: bool = False,
    floor_exponent: int = -12,
    title: str = "",
) -> str:
    """Render one or more aligned data series as text.

    Parameters
    ----------
    x_label / x_values:
        The shared abscissa.
    series:
        ``{curve name: y values}``; each must match ``len(x_values)``.
    value_format:
        Format applied to each y value.
    log_bars:
        Append a log-scale bar column per curve (useful for
        unavailability curves spanning decades).
    floor_exponent:
        The log-bar floor (see :func:`log_bucket_label`).
    title:
        Optional title line.
    """
    from .tables import format_table

    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValidationError(
                f"series {name!r} has {len(values)} points, expected {len(x_values)}"
            )
    headers = [x_label]
    for name in series:
        headers.append(name)
        if log_bars:
            headers.append(f"{name} (log)")
    rows = []
    for i, x in enumerate(x_values):
        row = [x]
        for name, values in series.items():
            row.append(value_format.format(values[i]))
            if log_bars:
                row.append(log_bucket_label(values[i], floor_exponent))
        rows.append(row)
    return format_table(headers, rows, title=title)
