"""Plain-text table rendering for the benchmark harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..errors import ValidationError

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width text table.

    Parameters
    ----------
    headers:
        Column titles.
    rows:
        Row cell values; each row must match the header width.  Floats
        render with ``repr``-free ``str`` formatting — pre-format cells
        that need specific precision.
    title:
        Optional title line printed above the table.

    Examples
    --------
    >>> print(format_table(["N", "A"], [[1, "0.84235"], [2, "0.96509"]],
    ...                    title="Table 8"))
    Table 8
    N | A
    --+--------
    1 | 0.84235
    2 | 0.96509
    """
    header_cells = [str(h) for h in headers]
    body: List[List[str]] = []
    for row in rows:
        cells = [str(cell) for cell in row]
        if len(cells) != len(header_cells):
            raise ValidationError(
                f"row {cells!r} has {len(cells)} cells, expected {len(header_cells)}"
            )
        body.append(cells)
    widths = [
        max(len(header_cells[i]), *(len(r[i]) for r in body)) if body else len(header_cells[i])
        for i in range(len(header_cells))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(header_cells, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for cells in body:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip())
    return "\n".join(lines)
