"""Erlang B and Erlang C formulas with numerically stable recursions.

Erlang B is the blocking probability of an M/M/c/c loss system; Erlang C
is the waiting probability of an M/M/c system.  Both are computed from
the classic recurrence ``B(0) = 1, B(c) = a B(c-1) / (c + a B(c-1))``,
which never overflows regardless of offered load.
"""

from __future__ import annotations

from .._validation import check_non_negative, check_positive_int

__all__ = ["erlang_b", "erlang_c"]


def erlang_b(servers: int, offered_load: float) -> float:
    """Erlang-B blocking probability of an M/M/c/c loss system.

    Parameters
    ----------
    servers:
        Number of servers (trunks) ``c >= 1``.
    offered_load:
        Traffic intensity ``a = lambda / mu`` in Erlangs (>= 0).

    Examples
    --------
    >>> round(erlang_b(2, 1.0), 4)
    0.2
    """
    servers = check_positive_int(servers, "servers")
    a = check_non_negative(offered_load, "offered_load")
    if a == 0.0:
        return 0.0
    blocking = 1.0
    for c in range(1, servers + 1):
        blocking = a * blocking / (c + a * blocking)
    return blocking


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C probability of waiting in an M/M/c system.

    Requires ``offered_load < servers`` (a stable system).

    Examples
    --------
    >>> round(erlang_c(1, 0.5), 4)   # M/M/1: waiting prob = rho
    0.5
    """
    servers = check_positive_int(servers, "servers")
    a = check_non_negative(offered_load, "offered_load")
    if a == 0.0:
        return 0.0
    if a >= servers:
        from ..errors import ValidationError

        raise ValidationError(
            f"Erlang C requires offered_load < servers, got {a} >= {servers}"
        )
    b = erlang_b(servers, a)
    rho = a / servers
    return b / (1.0 - rho * (1.0 - b))
