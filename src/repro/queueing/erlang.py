"""Erlang B and Erlang C formulas with numerically stable recursions.

Erlang B is the blocking probability of an M/M/c/c loss system; Erlang C
is the waiting probability of an M/M/c system.  Naive evaluation of the
textbook formulas ``B(c) = (a^c / c!) / sum_j a^j / j!`` overflows
``float`` factorials past ``c ~ 170``; both functions here work on the
*inverse* of the blocking probability instead::

    1/B(0) = 1
    1/B(c) = 1 + (c / a) * 1/B(c-1)

Every iterate is a sum of non-negative terms bounded by ``c!/a^c``
growth in the *inverse* — representable as long as the final answer is,
so the recursion is overflow-free far beyond ``c = 170`` (the regression
suite exercises ``c = 500``) and subtraction-free, hence also immune to
cancellation.  ``1/B`` can itself overflow only when ``B`` underflows
``float`` entirely (``B < ~1e-308``), in which case 0.0 is returned —
the correctly rounded result.
"""

from __future__ import annotations

import math

from .._validation import check_non_negative, check_positive_int

__all__ = ["erlang_b", "erlang_c"]


def erlang_b(servers: int, offered_load: float) -> float:
    """Erlang-B blocking probability of an M/M/c/c loss system.

    Parameters
    ----------
    servers:
        Number of servers (trunks) ``c >= 1``.
    offered_load:
        Traffic intensity ``a = lambda / mu`` in Erlangs (>= 0).

    Examples
    --------
    >>> round(erlang_b(2, 1.0), 4)
    0.2
    >>> erlang_b(500, 450.0) > 0.0   # far beyond 170! with no overflow
    True
    """
    servers = check_positive_int(servers, "servers")
    a = check_non_negative(offered_load, "offered_load")
    if a == 0.0:
        return 0.0
    inverse = 1.0
    for c in range(1, servers + 1):
        inverse = 1.0 + inverse * c / a
        if math.isinf(inverse):
            # B underflows double precision: report it as exactly 0.
            return 0.0
    return 1.0 / inverse


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C probability of waiting in an M/M/c system.

    Requires ``offered_load < servers`` (a stable system).  Computed from
    the Erlang-B value through ``C = B / (1 - rho (1 - B))``, which keeps
    the evaluation stable for hundreds of servers.

    Examples
    --------
    >>> round(erlang_c(1, 0.5), 4)   # M/M/1: waiting prob = rho
    0.5
    """
    servers = check_positive_int(servers, "servers")
    a = check_non_negative(offered_load, "offered_load")
    if a == 0.0:
        return 0.0
    if a >= servers:
        from ..errors import ValidationError

        raise ValidationError(
            f"Erlang C requires offered_load < servers, got {a} >= {servers}"
        )
    b = erlang_b(servers, a)
    rho = a / servers
    return b / (1.0 - rho * (1.0 - b))
