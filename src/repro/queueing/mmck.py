"""The M/M/c/K queue — the paper's redundant-architecture performance model.

Equation (3) of the paper gives the blocking probability of a farm of
``i`` load-balanced web servers with shared total capacity ``K``::

    pK(i) = [a^K / (i^(K-i) i!)] /
            [ sum_{j<i} a^j/j!  +  sum_{i<=j<=K} a^j / (i^(j-i) i!) ]

with offered load ``a = alpha / nu``.  For ``i = 1`` this reduces to the
M/M/1/K expression of eq. (1).
"""

from __future__ import annotations

import math

import numpy as np

from .._validation import check_positive_int, check_rate
from ..errors import ValidationError
from .birthdeath import birth_death_distribution
from .metrics import QueueMetrics
from .mm1k import mm1k_blocking_probability

__all__ = ["MMCKQueue", "mmck_blocking_probability"]


def mmck_blocking_probability(offered_load: float, servers: int, capacity: int) -> float:
    """Blocking probability of an M/M/c/K queue (paper eq. 3).

    Parameters
    ----------
    offered_load:
        ``a = alpha / nu`` where ``nu`` is the per-server service rate.
    servers:
        Number of parallel servers ``c >= 1``.
    capacity:
        Total system capacity ``K >= c``.

    Notes
    -----
    Computed with a left-to-right recurrence over the birth-death weights
    ``w_j``, renormalized by the running weight whenever it grows large —
    only the ratio ``w_K / sum_j w_j`` is ever needed, so rescaling both
    keeps the computation exact while preventing the ``a^j / j!`` terms
    from overflowing ``float`` for large farms (c = 500 is exercised by
    the regression suite).
    """
    a = check_rate(offered_load, "offered_load")
    servers = check_positive_int(servers, "servers")
    capacity = check_positive_int(capacity, "capacity")
    if capacity < servers:
        raise ValidationError(
            f"capacity ({capacity}) must be >= servers ({servers})"
        )
    if servers == 1:
        return mm1k_blocking_probability(a, capacity)
    # w_j = a^j / j!            for j < c   (all c servers not yet busy)
    # w_j = a^j / (c^(j-c) c!)  for j >= c  (queueing behind c busy servers)
    weight = 1.0
    total = 1.0
    for j in range(1, capacity + 1):
        divisor = j if j <= servers else servers
        weight *= a / divisor
        total += weight
        if weight > 1e250 or total > 1e250:
            total /= weight
            weight = 1.0
    return float(weight / total)


class MMCKQueue:
    """Multi-server, finite-capacity Markovian queue.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate ``alpha``.
    service_rate:
        Per-server exponential service rate ``nu``.
    servers:
        Number of parallel servers ``c``.
    capacity:
        Total system capacity ``K >= c`` (in service + waiting).

    Examples
    --------
    >>> q = MMCKQueue(arrival_rate=100.0, service_rate=100.0, servers=4,
    ...               capacity=10)
    >>> q.blocking_probability() < 1e-4
    True
    """

    def __init__(
        self,
        arrival_rate: float,
        service_rate: float,
        servers: int,
        capacity: int,
    ):
        self.arrival_rate = check_rate(arrival_rate, "arrival_rate")
        self.service_rate = check_rate(service_rate, "service_rate")
        self.servers = check_positive_int(servers, "servers")
        self.capacity = check_positive_int(capacity, "capacity")
        if self.capacity < self.servers:
            raise ValidationError(
                f"capacity ({capacity}) must be >= servers ({servers})"
            )

    @property
    def offered_load(self) -> float:
        """``a = alpha / nu`` in units of one server's capacity."""
        return self.arrival_rate / self.service_rate

    def blocking_probability(self) -> float:
        """Probability an arriving request is lost (paper eq. 3)."""
        return mmck_blocking_probability(
            self.offered_load, self.servers, self.capacity
        )

    def state_distribution(self) -> np.ndarray:
        """Steady-state distribution over 0..K requests in system."""
        births = [self.arrival_rate] * self.capacity
        deaths = [
            self.service_rate * min(n + 1, self.servers)
            for n in range(self.capacity)
        ]
        return birth_death_distribution(births, deaths)

    def metrics(self) -> QueueMetrics:
        """Full steady-state metric set (via the state distribution)."""
        dist = self.state_distribution()
        n = np.arange(self.capacity + 1)
        blocking = float(dist[-1])
        effective = self.arrival_rate * (1.0 - blocking)
        l_system = float(n @ dist)
        busy_servers = float(np.minimum(n, self.servers) @ dist)
        l_queue = l_system - busy_servers
        w_system = l_system / effective if effective > 0 else float("inf")
        w_queue = l_queue / effective if effective > 0 else float("inf")
        return QueueMetrics(
            arrival_rate=self.arrival_rate,
            service_rate=self.service_rate,
            servers=self.servers,
            capacity=self.capacity,
            blocking_probability=blocking,
            utilization=min(
                1.0, effective / (self.servers * self.service_rate)
            ),
            mean_number_in_system=l_system,
            mean_number_in_queue=l_queue,
            mean_response_time=w_system,
            mean_waiting_time=w_queue,
            throughput=effective,
            state_distribution=tuple(dist.tolist()),
        )
