"""Steady-state distribution of a general finite birth-death process.

Every Markovian queue in this package is a special case of a birth-death
process; this module provides the generic product-form solution used both
directly and as an independent cross-check of the closed-form models.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import check_finite, check_non_negative
from ..errors import ValidationError

__all__ = ["birth_death_distribution"]


def birth_death_distribution(
    birth_rates: Sequence[float],
    death_rates: Sequence[float],
) -> np.ndarray:
    """Steady-state distribution over states ``0 .. n``.

    Parameters
    ----------
    birth_rates:
        ``birth_rates[i]`` is the rate ``i -> i+1``; length ``n``.
        A zero entry truncates the reachable state space.
    death_rates:
        ``death_rates[i]`` is the rate ``i+1 -> i``; length ``n``;
        entries must be strictly positive.

    Returns
    -------
    numpy.ndarray
        Probability vector of length ``n + 1``.

    Notes
    -----
    Uses the product form ``pi_k = pi_0 * prod_{i<k} (birth_i / death_i)``
    computed in a running product, which avoids overflow for moderate
    chains; for the state-space sizes of availability models (tens of
    states) this is exact to machine precision.
    """
    if len(birth_rates) != len(death_rates):
        raise ValidationError(
            f"birth_rates (len {len(birth_rates)}) and death_rates "
            f"(len {len(death_rates)}) must have equal length"
        )
    n = len(birth_rates)
    weights = np.empty(n + 1)
    weights[0] = 1.0
    running = 1.0
    for i in range(n):
        birth = check_non_negative(birth_rates[i], f"birth_rates[{i}]")
        # check_finite first: a NaN death rate passes "death <= 0" (all
        # NaN comparisons are False) and would poison the whole
        # distribution instead of raising here.
        death = check_finite(death_rates[i], f"death_rates[{i}]")
        if death <= 0:
            raise ValidationError(f"death_rates[{i}] must be > 0, got {death!r}")
        running *= birth / death
        weights[i + 1] = running
    total = weights.sum()
    return weights / total
