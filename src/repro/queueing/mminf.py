"""The M/M/infinity queue (infinite-server, no waiting).

A useful modeling limit: with one server per request, the number in
system is Poisson with mean ``lambda / mu``, nothing blocks and nothing
waits.  It upper-bounds what any finite farm can achieve and provides
the natural sanity limit for the M/M/c/K family as ``c -> infinity``.
"""

from __future__ import annotations

import math

from .._validation import check_rate
from .metrics import QueueMetrics

__all__ = ["MMInfQueue"]


class MMInfQueue:
    """Infinite-server Markovian queue.

    Examples
    --------
    >>> q = MMInfQueue(arrival_rate=3.0, service_rate=1.0)
    >>> q.metrics().mean_number_in_system
    3.0
    >>> q.metrics().mean_waiting_time
    0.0
    """

    def __init__(self, arrival_rate: float, service_rate: float):
        self.arrival_rate = check_rate(arrival_rate, "arrival_rate")
        self.service_rate = check_rate(service_rate, "service_rate")

    @property
    def offered_load(self) -> float:
        """Mean number in system, ``a = lambda / mu``."""
        return self.arrival_rate / self.service_rate

    def probability_of(self, n: int) -> float:
        """Poisson occupancy: ``P(N = n) = e^-a a^n / n!``."""
        if n < 0:
            return 0.0
        a = self.offered_load
        # Log-space evaluation: factorials overflow floats near n ~ 170.
        return math.exp(-a + n * math.log(a) - math.lgamma(n + 1))

    def metrics(self) -> QueueMetrics:
        """Full steady-state metric set (waiting is identically zero)."""
        a = self.offered_load
        return QueueMetrics(
            arrival_rate=self.arrival_rate,
            service_rate=self.service_rate,
            servers=0,  # conventionally "unbounded"
            capacity=None,
            blocking_probability=0.0,
            utilization=0.0,
            mean_number_in_system=a,
            mean_number_in_queue=0.0,
            mean_response_time=1.0 / self.service_rate,
            mean_waiting_time=0.0,
            throughput=self.arrival_rate,
        )
