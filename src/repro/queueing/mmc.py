"""The M/M/c queue (infinite buffer, multiple servers)."""

from __future__ import annotations

import math

from .._validation import check_positive_int, check_rate
from ..errors import ValidationError
from .erlang import erlang_c
from .metrics import QueueMetrics

__all__ = ["MMCQueue"]


class MMCQueue:
    """Multi-server queue with Poisson arrivals and exponential service.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate ``lambda``.
    service_rate:
        Per-server exponential service rate ``mu``.
    servers:
        Number of parallel servers ``c``; stability requires
        ``lambda < c * mu``.

    Examples
    --------
    >>> q = MMCQueue(arrival_rate=3.0, service_rate=1.0, servers=4)
    >>> 0 < q.probability_of_waiting() < 1
    True
    """

    def __init__(self, arrival_rate: float, service_rate: float, servers: int):
        self.arrival_rate = check_rate(arrival_rate, "arrival_rate")
        self.service_rate = check_rate(service_rate, "service_rate")
        self.servers = check_positive_int(servers, "servers")
        if self.arrival_rate >= self.servers * self.service_rate:
            raise ValidationError(
                "M/M/c requires arrival_rate < servers * service_rate; "
                f"got rho = {self.arrival_rate / (self.servers * self.service_rate):.4g}"
            )

    @property
    def offered_load(self) -> float:
        """``a = lambda / mu`` in Erlangs."""
        return self.arrival_rate / self.service_rate

    @property
    def utilization(self) -> float:
        """Per-server utilization ``rho = a / c`` (< 1)."""
        return self.offered_load / self.servers

    def probability_of_waiting(self) -> float:
        """Erlang-C probability that an arriving customer must queue."""
        return erlang_c(self.servers, self.offered_load)

    def probability_of(self, n: int) -> float:
        """Steady-state probability of *n* customers in system."""
        if n < 0:
            return 0.0
        a, c = self.offered_load, self.servers
        # p0 from the standard normalization.
        idle_weight = sum(a**j / math.factorial(j) for j in range(c))
        queue_weight = a**c / (math.factorial(c) * (1.0 - self.utilization))
        p0 = 1.0 / (idle_weight + queue_weight)
        if n < c:
            return p0 * a**n / math.factorial(n)
        return p0 * a**n / (math.factorial(c) * c ** (n - c))

    def metrics(self) -> QueueMetrics:
        """Full steady-state metric set."""
        a, c = self.offered_load, self.servers
        rho = self.utilization
        wait_prob = self.probability_of_waiting()
        l_queue = wait_prob * rho / (1.0 - rho)
        l_system = l_queue + a
        w_queue = l_queue / self.arrival_rate
        w_system = w_queue + 1.0 / self.service_rate
        return QueueMetrics(
            arrival_rate=self.arrival_rate,
            service_rate=self.service_rate,
            servers=c,
            capacity=None,
            blocking_probability=0.0,
            utilization=rho,
            mean_number_in_system=l_system,
            mean_number_in_queue=l_queue,
            mean_response_time=w_system,
            mean_waiting_time=w_queue,
            throughput=self.arrival_rate,
        )
