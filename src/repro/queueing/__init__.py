"""Queueing-theory substrate: birth-death queues and their metrics.

The paper models each web server's request handling as an M/M/1/K queue
(eq. 1) and the load-balanced server farm as an M/M/i/K queue (eq. 3);
the blocking probability ``pK`` — the chance an arriving request is
dropped because the input buffer is full — is the "performance failure"
ingredient of the composite availability measure.

This subpackage implements those models plus the standard neighbouring
ones (M/M/1, M/M/c, Erlang B/C), all validated against each other and
against a general finite birth-death solver.
"""

from .metrics import QueueMetrics
from .batch import mmck_blocking_grid, mmck_blocking_grid_rates
from .birthdeath import birth_death_distribution
from .mm1 import MM1Queue
from .mm1k import MM1KQueue, mm1k_blocking_probability
from .mmc import MMCQueue
from .mmck import MMCKQueue, mmck_blocking_probability
from .erlang import erlang_b, erlang_c
from .mg1 import MG1Queue
from .mminf import MMInfQueue
from .responsetime import (
    erlang_survival,
    mean_conditional_response_time,
    response_time_quantile,
    response_time_survival,
    waiting_time_survival,
)

__all__ = [
    "MG1Queue",
    "MMInfQueue",
    "erlang_survival",
    "mean_conditional_response_time",
    "response_time_quantile",
    "response_time_survival",
    "waiting_time_survival",
    "QueueMetrics",
    "birth_death_distribution",
    "MM1Queue",
    "MM1KQueue",
    "mm1k_blocking_probability",
    "MMCQueue",
    "MMCKQueue",
    "mmck_blocking_probability",
    "mmck_blocking_grid",
    "mmck_blocking_grid_rates",
    "erlang_b",
    "erlang_c",
]
